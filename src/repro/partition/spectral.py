"""Spectral partitioning — the classical baseline for the multilevel cut.

Newman's spectral method (the paper's ref [62]) partitions by the sign
structure of Laplacian eigenvectors: the Fiedler vector (second-smallest
eigenvector of L = D − A) gives the relaxed minimum-ratio bisection, and
recursing produces k parts.  It is the quality yardstick the multilevel
(METIS-style) partitioner is judged against in the ablation bench:
multilevel should land in the same cut-quality neighbourhood while being
the one that scales (eigen-solves on every recursion level don't).

Uses ``scipy.sparse.linalg.eigsh`` on the shifted Laplacian for the
Fiedler vector, falling back to dense ``eigh`` for tiny or numerically
awkward subproblems.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..graph.csr import CSRGraph
from .multilevel import PartitionResult, balance_ratio, edge_cut

__all__ = ["fiedler_vector", "spectral_bisect", "spectral_partition"]


def _laplacian(g: CSRGraph, nodes: np.ndarray | None = None,
               normalized: bool = True) -> sp.csr_matrix:
    adj = g.to_scipy().astype(np.float64)
    if nodes is not None:
        adj = adj[nodes][:, nodes].tocsr()
    adj.setdiag(0)  # self-loops don't affect cuts
    adj.eliminate_zeros()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    lap = (sp.diags(deg) - adj).tocsr()
    if not normalized:
        return lap
    # symmetric normalization D^{-1/2} L D^{-1/2}: essential on
    # degree-skewed (dc-SBM / power-law) graphs, where the unnormalized
    # Fiedler vector tracks degree instead of community
    inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    d = sp.diags(inv_sqrt)
    return (d @ lap @ d).tocsr()


def fiedler_vector(g: CSRGraph, nodes: np.ndarray | None = None,
                   seed: int = 0, normalized: bool = True) -> np.ndarray:
    """The eigenvector of the second-smallest Laplacian eigenvalue.

    For a *connected* (sub)graph its sorted order is the relaxed sparsest
    bisection.  ``normalized`` (default) solves on the symmetric
    normalized Laplacian and maps back through D^{-1/2} (the Shi–Malik
    random-walk embedding) — the right operator for skewed-degree graphs,
    where the unnormalized Fiedler vector mostly tracks degree.

    Disconnected inputs have a degenerate (multi-dimensional) null space;
    use :func:`spectral_bisect`, which splits by component first.
    """
    lap = _laplacian(g, nodes, normalized)
    n = lap.shape[0]
    if n < 3:
        return np.zeros(n)
    if n <= 64:
        _, vecs = np.linalg.eigh(lap.toarray())
        v = vecs[:, 1]
    else:
        rng = np.random.default_rng(seed)
        v0 = rng.standard_normal(n)
        try:
            # smallest-magnitude pair via shift-invert around 0
            _, vecs = spla.eigsh(lap, k=2, sigma=-1e-3, which="LM", v0=v0)
            v = vecs[:, 1]
        except Exception:
            _, vecs = np.linalg.eigh(lap.toarray())
            v = vecs[:, 1]
    if normalized:
        adj = g.to_scipy().astype(np.float64)
        if nodes is not None:
            adj = adj[nodes][:, nodes].tocsr()
        deg = np.asarray(adj.sum(axis=1)).ravel()
        v = v / np.sqrt(np.maximum(deg, 1e-12))
    return v


def _component_split(comp_labels: np.ndarray) -> np.ndarray:
    """Assign whole components to two sides, balancing node counts.

    Splitting along components costs zero cut edges — always at least as
    good as any within-component split — so disconnected (sub)graphs take
    this path before any eigen-solve.
    """
    n = len(comp_labels)
    sizes = np.bincount(comp_labels)
    side = np.zeros(n, dtype=bool)
    # greedy first-fit-decreasing into the emptier half
    order = np.argsort(sizes)[::-1]
    totals = [0, 0]
    for comp in order:
        target = int(totals[1] < totals[0])
        if target == 1:
            side[comp_labels == comp] = True
        totals[target] += sizes[comp]
    return side


def spectral_bisect(g: CSRGraph, nodes: np.ndarray | None = None,
                    seed: int = 0) -> np.ndarray:
    """Boolean side assignment: by component when disconnected, else by
    the Fiedler vector's median split.

    The median (not sign) split enforces the ⌈n/2⌉ / ⌊n/2⌋ balance the
    multilevel partitioner also targets, making the cut counts directly
    comparable.
    """
    from ..graph.algorithms import connected_components

    sub = g if nodes is None else g.subgraph(np.asarray(nodes))[0]
    n_comp, comp = connected_components(sub)
    if n_comp > 1:
        return _component_split(comp)
    f = fiedler_vector(g, nodes, seed)
    n = len(f)
    side = np.zeros(n, dtype=bool)
    order = np.argsort(f, kind="stable")
    side[order[n // 2:]] = True
    return side


def spectral_partition(g: CSRGraph, num_parts: int, seed: int = 0) -> PartitionResult:
    """Recursive spectral bisection into ``num_parts`` (any value ≥ 1).

    Non-power-of-two part counts are handled by splitting each subset
    proportionally, like the multilevel driver does.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    labels = np.zeros(g.num_nodes, dtype=np.int64)
    next_label = [0]

    def recurse(nodes: np.ndarray, parts: int) -> None:
        if parts == 1 or len(nodes) <= 1:
            labels[nodes] = next_label[0]
            next_label[0] += 1
            return
        left_parts = parts // 2
        right_parts = parts - left_parts
        side = spectral_bisect(g, nodes, seed)
        # proportional balance for odd part counts
        target_right = int(round(len(nodes) * right_parts / parts))
        f_order = np.argsort(side.astype(int), kind="stable")
        right_nodes = nodes[f_order[len(nodes) - target_right:]]
        left_nodes = nodes[f_order[: len(nodes) - target_right]]
        recurse(left_nodes, left_parts)
        recurse(right_nodes, right_parts)

    recurse(np.arange(g.num_nodes, dtype=np.int64), num_parts)
    k = next_label[0]
    return PartitionResult(labels=labels, num_parts=k,
                           edge_cut=edge_cut(g, labels),
                           balance=balance_ratio(labels, k))
