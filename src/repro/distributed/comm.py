"""In-process communicator simulating P-rank collectives.

Replaces NCCL for the reproduction: all P ranks live in one process, each
collective is an exact data movement over lists of per-rank numpy arrays,
and every call logs its wire traffic.  The byte accounting is the point —
§III-C's claim that two all-to-alls move 4·S·d/P bytes per GPU versus an
all-gather's O(S·d) is verified against these logs, and the link cost
model converts them into modeled time.

Semantics follow MPI (mpi4py tutorial) conventions: ``all_to_all`` takes a
P×P matrix of chunks (send[i][j] goes from rank i to rank j),
``all_gather`` concatenates every rank's buffer everywhere, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.device import LinkSpec

__all__ = ["CommRecord", "CommLog", "Communicator"]


@dataclass
class CommRecord:
    """One collective call's traffic."""

    op: str
    wire_bytes_per_rank: int  # bytes leaving each rank (max over ranks)
    total_bytes: int  # total bytes crossing the interconnect


@dataclass
class CommLog:
    """Accumulated collective traffic for a run."""

    records: list[CommRecord] = field(default_factory=list)

    def add(self, op: str, per_rank: int, total: int) -> None:
        self.records.append(CommRecord(op, per_rank, total))

    def clear(self) -> None:
        self.records.clear()

    def total_wire_bytes(self) -> int:
        return sum(r.total_bytes for r in self.records)

    def per_rank_bytes(self, op: str | None = None) -> int:
        return sum(r.wire_bytes_per_rank for r in self.records
                   if op is None or r.op == op)

    def modeled_time(self, link: LinkSpec, num_ranks: int) -> float:
        """Total collective time on ``link`` (bandwidth + phase latency)."""
        t = 0.0
        for r in self.records:
            t += r.wire_bytes_per_rank / link.bandwidth
            t += link.latency_s * max(num_ranks - 1, 1)
        return t


class Communicator:
    """A simulated communicator over ``world_size`` ranks."""

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.log = CommLog()

    # ------------------------------------------------------------------ #
    def all_to_all(self, send: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """``send[i][j]`` travels from rank i to rank j.

        Returns ``recv`` with ``recv[j][i] = send[i][j]``.  Diagonal chunks
        (i == j) stay local and cost no wire traffic.
        """
        P = self.world_size
        if len(send) != P or any(len(row) != P for row in send):
            raise ValueError("send must be a P×P matrix of chunks")
        recv = [[send[i][j] for i in range(P)] for j in range(P)]
        per_rank = max(
            sum(send[i][j].nbytes for j in range(P) if j != i) for i in range(P))
        total = sum(send[i][j].nbytes for i in range(P) for j in range(P) if i != j)
        self.log.add("all_to_all", per_rank, total)
        return recv

    def all_gather(self, buffers: list[np.ndarray], axis: int = 0) -> list[np.ndarray]:
        """Every rank receives the concatenation of all ranks' buffers."""
        P = self.world_size
        if len(buffers) != P:
            raise ValueError("need one buffer per rank")
        gathered = np.concatenate(buffers, axis=axis)
        # ring all-gather: each rank sends its buffer P-1 times total
        per_rank = max(b.nbytes for b in buffers) * (P - 1)
        total = sum(b.nbytes for b in buffers) * (P - 1)
        self.log.add("all_gather", per_rank, total)
        return [gathered.copy() for _ in range(P)]

    def reduce_scatter(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Sum all ranks' equal-shaped buffers, scatter row chunks back."""
        P = self.world_size
        total_arr = np.sum(buffers, axis=0)
        chunks = np.array_split(total_arr, P, axis=0)
        per_rank = max(b.nbytes for b in buffers) * (P - 1) // P
        total = sum(b.nbytes for b in buffers) * (P - 1) // P
        self.log.add("reduce_scatter", per_rank, total)
        return [c.copy() for c in chunks]

    def all_reduce(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Sum all ranks' buffers; everyone gets the sum (ring algorithm)."""
        P = self.world_size
        total_arr = np.sum(buffers, axis=0)
        per_rank = 2 * max(b.nbytes for b in buffers) * (P - 1) // P
        total = 2 * sum(b.nbytes for b in buffers) * (P - 1) // P
        self.log.add("all_reduce", per_rank, total)
        return [total_arr.copy() for _ in range(P)]

    def broadcast(self, buffer: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Root's buffer is copied to every rank."""
        per_rank = buffer.nbytes
        self.log.add("broadcast", per_rank, buffer.nbytes * (self.world_size - 1))
        return [buffer.copy() for _ in range(self.world_size)]

    def send_recv(self, buffers: list[np.ndarray], shift: int = 1) -> list[np.ndarray]:
        """Ring point-to-point: rank i's buffer travels to rank (i+shift)%P.

        The primitive Ring Attention (Liu et al., the paper's ref [40])
        rotates K/V blocks with.  Returns ``recv`` with
        ``recv[j] = send[(j - shift) % P]``.  With P == 1 (or shift ≡ 0)
        nothing crosses the wire.
        """
        P = self.world_size
        if len(buffers) != P:
            raise ValueError("need one buffer per rank")
        shift = shift % P
        recv = [buffers[(j - shift) % P].copy() for j in range(P)]
        if shift != 0:
            per_rank = max(b.nbytes for b in buffers)
            total = sum(b.nbytes for b in buffers)
            self.log.add("send_recv", per_rank, total)
        return recv
