"""In-process communicator simulating P-rank collectives.

Replaces NCCL for the reproduction: all P ranks live in one process, each
collective is an exact data movement over lists of per-rank numpy arrays,
and every call logs its wire traffic.  The byte accounting is the point —
§III-C's claim that two all-to-alls move 4·S·d/P bytes per GPU versus an
all-gather's O(S·d) is verified against these logs, and the link cost
model converts them into modeled time.

Semantics follow MPI (mpi4py tutorial) conventions: ``all_to_all`` takes a
P×P matrix of chunks (send[i][j] goes from rank i to rank j),
``all_gather`` concatenates every rank's buffer everywhere, and so on.

This module also owns the **array wire framing** shared by every layer
that moves tensors between processes: :func:`pack_array` /
:func:`unpack_array` frame one ndarray as a self-describing byte string
(magic, dtype, shape, raw buffer).  The serving cluster
(:mod:`repro.serve.cluster`) uses it for request payloads and result
logits so the bytes a worker receives are exactly the bytes the router
sent — bitwise, with no pickle indirection for the hot arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.device import LinkSpec
from ..obs.metrics import get_registry

__all__ = ["pack_array", "unpack_array", "pack_arrays", "unpack_arrays",
           "CommRecord", "CommLog", "Communicator"]

#: Frame magic: protocol name + framing version.
_FRAME_MAGIC = b"RGT1"


def pack_array(arr: np.ndarray) -> bytes:
    """Frame one ndarray as ``magic | header-len | dtype,shape | buffer``.

    The inverse of :func:`unpack_array`.  Framing is deterministic (the
    same array always produces the same bytes) and self-describing, so
    the receiving side needs no out-of-band dtype/shape agreement.
    Arrays are made C-contiguous before framing.
    """
    arr = np.asarray(arr)
    if not arr.flags.c_contiguous:  # ascontiguousarray would promote 0-d
        arr = np.ascontiguousarray(arr)
    # ';' separator: dtype strings may contain '|' (e.g. '|b1' for bool)
    header = f"{arr.dtype.str};{','.join(str(d) for d in arr.shape)}".encode()
    return (_FRAME_MAGIC + len(header).to_bytes(4, "big")
            + header + arr.tobytes())


def unpack_array(buf: bytes) -> np.ndarray:
    """Decode a :func:`pack_array` frame back into an ndarray (a copy).

    Decoding is strict — every malformation (bad magic, lying header
    length, undecodable dtype, buffer/shape size mismatch) raises
    ``ValueError`` with a ``bad frame:`` message rather than letting
    numpy fail arbitrarily.  Network-facing callers
    (:mod:`repro.net.protocol`) rely on this to map any byte-level
    corruption to a typed protocol error.
    """
    if len(buf) < 8:
        raise ValueError(f"bad frame: {len(buf)} bytes is shorter than "
                         "the fixed prelude")
    if buf[:4] != _FRAME_MAGIC:
        raise ValueError(
            f"bad frame: expected magic {_FRAME_MAGIC!r}, got {buf[:4]!r}")
    header_len = int.from_bytes(buf[4:8], "big")
    if 8 + header_len > len(buf):
        raise ValueError(f"bad frame: header length {header_len} exceeds "
                         f"frame ({len(buf)} bytes)")
    try:
        header = buf[8:8 + header_len].decode()
        dtype_str, shape_str = header.split(";")
        shape = tuple(int(d) for d in shape_str.split(",") if d)
        dtype = np.dtype(dtype_str)
    except (UnicodeDecodeError, TypeError, ValueError) as exc:
        raise ValueError(f"bad frame: undecodable header ({exc})")
    if any(d < 0 for d in shape):
        raise ValueError(f"bad frame: negative dimension in shape {shape}")
    if dtype.hasobject:
        raise ValueError("bad frame: object dtypes cannot cross the wire")
    data = buf[8 + header_len:]
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(data) != expected:
        raise ValueError(
            f"bad frame: shape {shape} of {dtype} needs {expected} "
            f"bytes, frame carries {len(data)}")
    arr = np.frombuffer(data, dtype=dtype).reshape(shape)
    return arr.copy()  # writable, detached from the frame buffer


def pack_arrays(arrays) -> bytes:
    """Frame a sequence of ndarrays as length-prefixed :func:`pack_array` frames.

    The multi-array wire format used by structured payloads (e.g. a
    serving-cluster :class:`~repro.stream.GraphDelta` broadcast): each
    array's frame is preceded by its 8-byte big-endian length, so the
    receiver can split the stream without parsing frame internals.
    """
    out = []
    for arr in arrays:
        frame = pack_array(arr)
        out.append(len(frame).to_bytes(8, "big"))
        out.append(frame)
    return b"".join(out)


def unpack_arrays(buf: bytes) -> list[np.ndarray]:
    """Decode a :func:`pack_arrays` stream back into its array list."""
    arrays = []
    pos = 0
    while pos < len(buf):
        if pos + 8 > len(buf):
            raise ValueError("truncated pack_arrays stream")
        frame_len = int.from_bytes(buf[pos:pos + 8], "big")
        pos += 8
        if pos + frame_len > len(buf):
            raise ValueError("truncated pack_arrays stream")
        arrays.append(unpack_array(buf[pos:pos + frame_len]))
        pos += frame_len
    return arrays


@dataclass
class CommRecord:
    """One collective call's traffic."""

    op: str
    wire_bytes_per_rank: int  # bytes leaving each rank (max over ranks)
    total_bytes: int  # total bytes crossing the interconnect


@dataclass
class CommLog:
    """Accumulated collective traffic for a run."""

    records: list[CommRecord] = field(default_factory=list)

    def add(self, op: str, per_rank: int, total: int) -> None:
        self.records.append(CommRecord(op, per_rank, total))
        get_registry().counter(
            "repro_comm_wire_bytes_total",
            "modeled bytes crossing the interconnect, by collective op",
            labels=("op",)).inc(total, op=op)

    def clear(self) -> None:
        self.records.clear()

    def total_wire_bytes(self) -> int:
        return sum(r.total_bytes for r in self.records)

    def per_rank_bytes(self, op: str | None = None) -> int:
        return sum(r.wire_bytes_per_rank for r in self.records
                   if op is None or r.op == op)

    def modeled_time(self, link: LinkSpec, num_ranks: int) -> float:
        """Total collective time on ``link`` (bandwidth + phase latency)."""
        t = 0.0
        for r in self.records:
            t += r.wire_bytes_per_rank / link.bandwidth
            t += link.latency_s * max(num_ranks - 1, 1)
        return t


class Communicator:
    """A simulated communicator over ``world_size`` ranks."""

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.log = CommLog()

    # ------------------------------------------------------------------ #
    def all_to_all(self, send: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
        """``send[i][j]`` travels from rank i to rank j.

        Returns ``recv`` with ``recv[j][i] = send[i][j]``.  Diagonal chunks
        (i == j) stay local and cost no wire traffic.
        """
        P = self.world_size
        if len(send) != P or any(len(row) != P for row in send):
            raise ValueError("send must be a P×P matrix of chunks")
        recv = [[send[i][j] for i in range(P)] for j in range(P)]
        per_rank = max(
            sum(send[i][j].nbytes for j in range(P) if j != i) for i in range(P))
        total = sum(send[i][j].nbytes for i in range(P) for j in range(P) if i != j)
        self.log.add("all_to_all", per_rank, total)
        return recv

    def all_gather(self, buffers: list[np.ndarray], axis: int = 0) -> list[np.ndarray]:
        """Every rank receives the concatenation of all ranks' buffers."""
        P = self.world_size
        if len(buffers) != P:
            raise ValueError("need one buffer per rank")
        gathered = np.concatenate(buffers, axis=axis)
        # ring all-gather: each rank sends its buffer P-1 times total
        per_rank = max(b.nbytes for b in buffers) * (P - 1)
        total = sum(b.nbytes for b in buffers) * (P - 1)
        self.log.add("all_gather", per_rank, total)
        return [gathered.copy() for _ in range(P)]

    def reduce_scatter(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Sum all ranks' equal-shaped buffers, scatter row chunks back."""
        P = self.world_size
        total_arr = np.sum(buffers, axis=0)
        chunks = np.array_split(total_arr, P, axis=0)
        per_rank = max(b.nbytes for b in buffers) * (P - 1) // P
        total = sum(b.nbytes for b in buffers) * (P - 1) // P
        self.log.add("reduce_scatter", per_rank, total)
        return [c.copy() for c in chunks]

    def all_reduce(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Sum all ranks' buffers; everyone gets the sum (ring algorithm)."""
        P = self.world_size
        total_arr = np.sum(buffers, axis=0)
        per_rank = 2 * max(b.nbytes for b in buffers) * (P - 1) // P
        total = 2 * sum(b.nbytes for b in buffers) * (P - 1) // P
        self.log.add("all_reduce", per_rank, total)
        return [total_arr.copy() for _ in range(P)]

    def broadcast(self, buffer: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Root's buffer is copied to every rank."""
        per_rank = buffer.nbytes
        self.log.add("broadcast", per_rank, buffer.nbytes * (self.world_size - 1))
        return [buffer.copy() for _ in range(self.world_size)]

    def send_recv(self, buffers: list[np.ndarray], shift: int = 1) -> list[np.ndarray]:
        """Ring point-to-point: rank i's buffer travels to rank (i+shift)%P.

        The primitive Ring Attention (Liu et al., the paper's ref [40])
        rotates K/V blocks with.  Returns ``recv`` with
        ``recv[j] = send[(j - shift) % P]``.  With P == 1 (or shift ≡ 0)
        nothing crosses the wire.
        """
        P = self.world_size
        if len(buffers) != P:
            raise ValueError("need one buffer per rank")
        shift = shift % P
        recv = [buffers[(j - shift) % P].copy() for j in range(P)]
        if shift != 0:
            per_rank = max(b.nbytes for b in buffers)
            total = sum(b.nbytes for b in buffers)
            self.log.add("send_recv", per_rank, total)
        return recv
