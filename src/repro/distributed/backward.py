"""Backward pass for Cluster-aware Graph Parallelism.

The forward of §III-C re-shards rows→heads with one all-to-all, computes
sparse attention over the full sequence per head group, and re-shards
heads→rows with a second all-to-all.  Training needs the mirror image:
the output gradient arrives row-sharded, travels rows→heads, the local
sparse-attention vector-Jacobian products run per head group over the
full sequence, and the input gradients travel heads→rows back.  Wire
volume is therefore symmetric with the forward — 4·S·d/P per GPU per
direction — which is what lets the paper count "two all-to-alls" per
layer per pass and still scale O(S/P) end to end.

:func:`cluster_aware_attention_fwd_bwd` runs forward and backward in one
call (retaining the gathered Q/K/V between them, as a fused kernel
would) and returns row-sharded output and gradients.  Tests verify the
gradients against the autograd engine's single-device sparse kernel,
entry for entry.
"""

from __future__ import annotations

import numpy as np

from ..attention.patterns import AttentionPattern
from ..attention.sparse import _segment_sum, segment_softmax
from .comm import Communicator
from .graph_parallel import ShardPlan, _heads_to_rows, _rows_to_heads

__all__ = ["cluster_aware_attention_fwd_bwd"]


def cluster_aware_attention_fwd_bwd(
    comm: Communicator,
    plan: ShardPlan,
    q_shards: list[np.ndarray],
    k_shards: list[np.ndarray],
    v_shards: list[np.ndarray],
    pattern: AttentionPattern,
    dout_shards: list[np.ndarray],
    bias_shards: list[np.ndarray] | None = None,
    scale: float | None = None,
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray],
           list[np.ndarray], np.ndarray | None]:
    """Forward + backward of distributed sparse attention.

    Parameters mirror
    :func:`~repro.distributed.graph_parallel.cluster_aware_attention`,
    plus ``dout_shards``: the row-sharded ``(H, S_r, dh)`` gradient of
    the loss w.r.t. the attention output.

    Returns ``(out_shards, dq_shards, dk_shards, dv_shards, dbias)``, all
    row-sharded like their primals; ``dbias`` is the full ``(H, E)``
    per-entry bias gradient (bias follows the sparse layout, so its
    gradient is as cheap as the bias itself — §III-C's memory argument).
    """
    H, _, dh = q_shards[0].shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))
    rows, cols, indptr = pattern.rows, pattern.cols, pattern.indptr
    P = plan.world_size
    head_slices = plan.head_slices()

    # rows→heads for primals and the incoming gradient (3 + 1 all-to-alls
    # in wire accounting; a fused implementation overlaps them)
    q_full = _rows_to_heads(comm, plan, q_shards)
    k_full = _rows_to_heads(comm, plan, k_shards)
    v_full = _rows_to_heads(comm, plan, v_shards)
    g_full = _rows_to_heads(comm, plan, dout_shards)

    out_heads: list[np.ndarray] = []
    dq_heads: list[np.ndarray] = []
    dk_heads: list[np.ndarray] = []
    dv_heads: list[np.ndarray] = []
    dbias_parts: list[np.ndarray] = []

    for r in range(P):
        qr, kr, vr, gr = q_full[r], k_full[r], v_full[r], g_full[r]
        scores = np.einsum("hed,hed->he", qr[:, rows, :], kr[:, cols, :]) * scale
        if bias_shards is not None:
            scores = scores + bias_shards[0][head_slices[r]]
        p = segment_softmax(scores, indptr, rows)

        # forward output
        out = np.zeros_like(qr)
        contrib = p[:, :, None] * vr[:, cols, :]
        np.add.at(out, (slice(None), rows), contrib)
        out_heads.append(out)

        # backward: dp_e = g[r_e]·v[c_e]; ds = p∘(dp − rowsum(dp∘p))
        dp = np.einsum("hed,hed->he", gr[:, rows, :], vr[:, cols, :])
        dot = _segment_sum(dp * p, indptr)
        ds = p * (dp - dot[:, rows])

        dv = np.zeros_like(vr)
        np.add.at(dv, (slice(None), cols), p[:, :, None] * gr[:, rows, :])
        dq = np.zeros_like(qr)
        np.add.at(dq, (slice(None), rows),
                  ds[:, :, None] * kr[:, cols, :] * scale)
        dk = np.zeros_like(kr)
        np.add.at(dk, (slice(None), cols),
                  ds[:, :, None] * qr[:, rows, :] * scale)
        dq_heads.append(dq)
        dk_heads.append(dk)
        dv_heads.append(dv)
        dbias_parts.append(ds)

    # heads→rows for the forward output and every input gradient
    out_shards = _heads_to_rows(comm, plan, out_heads)
    dq_shards = _heads_to_rows(comm, plan, dq_heads)
    dk_shards = _heads_to_rows(comm, plan, dk_heads)
    dv_shards = _heads_to_rows(comm, plan, dv_heads)
    dbias = np.concatenate(dbias_parts, axis=0) if bias_shards is not None else None
    return out_shards, dq_shards, dk_shards, dv_shards, dbias
