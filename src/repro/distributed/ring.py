"""Ring Attention (Liu et al. — the paper's ref [40]): the blockwise
LLM sequence-parallelism baseline.

Each rank keeps its own query rows and a rotating K/V block; over P ring
steps every rank sees the full key/value sequence while holding only
S/P of it at a time.  Numerical exactness comes from the online-softmax
accumulator (running max ``m``, normalizer ``l``, weighted sum ``acc``) —
the same trick FlashAttention uses across tiles, here across ranks.

Why it is the *baseline* and not the proposal: the rotation moves each
K/V block P−1 times, so per-GPU wire volume is 2·S·d·(P−1)/P — O(S),
independent of P — while Cluster-aware Graph Parallelism's two
all-to-alls move 4·S·d/P — O(S/P).  And because the K/V visibility is
time-sliced, the *graph topology pattern cannot be applied globally*:
entries of the sparse pattern crossing block boundaries are only visible
in the step their key block is resident, which forces either dense
computation (done here, like the LLM systems) or expensive pattern
re-sharding every step.  Both costs are what §III-C's design avoids.
"""

from __future__ import annotations

import numpy as np

from .comm import Communicator
from .graph_parallel import ShardPlan

__all__ = ["ring_attention", "ring_volume_per_gpu"]


def ring_attention(
    comm: Communicator,
    plan: ShardPlan,
    q_shards: list[np.ndarray],
    k_shards: list[np.ndarray],
    v_shards: list[np.ndarray],
    scale: float | None = None,
) -> list[np.ndarray]:
    """Blockwise-exact dense attention over row shards (forward).

    Inputs are row-sharded ``(H, S_r, dh)`` per rank — the same sharding
    :func:`~repro.distributed.graph_parallel.cluster_aware_attention`
    takes — and the output is row-sharded identically, numerically equal
    to single-device dense attention.
    """
    P = plan.world_size
    if len(q_shards) != P or len(k_shards) != P or len(v_shards) != P:
        raise ValueError("need one shard per rank")
    H, _, dh = q_shards[0].shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))

    # per-rank online-softmax state
    run_max = [np.full((H, q.shape[1]), -np.inf) for q in q_shards]
    run_sum = [np.zeros((H, q.shape[1])) for q in q_shards]
    acc = [np.zeros_like(q) for q in q_shards]
    k_cur = [k.copy() for k in k_shards]
    v_cur = [v.copy() for v in v_shards]

    for step in range(P):
        for r in range(P):
            scores = np.einsum("hid,hjd->hij", q_shards[r], k_cur[r]) * scale
            block_max = scores.max(axis=-1)
            new_max = np.maximum(run_max[r], block_max)
            correction = np.exp(run_max[r] - new_max)
            p = np.exp(scores - new_max[:, :, None])
            run_sum[r] = run_sum[r] * correction + p.sum(axis=-1)
            acc[r] = acc[r] * correction[:, :, None] + np.einsum(
                "hij,hjd->hid", p, v_cur[r])
            run_max[r] = new_max
        if step < P - 1:
            k_cur = comm.send_recv(k_cur)
            v_cur = comm.send_recv(v_cur)

    return [a / np.maximum(s[:, :, None], 1e-30) for a, s in zip(acc, run_sum)]


def ring_volume_per_gpu(seq_len: int, hidden: int, world_size: int,
                        itemsize: int = 4) -> int:
    """Ring Attention wire bytes per GPU per layer: K and V blocks of
    S/P·d each travel P−1 hops → 2·S·d·(P−1)/P — O(S) as P grows.
    """
    P = world_size
    return int(2 * seq_len * hidden * itemsize * (P - 1) / P)
