"""Cluster-aware Graph Parallelism (§III-C) and the LLM-style baseline.

The parallelism the paper proposes:

1. input rows (graph tokens) and encodings are partitioned across P ranks
   — the token order is *alterable* for graphs, so the partition can be
   arbitrary;
2. per layer, an **all-to-all** re-shards the projected Q, K, V (and bias)
   from row-sharded to head-sharded: afterwards every rank holds the FULL
   sequence for H/P heads, so the exact graph topology pattern applies
   without halo exchanges;
3. attention runs locally in the cluster-reordered layout;
4. a second all-to-all re-shards the output back to rows for the FFN.

Per-GPU wire traffic is 4·S·d/P per layer (O(S/P)); the all-gather-based
LLM baseline (``naive_sequence_parallel_attention``) moves O(S·d)
regardless of P.  Both are implemented over the simulated
:class:`~repro.distributed.comm.Communicator`, and both compute outputs
numerically identical to the single-device kernel — verified in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attention.patterns import AttentionPattern
from ..attention.sparse import segment_softmax
from .comm import Communicator

__all__ = [
    "ShardPlan",
    "cluster_aware_attention",
    "naive_sequence_parallel_attention",
    "alltoall_volume_per_gpu",
    "allgather_volume_per_gpu",
]


@dataclass
class ShardPlan:
    """Row and head sharding for P ranks over (H, S, dh) tensors."""

    seq_len: int
    num_heads: int
    world_size: int

    def __post_init__(self):
        if self.num_heads % self.world_size != 0:
            raise ValueError(
                f"num_heads={self.num_heads} must divide by P={self.world_size} "
                "(all-to-all re-shards sequence into heads)")

    @property
    def heads_per_rank(self) -> int:
        return self.num_heads // self.world_size

    def row_slices(self) -> list[slice]:
        """Contiguous row ranges per rank (uneven tail allowed)."""
        bounds = np.linspace(0, self.seq_len, self.world_size + 1).astype(int)
        return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]

    def head_slices(self) -> list[slice]:
        hpr = self.heads_per_rank
        return [slice(r * hpr, (r + 1) * hpr) for r in range(self.world_size)]


def _rows_to_heads(comm: Communicator, plan: ShardPlan,
                   row_sharded: list[np.ndarray]) -> list[np.ndarray]:
    """All-to-all: (H, S_r, dh) per rank → (H_r, S, dh) per rank."""
    head_slices = plan.head_slices()
    send = [[row_sharded[i][head_slices[j]].copy() for j in range(plan.world_size)]
            for i in range(plan.world_size)]
    recv = comm.all_to_all(send)
    # rank j concatenates its head-chunk from every row shard along S
    return [np.concatenate(recv[j], axis=1) for j in range(plan.world_size)]


def _heads_to_rows(comm: Communicator, plan: ShardPlan,
                   head_sharded: list[np.ndarray]) -> list[np.ndarray]:
    """Inverse all-to-all: (H_r, S, dh) per rank → (H, S_r, dh) per rank."""
    row_slices = plan.row_slices()
    send = [[head_sharded[i][:, row_slices[j]].copy() for j in range(plan.world_size)]
            for i in range(plan.world_size)]
    recv = comm.all_to_all(send)
    return [np.concatenate(recv[j], axis=0) for j in range(plan.world_size)]


def cluster_aware_attention(
    comm: Communicator,
    plan: ShardPlan,
    q_shards: list[np.ndarray],
    k_shards: list[np.ndarray],
    v_shards: list[np.ndarray],
    pattern: AttentionPattern,
    bias_shards: list[np.ndarray] | None = None,
    scale: float | None = None,
) -> list[np.ndarray]:
    """Distributed sparse attention per §III-C (forward).

    Inputs are row-sharded ``(H, S_r, dh)`` arrays per rank; the output is
    row-sharded the same way.  ``bias_shards``, if given, are per-entry
    bias values ``(H, E)`` sharded by head only (they follow the sparse
    layout, so the memory/communication footprint is trivial — the
    property §III-C highlights).
    """
    H, _, dh = q_shards[0].shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))
    # all-to-all #1: gather sequence, split heads (Q, K, V — and bias,
    # which shares the sparse layout and so ships per-entry values)
    q_full = _rows_to_heads(comm, plan, q_shards)
    k_full = _rows_to_heads(comm, plan, k_shards)
    v_full = _rows_to_heads(comm, plan, v_shards)

    rows, cols, indptr = pattern.rows, pattern.cols, pattern.indptr
    head_slices = plan.head_slices()
    outputs = []
    for r in range(plan.world_size):
        qr, kr, vr = q_full[r], k_full[r], v_full[r]
        scores = np.einsum("hed,hed->he", qr[:, rows, :], kr[:, cols, :]) * scale
        if bias_shards is not None:
            scores = scores + bias_shards[0][head_slices[r]]
        p = segment_softmax(scores, indptr, rows)
        out = np.zeros_like(qr)
        # segment-weighted aggregation (scatter-add over rows)
        contrib = p[:, :, None] * vr[:, cols, :]
        np.add.at(out, (slice(None), rows), contrib)
        outputs.append(out)
    # all-to-all #2: back to row shards with all heads
    return _heads_to_rows(comm, plan, outputs)


def naive_sequence_parallel_attention(
    comm: Communicator,
    plan: ShardPlan,
    q_shards: list[np.ndarray],
    k_shards: list[np.ndarray],
    v_shards: list[np.ndarray],
    pattern: AttentionPattern,
    scale: float | None = None,
) -> list[np.ndarray]:
    """LLM-style baseline: all-gather K and V everywhere (O(S·d) wire).

    Every rank keeps its own query rows and gathers the *full* key/value
    sequence — the communication-heavy scheme the paper's Ring/Megatron
    comparison points at.  Output matches ``cluster_aware_attention``.
    """
    H, _, dh = q_shards[0].shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))
    k_full = comm.all_gather(k_shards, axis=1)
    v_full = comm.all_gather(v_shards, axis=1)

    rows, cols, indptr = pattern.rows, pattern.cols, pattern.indptr
    row_slices = plan.row_slices()
    outputs = []
    for r in range(plan.world_size):
        sl = row_slices[r]
        # entries whose query row belongs to this rank
        mine = (rows >= sl.start) & (rows < sl.stop)
        r_loc = rows[mine] - sl.start
        c_loc = cols[mine]
        # rebuild a local CSR over this rank's rows
        counts = np.bincount(r_loc, minlength=sl.stop - sl.start)
        local_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        qr = q_shards[r]
        scores = np.einsum("hed,hed->he",
                           qr[:, r_loc, :], k_full[r][:, c_loc, :]) * scale
        p = segment_softmax(scores, local_indptr, r_loc)
        out = np.zeros_like(qr)
        contrib = p[:, :, None] * v_full[r][:, c_loc, :]
        np.add.at(out, (slice(None), r_loc), contrib)
        outputs.append(out)
    return outputs


def alltoall_volume_per_gpu(seq_len: int, hidden: int, world_size: int,
                            itemsize: int = 4) -> int:
    """§III-C's analytic volume: 4·S·d/P bytes per GPU per layer."""
    return int(4 * seq_len * hidden * itemsize / world_size)


def allgather_volume_per_gpu(seq_len: int, hidden: int, world_size: int,
                             itemsize: int = 4) -> int:
    """All-gather baseline: O(S·d) per GPU per layer (K and V, ×(P-1)/P)."""
    P = world_size
    return int(2 * seq_len * hidden * itemsize * (P - 1) / P)
