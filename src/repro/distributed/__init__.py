"""Simulated distributed runtime: collectives and graph parallelism."""

from .comm import (
    CommLog,
    CommRecord,
    Communicator,
    pack_array,
    pack_arrays,
    unpack_array,
    unpack_arrays,
)
from .graph_parallel import (
    ShardPlan,
    allgather_volume_per_gpu,
    alltoall_volume_per_gpu,
    cluster_aware_attention,
    naive_sequence_parallel_attention,
)
from .ring import ring_attention, ring_volume_per_gpu
from .backward import cluster_aware_attention_fwd_bwd

__all__ = [
    "Communicator",
    "CommLog",
    "CommRecord",
    "pack_array",
    "unpack_array",
    "pack_arrays",
    "unpack_arrays",
    "ShardPlan",
    "cluster_aware_attention",
    "naive_sequence_parallel_attention",
    "alltoall_volume_per_gpu",
    "allgather_volume_per_gpu",
    "ring_attention",
    "ring_volume_per_gpu",
    "cluster_aware_attention_fwd_bwd",
]
