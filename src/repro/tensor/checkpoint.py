"""Gradient checkpointing (activation recomputation) for the autograd engine.

Korthikanti et al. (MLSys'23, the paper's ref [39]) cut transformer
activation memory by re-running the forward of selected blocks during the
backward pass instead of keeping their intermediate tensors alive.  With
million-token graph sequences, activation memory — not weights — is what
forces OOM (Table V), so TorchGT-style systems lean on this technique to
push the maximum trainable sequence length.

Implementation on the closure-based engine: :func:`checkpoint` runs ``fn``
under :class:`~repro.tensor.tensor.no_grad` (recording *nothing*), then
emits a single output node whose backward closure re-runs ``fn`` with
recording enabled, backpropagates through the fresh subgraph, and forwards
the input gradients to the original parents.  Parameters referenced inside
``fn`` receive their gradients directly during the replay.

Requirements mirror torch.utils.checkpoint:

* ``fn`` must be deterministic between the two invocations.  Stochastic
  modules (Dropout) draw from per-module ``numpy`` Generators, so pass
  them via ``rngs=`` and their bit-generator state is snapshotted at
  forward and restored before the replay.
* ``fn``'s output must be a single Tensor.

:func:`live_graph_size` is the measurement hook used by the tests and the
long-sequence example: it walks the recorded graph from a loss tensor and
returns how many intermediate tensors (and bytes) the graph keeps alive —
the quantity checkpointing exists to reduce.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["checkpoint", "checkpoint_sequential", "live_graph_size"]


def _snapshot_rng_states(rngs: Sequence[np.random.Generator]) -> list[dict]:
    return [rng.bit_generator.state for rng in rngs]


def _restore_rng_states(rngs: Sequence[np.random.Generator],
                        states: Sequence[dict]) -> None:
    for rng, state in zip(rngs, states):
        rng.bit_generator.state = state


def checkpoint(fn: Callable[..., Tensor], *inputs,
               rngs: Sequence[np.random.Generator] = ()) -> Tensor:
    """Run ``fn(*inputs)`` without recording; recompute it on backward.

    Parameters
    ----------
    fn:
        A deterministic function of its tensor inputs (it may also close
        over module parameters — they get gradients during the replay).
    inputs:
        Positional arguments; ``Tensor`` arguments participate in the
        autograd graph, everything else is passed through untouched.
    rngs:
        Generators consumed inside ``fn`` (e.g. Dropout modules' rngs);
        their states are restored before the replay so the recomputed
        forward is bit-identical.
    """
    tensor_inputs = [t for t in inputs if isinstance(t, Tensor)]
    rng_states = _snapshot_rng_states(rngs)

    with no_grad():
        out = fn(*inputs)
    if not isinstance(out, Tensor):
        raise TypeError(f"checkpointed fn must return a Tensor, got {type(out)!r}")
    out_data = out.data

    def backward(g):
        _restore_rng_states(rngs, rng_states)
        # fresh leaves so the replayed graph is private to this closure
        replay_args = []
        leaves: list[tuple[Tensor, Tensor]] = []
        for arg in inputs:
            if isinstance(arg, Tensor):
                leaf = Tensor(arg.data, requires_grad=arg.requires_grad)
                leaves.append((arg, leaf))
                replay_args.append(leaf)
            else:
                replay_args.append(arg)
        replay_out = fn(*replay_args)
        if replay_out.requires_grad:
            replay_out.backward(g)
        for original, leaf in leaves:
            if original.requires_grad and leaf.grad is not None:
                original._accumulate(leaf.grad)

    out_t = Tensor._make(out_data, tensor_inputs, backward)
    if is_grad_enabled() and not out_t.requires_grad:
        # fn may close over parameters the inputs know nothing about (the
        # usual case: x is data, fn is a module).  Record the closure
        # anyway; if the replay finds no trainable tensors either, its
        # backward is a no-op.
        out_t.requires_grad = True
        out_t._parents = tuple(tensor_inputs)
        out_t._backward = backward
    return out_t


def checkpoint_sequential(blocks: Sequence[Callable[[Tensor], Tensor]],
                          x: Tensor,
                          rngs: Sequence[np.random.Generator] = ()) -> Tensor:
    """Checkpoint each block of a layer stack in turn.

    The transformer use case: pass the model's layer list and only one
    layer's activations are ever live during backward instead of all L.
    """
    for block in blocks:
        x = checkpoint(block, x, rngs=rngs)
    return x


def live_graph_size(root: Tensor) -> tuple[int, int]:
    """(number of tensors, bytes) the autograd graph from ``root`` keeps.

    Walks ``_parents`` recursively — exactly the set of arrays that cannot
    be freed until backward runs, i.e. activation memory.  Checkpointed
    graphs collapse each block to one node, which is the point.
    """
    seen: set[int] = set()
    stack = [root]
    count = 0
    nbytes = 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        count += 1
        nbytes += node.data.nbytes
        stack.extend(node._parents)
    return count, nbytes
