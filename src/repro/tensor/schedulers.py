"""Learning-rate schedules for the numpy substrate.

Graphormer's original recipe is linear warmup followed by **polynomial
decay** (Ying et al., NeurIPS'21 — appendix hyperparameters); GT and the
GNN baselines typically use a constant rate or cosine decay.  All schedules
here share one protocol: construct around an :class:`~repro.tensor.optim.
Optimizer`, call :meth:`~LRSchedule.step` once per optimizer step, and the
schedule writes the new rate into ``optimizer.lr`` and returns it.

Schedules are deliberately stateful-but-tiny objects (a step counter), so
they serialize trivially alongside a training checkpoint via
:meth:`LRSchedule.state_dict` / :meth:`LRSchedule.load_state_dict`.
"""

from __future__ import annotations

import numpy as np

from .optim import Optimizer

__all__ = [
    "LRSchedule",
    "ConstantSchedule",
    "WarmupCosineSchedule",
    "WarmupLinearSchedule",
    "PolynomialDecaySchedule",
    "StepDecaySchedule",
]


class LRSchedule:
    """Base schedule: warmup handling, step counting, checkpoint state.

    Subclasses implement :meth:`_decay_factor`, mapping post-warmup
    progress ``∈ [0, 1]`` to a multiplier on the base learning rate.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int = 0,
                 total_steps: int = 1):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be >= 0")
        if warmup_steps >= total_steps:
            raise ValueError(
                f"warmup_steps={warmup_steps} must be < total_steps={total_steps}")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self._step = 0

    # -- protocol -------------------------------------------------------- #
    def step(self) -> float:
        """Advance one step; write and return the new learning rate."""
        self._step += 1
        lr = self.lr_at(self._step)
        self.optimizer.lr = lr
        return lr

    def lr_at(self, t: int) -> float:
        """The learning rate the schedule assigns to step ``t`` (1-based)."""
        if t <= self.warmup_steps and self.warmup_steps > 0:
            return self.base_lr * t / self.warmup_steps
        denom = max(self.total_steps - self.warmup_steps, 1)
        progress = min((t - self.warmup_steps) / denom, 1.0)
        return self.base_lr * self._decay_factor(progress)

    def _decay_factor(self, progress: float) -> float:  # pragma: no cover
        raise NotImplementedError

    # -- checkpointing ----------------------------------------------------- #
    def state_dict(self) -> dict:
        return {"step": self._step, "base_lr": self.base_lr}

    def load_state_dict(self, state: dict) -> None:
        self._step = int(state["step"])
        self.base_lr = float(state["base_lr"])
        if self._step > 0:
            self.optimizer.lr = self.lr_at(self._step)


class ConstantSchedule(LRSchedule):
    """Warmup then a flat rate — the no-decay control for ablations."""

    def _decay_factor(self, progress: float) -> float:
        return 1.0


class WarmupCosineSchedule(LRSchedule):
    """Linear warmup followed by cosine decay to ``min_lr_ratio · base``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int,
                 min_lr_ratio: float = 0.01):
        super().__init__(optimizer, warmup_steps, total_steps)
        self.min_lr_ratio = min_lr_ratio

    def _decay_factor(self, progress: float) -> float:
        cos = 0.5 * (1.0 + float(np.cos(np.pi * progress)))
        return self.min_lr_ratio + (1.0 - self.min_lr_ratio) * cos


class WarmupLinearSchedule(LRSchedule):
    """Linear warmup then linear decay to ``min_lr_ratio · base``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int,
                 min_lr_ratio: float = 0.0):
        super().__init__(optimizer, warmup_steps, total_steps)
        self.min_lr_ratio = min_lr_ratio

    def _decay_factor(self, progress: float) -> float:
        return self.min_lr_ratio + (1.0 - self.min_lr_ratio) * (1.0 - progress)


class PolynomialDecaySchedule(LRSchedule):
    """Graphormer's schedule: warmup, then ``(1 - progress)^power`` decay
    from the base rate down to ``end_lr``.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int,
                 end_lr: float = 1e-9, power: float = 1.0):
        super().__init__(optimizer, warmup_steps, total_steps)
        if end_lr < 0:
            raise ValueError("end_lr must be >= 0")
        self.end_lr = end_lr
        self.power = power

    def _decay_factor(self, progress: float) -> float:
        end_ratio = self.end_lr / self.base_lr if self.base_lr > 0 else 0.0
        return end_ratio + (1.0 - end_ratio) * (1.0 - progress) ** self.power


class StepDecaySchedule(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` steps (after
    warmup) — torch's ``StepLR``, used by the GNN baselines.
    """

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5,
                 warmup_steps: int = 0):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        # total_steps is irrelevant for step decay; pick something > warmup
        super().__init__(optimizer, warmup_steps, max(warmup_steps + 1, 2))
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, t: int) -> float:
        if t <= self.warmup_steps and self.warmup_steps > 0:
            return self.base_lr * t / self.warmup_steps
        n_drops = (t - self.warmup_steps) // self.step_size
        return self.base_lr * self.gamma**n_drops

    def _decay_factor(self, progress: float) -> float:  # pragma: no cover
        raise NotImplementedError("StepDecaySchedule overrides lr_at directly")
