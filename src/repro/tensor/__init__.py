"""Numpy autograd substrate replacing PyTorch for the TorchGT repro.

Public surface: :class:`Tensor` with reverse-mode AD, fused functional ops,
``nn``-style modules, optimizers, and the simulated-bf16 precision policy
used by the Table VII experiment.
"""

from .precision import Precision, apply_precision, quantize_bf16
from .tensor import (
    Tensor,
    concat,
    get_precision,
    is_grad_enabled,
    no_grad,
    precision_scope,
    set_precision,
    stack,
    where,
)
from . import functional
from .module import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
)
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .schedulers import (
    ConstantSchedule,
    LRSchedule,
    PolynomialDecaySchedule,
    StepDecaySchedule,
    WarmupCosineSchedule,
    WarmupLinearSchedule,
)
from .checkpoint import checkpoint, checkpoint_sequential, live_graph_size

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "set_precision",
    "get_precision",
    "precision_scope",
    "Precision",
    "apply_precision",
    "quantize_bf16",
    "functional",
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRSchedule",
    "ConstantSchedule",
    "WarmupCosineSchedule",
    "WarmupLinearSchedule",
    "PolynomialDecaySchedule",
    "StepDecaySchedule",
    "clip_grad_norm",
    "checkpoint",
    "checkpoint_sequential",
    "live_graph_size",
]
