"""Fused differentiable functions on :class:`~repro.tensor.Tensor`.

Softmax, layer norm, GELU, dropout and the loss functions used by the
graph transformer models are implemented here as *fused* ops: each has a
hand-written backward instead of being composed from primitives, which both
cuts graph depth (important for the long-sequence experiments) and mirrors
how the paper's kernels treat Softmax/Dropout as single fused GPU kernels.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "workspace_buffer",
    "softmax",
    "softmax_forward",
    "log_softmax",
    "masked_softmax",
    "gelu",
    "gelu_forward",
    "layer_norm",
    "layer_norm_forward",
    "dropout",
    "embedding_lookup",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "l1_loss",
    "mse_loss",
]


def workspace_buffer(ws: dict | None, key: str, shape: tuple[int, ...], dtype) -> np.ndarray:
    """Fetch (or lazily create) a reusable scratch buffer.

    ``ws`` is a per-call-site dict owned by the caller; ``None`` means "no
    workspace", which degrades to a fresh ``np.empty`` — the behaviour the
    plain autograd ops want, since their outputs escape the call.  When a
    workspace is supplied, the buffer persists across calls and is only
    reallocated when the requested shape or dtype changes (e.g. a new
    sequence-length bucket), so steady-state use allocates nothing.
    """
    if ws is None:
        return np.empty(shape, dtype)
    buf = ws.get(key)
    if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
        buf = np.empty(shape, dtype)
        ws[key] = buf
    return buf


_buf = workspace_buffer


def softmax_forward(x: np.ndarray, axis: int = -1,
                    ws: dict | None = None) -> np.ndarray:
    """Out=-capable softmax forward shared by :func:`softmax` and the
    compiled backend; bitwise-identical to the composed expression."""
    red_shape = tuple(1 if i == axis % x.ndim else s for i, s in enumerate(x.shape))
    mx = _buf(ws, "sm_mx", red_shape, x.dtype)
    np.amax(x, axis=axis, keepdims=True, out=mx)
    out = _buf(ws, "sm_out", x.shape, x.dtype)
    np.subtract(x, mx, out=out)
    np.exp(out, out=out)
    np.sum(out, axis=axis, keepdims=True, out=mx)
    np.divide(out, mx, out=out)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis`` with fused backward."""
    a = x
    out_data = softmax_forward(a.data, axis=axis)

    def backward(g):
        if a.requires_grad:
            # d softmax: s * (g - sum(g * s))
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (a,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably with fused backward."""
    a = x
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(g):
        if a.requires_grad:
            a._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (a,), backward)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over the entries where ``mask`` is True; zeros elsewhere.

    Rows with no unmasked entry produce all-zero outputs (and gradients),
    matching the convention sparse attention kernels use for isolated
    nodes.
    """
    a = x
    neg = np.float64(-1e30)
    masked = np.where(mask, a.data, neg)
    shifted = masked - masked.max(axis=axis, keepdims=True)
    e = np.exp(shifted) * mask
    denom = e.sum(axis=axis, keepdims=True)
    safe = np.maximum(denom, 1e-30)
    out_data = e / safe

    def backward(g):
        if a.requires_grad:
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (a,), backward)


_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu_forward(x: np.ndarray, ws: dict | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Out=-capable GELU forward returning ``(out, tanh_term)``.

    Three scratch buffers replace the ~8 intermediates the composed
    expression allocates; every in-place step is bitwise-identical to the
    out-of-place original (only commutative operand swaps are used).
    """
    u = _buf(ws, "gelu_u", x.shape, x.dtype)
    t = _buf(ws, "gelu_t", x.shape, x.dtype)
    out = _buf(ws, "gelu_out", x.shape, x.dtype)
    np.power(x, 3, out=u)
    np.multiply(u, 0.044715, out=u)
    np.add(x, u, out=u)
    np.multiply(u, _SQRT_2_OVER_PI, out=u)
    np.tanh(u, out=t)
    np.add(t, 1.0, out=out)
    np.multiply(x, 0.5, out=u)
    np.multiply(u, out, out=out)
    return out, t


def gelu(x: Tensor) -> Tensor:
    """GELU activation (tanh approximation, as used by Graphormer)."""
    a = x
    out_data, t = gelu_forward(a.data)

    def backward(g):
        if a.requires_grad:
            du = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * a.data**2)
            dt = (1.0 - t * t) * du
            a._accumulate(g * (0.5 * (1.0 + t) + 0.5 * a.data * dt))

    return Tensor._make(out_data, (a,), backward)


def layer_norm_forward(x: np.ndarray, w: np.ndarray, b: np.ndarray,
                       eps: float = 1e-5, ws: dict | None = None,
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Out=-capable layer-norm forward returning ``(out, x_hat, inv_std)``.

    Shared by :func:`layer_norm` and the compiled backend.  Each in-place
    step reproduces the composed expression bitwise; ``x_hat`` reuses the
    centred-input buffer and ``inv_std`` the variance buffer.
    """
    red_shape = x.shape[:-1] + (1,)
    mu = _buf(ws, "ln_mu", red_shape, x.dtype)
    np.mean(x, axis=-1, keepdims=True, out=mu)
    xc = _buf(ws, "ln_xc", x.shape, x.dtype)
    np.subtract(x, mu, out=xc)
    sq = _buf(ws, "ln_sq", x.shape, x.dtype)
    np.multiply(xc, xc, out=sq)
    var = _buf(ws, "ln_var", red_shape, x.dtype)
    np.mean(sq, axis=-1, keepdims=True, out=var)
    np.add(var, eps, out=var)
    np.sqrt(var, out=var)
    np.divide(1.0, var, out=var)  # var buffer now holds inv_std
    np.multiply(xc, var, out=xc)  # xc buffer now holds x_hat
    out = _buf(ws, "ln_out", x.shape, np.result_type(x.dtype, w.dtype, b.dtype))
    np.multiply(xc, w, out=out)
    np.add(out, b, out=out)
    return out, xc, var


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis with affine transform."""
    a, w, b = x, weight, bias
    out_data, x_hat, inv_std = layer_norm_forward(a.data, w.data, b.data, eps)

    def backward(g):
        if w.requires_grad:
            axes = tuple(range(g.ndim - 1))
            w._accumulate((g * x_hat).sum(axis=axes))
        if b.requires_grad:
            axes = tuple(range(g.ndim - 1))
            b._accumulate(g.sum(axis=axes))
        if a.requires_grad:
            gx = g * w.data
            mean_gx = gx.mean(axis=-1, keepdims=True)
            mean_gx_xhat = (gx * x_hat).mean(axis=-1, keepdims=True)
            a._accumulate(inv_std * (gx - mean_gx - x_hat * mean_gx_xhat))

    return Tensor._make(out_data, (a, w, b), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) at train time."""
    if not training or p <= 0.0:
        return x
    a = x
    keep = 1.0 - p
    mask = (rng.random(a.data.shape) < keep) / keep

    def backward(g):
        if a.requires_grad:
            a._accumulate(g * mask)

    return Tensor._make(a.data * mask, (a,), backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` at integer ``indices`` (scatter-add bwd)."""
    t = table
    idx = np.asarray(indices)

    def backward(g):
        if t.requires_grad:
            buf = np.zeros_like(t.data)
            np.add.at(buf, idx.reshape(-1), g.reshape(-1, t.data.shape[-1]))
            t._accumulate(buf)

    return Tensor._make(t.data[idx], (t,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy over rows of ``logits`` against int ``targets``.

    Rows whose target equals ``ignore_index`` contribute neither loss nor
    gradient (used to skip padded / unlabeled nodes).
    """
    a = logits
    targets = np.asarray(targets)
    n, _ = a.data.shape
    shifted = a.data - a.data.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - lse
    if ignore_index is not None:
        valid = targets != ignore_index
    else:
        valid = np.ones(n, dtype=bool)
    count = max(int(valid.sum()), 1)
    safe_targets = np.where(valid, targets, 0)
    picked = logp[np.arange(n), safe_targets]
    loss_val = -(picked * valid).sum() / count
    soft = np.exp(logp)

    def backward(g):
        if a.requires_grad:
            grad = soft.copy()
            grad[np.arange(n), safe_targets] -= 1.0
            grad *= (valid / count)[:, None]
            a._accumulate(grad * g)

    return Tensor._make(np.asarray(loss_val), (a,), backward)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     mask: np.ndarray | None = None) -> Tensor:
    """Mean BCE-with-logits, optionally masked (multi-task molpcba-style)."""
    a = logits
    y = np.asarray(targets, dtype=np.float64)
    if mask is None:
        mask = np.ones_like(y, dtype=bool)
    count = max(int(mask.sum()), 1)
    z = a.data
    # stable formulation: max(z,0) - z*y + log(1+exp(-|z|))
    loss = np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))
    loss_val = (loss * mask).sum() / count
    sig = 1.0 / (1.0 + np.exp(-z))

    def backward(g):
        if a.requires_grad:
            a._accumulate(g * (sig - y) * mask / count)

    return Tensor._make(np.asarray(loss_val), (a,), backward)


def l1_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error (ZINC's MAE objective)."""
    a = pred
    y = np.asarray(targets, dtype=np.float64)
    diff = a.data - y
    count = diff.size

    def backward(g):
        if a.requires_grad:
            a._accumulate(g * np.sign(diff) / count)

    return Tensor._make(np.asarray(np.abs(diff).mean()), (a,), backward)


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    a = pred
    y = np.asarray(targets, dtype=np.float64)
    diff = a.data - y
    count = diff.size

    def backward(g):
        if a.requires_grad:
            a._accumulate(g * 2.0 * diff / count)

    return Tensor._make(np.asarray((diff * diff).mean()), (a,), backward)
