"""Optimizers and learning-rate schedules for the numpy substrate.

AdamW is the optimizer Graphormer and GT use in their original papers; SGD
and plain Adam are provided for the GNN baselines and the ablations.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm (useful for logging training stability).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad * p.grad).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable lr."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- checkpointing --------------------------------------------------- #
    def state_dict(self) -> dict:
        """Hyperparameters plus per-parameter buffers (momentum, moments).

        Buffers are keyed by parameter position, so loading requires the
        same parameter list order — the same contract torch optimizers
        have.
        """
        return {"lr": self.lr, "buffers": self._buffers()}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self._load_buffers(state["buffers"])

    def _buffers(self) -> dict:
        """Subclass hook: name → list of per-parameter arrays/scalars."""
        return {}

    def _load_buffers(self, buffers: dict) -> None:
        for name, values in buffers.items():
            current = getattr(self, name)
            if isinstance(current, list):
                if len(current) != len(values):
                    raise ValueError(
                        f"buffer {name!r} has {len(values)} entries for "
                        f"{len(current)} parameters")
                for buf, arr in zip(current, values):
                    if buf.shape != arr.shape:
                        raise ValueError(f"shape mismatch in buffer {name!r}")
                    buf[...] = arr
            else:
                setattr(self, name, values)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def _buffers(self) -> dict:
        return {"_velocity": [v.copy() for v in self._velocity]}


class Adam(Optimizer):
    """Adam with bias correction (L2 folded into the gradient)."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def _buffers(self) -> dict:
        return {"_m": [m.copy() for m in self._m],
                "_v": [v.copy() for v in self._v],
                "_t": self._t}


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


# Learning-rate schedules live in repro.tensor.schedulers (WarmupCosine,
# WarmupLinear, PolynomialDecay — Graphormer's recipe — StepDecay, Constant).
