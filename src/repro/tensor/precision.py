"""Precision policies for the numpy training substrate.

TorchGT's evaluation (Table VII) compares FP32 training against BF16
training: FlashAttention only supports FP16/BF16, which degrades model
accuracy on some datasets, while TorchGT runs FP32 without giving up its
speedup.  Real bfloat16 hardware is unavailable here, so we *simulate* the
precision loss: ``quantize_bf16`` rounds a float32/float64 array to the
nearest representable bfloat16 value (8-bit exponent, 7-bit mantissa) by
round-to-nearest-even truncation of the low 16 bits of the float32 bit
pattern.  Running every op's output through this rounding reproduces the
error accumulation of genuine BF16 arithmetic closely enough to show the
accuracy gap the paper attributes to reduced precision.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Precision", "quantize_bf16", "apply_precision"]


class Precision:
    """Supported compute precisions.

    ``FP32`` / ``FP64`` are native numpy dtypes.  ``BF16`` is simulated:
    storage stays float32 but every op output is rounded to the bfloat16
    grid, mirroring mixed-precision training where accumulation happens in
    fp32 but values are stored/communicated in bf16.
    """

    FP64 = "fp64"
    FP32 = "fp32"
    BF16 = "bf16"

    ALL = (FP64, FP32, BF16)

    @staticmethod
    def dtype(precision: str) -> np.dtype:
        """Return the numpy storage dtype used for ``precision``."""
        if precision == Precision.FP64:
            return np.dtype(np.float64)
        if precision in (Precision.FP32, Precision.BF16):
            return np.dtype(np.float32)
        raise ValueError(f"unknown precision: {precision!r}")

    @staticmethod
    def bytes_per_element(precision: str) -> int:
        """Bytes each element occupies on the modeled device.

        BF16 really is 2 bytes on device even though we store float32 on
        the host; the hardware model uses this for memory accounting.
        """
        if precision == Precision.FP64:
            return 8
        if precision == Precision.FP32:
            return 4
        if precision == Precision.BF16:
            return 2
        raise ValueError(f"unknown precision: {precision!r}")


def quantize_bf16(x: np.ndarray) -> np.ndarray:
    """Round ``x`` to the nearest bfloat16-representable float32 values.

    Implements round-to-nearest-even on the float32 bit pattern: bfloat16
    is the top 16 bits of IEEE float32, so we add the rounding bias and
    zero the low 16 bits.
    """
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # round-to-nearest-even: bias depends on the bit just above the cut
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    out = rounded.view(np.float32)
    # preserve NaN payloads conservatively
    nan_mask = np.isnan(x32)
    if nan_mask.any():
        out = np.where(nan_mask, np.float32(np.nan), out)
    return out


def apply_precision(x: np.ndarray, precision: str) -> np.ndarray:
    """Cast/round ``x`` according to ``precision``.

    This is the single hook every autograd op output passes through; it is
    a no-op cast for FP32/FP64 and a bf16 grid rounding for BF16.
    """
    if precision == Precision.BF16:
        return quantize_bf16(x)
    return np.asarray(x, dtype=Precision.dtype(precision))
