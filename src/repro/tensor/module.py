"""Minimal nn.Module system over the numpy autograd tensor.

Mirrors the subset of ``torch.nn`` the graph transformer models need:
parameter registration/traversal, train/eval mode, and the Linear /
Embedding / LayerNorm / Dropout building blocks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ModuleList",
]


class Parameter(Tensor):
    """A tensor registered as a trainable model parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter traversal and train/eval switching."""

    def __init__(self) -> None:
        self.training = True

    # -- traversal ----------------------------------------------------- #
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters reachable from this module (depth-first)."""
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value._parameters(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._parameters(seen)
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- mode ---------------------------------------------------------- #
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state --------------------------------------------------------- #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter paths to copies of their arrays."""
        out: dict[str, np.ndarray] = {}
        self._collect_state("", out)
        return out

    def _collect_state(self, prefix: str, out: dict[str, np.ndarray]) -> None:
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                out[path] = value.data.copy()
            elif isinstance(value, Module):
                value._collect_state(path + ".", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_state(f"{path}.{i}.", out)
                    elif isinstance(item, Parameter):
                        out[f"{path}.{i}"] = item.data.copy()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (shapes must match)."""
        current = dict(self._named_parameters(""))
        for path, arr in state.items():
            if path not in current:
                raise KeyError(f"unknown parameter path: {path}")
            param = current[path]
            if param.data.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {path}: {param.data.shape} vs {arr.shape}")
            param.data = arr.astype(param.data.dtype, copy=True)

    def _named_parameters(self, prefix: str) -> Iterator[tuple[str, Parameter]]:
        for key, value in self.__dict__.items():
            path = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value._named_parameters(path + ".")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_parameters(f"{path}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{path}.{i}", item

    # -- call ---------------------------------------------------------- #
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x @ W + b`` with Xavier-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        bound = float(np.sqrt(6.0 / (in_features + out_features)))
        self.weight = Parameter(rng.uniform(-bound, bound, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of ``num_embeddings × dim`` learnable rows."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None, scale: float = 0.02):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.weight = Parameter(rng.standard_normal((num_embeddings, dim)) * scale)
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator | None = None):
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A list container whose items are registered as submodules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self.items = list(modules) if modules else []

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)

    def __getitem__(self, i):
        return self.items[i]
