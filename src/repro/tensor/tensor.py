"""A numpy-backed reverse-mode autodiff tensor.

This module is the substrate that replaces PyTorch for the TorchGT
reproduction.  It implements a tensor-granular autograd: each ``Tensor``
wraps an ``np.ndarray`` and records, when ``requires_grad`` is set, a
backward closure plus its parent tensors.  ``Tensor.backward()`` runs a
topological sort over the recorded graph and accumulates gradients.

Design notes (per the HPC guides):

* All op implementations are vectorized numpy — no Python-level loops over
  elements.  Broadcasting is embraced in forward and undone in backward by
  :func:`unbroadcast`.
* Gradients accumulate in-place (``+=``) into pre-allocated buffers to
  avoid churn, and reductions use ufunc ``.sum`` over axes rather than
  copies.
* A global precision policy (see :mod:`repro.tensor.precision`) lets the
  whole engine run in simulated bfloat16 for the Table VII experiment.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from contextlib import contextmanager

import numpy as np

from .precision import Precision, apply_precision

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "set_precision",
           "get_precision", "precision_scope"]

_GRAD_ENABLED = True
_PRECISION = Precision.FP32


def set_precision(precision: str) -> None:
    """Set the global compute precision (``fp64``, ``fp32`` or ``bf16``)."""
    global _PRECISION
    if precision not in Precision.ALL:
        raise ValueError(f"unknown precision: {precision!r}")
    _PRECISION = precision


def get_precision() -> str:
    """Return the current global compute precision."""
    return _PRECISION


@contextmanager
def precision_scope(precision: str):
    """Run a block under ``precision``, restoring the previous setting
    even if the block raises (trainers run user callbacks inside it)."""
    prev = get_precision()
    set_precision(precision)
    try:
        yield
    finally:
        set_precision(prev)


class no_grad:
    """Context manager that disables graph recording (like torch.no_grad)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Whether ops currently record the autograd graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes.

    Forward ops rely on numpy broadcasting; the corresponding backward must
    sum gradient contributions over every axis that was expanded.
    """
    if grad.shape == shape:
        return grad
    # sum leading axes added by broadcasting
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum axes that were size-1 in the original shape
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; cast to the active precision's storage dtype.
    requires_grad:
        Record the autograd graph through this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 1000  # make numpy defer to our reflected ops

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "fc":
            arr = arr.astype(Precision.dtype(_PRECISION), copy=False)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """A view of this tensor cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Wrap an op output, recording the graph if grad is enabled."""
        # fast path: apply_precision already produced a conforming ndarray,
        # so skip __init__'s coercion and assign slots directly — this is
        # the per-op overhead every hot-loop forward pays
        data = apply_precision(data, _PRECISION)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out.name = ""
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer (in place)."""
        grad = np.asarray(grad, dtype=self.data.dtype if self.data.dtype.kind == "f" else np.float64)
        if grad.shape != self.data.shape:
            grad = unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # iterative topological order (graphs can be thousands of ops deep)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(x) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                a._accumulate(g)
            if b.requires_grad:
                b._accumulate(g)

        return Tensor._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                a._accumulate(g)
            if b.requires_grad:
                b._accumulate(-g)

        return Tensor._make(a.data - b.data, (a, b), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * b.data)
            if b.requires_grad:
                b._accumulate(g * a.data)

        return Tensor._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                a._accumulate(g / b.data)
            if b.requires_grad:
                b._accumulate(-g * a.data / (b.data * b.data))

        return Tensor._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g):
            if a.requires_grad:
                a._accumulate(-g)

        return Tensor._make(-a.data, (a,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        a = self
        p = float(exponent)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * p * np.power(a.data, p - 1.0))

        return Tensor._make(np.power(a.data, p), (a,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                ga = g @ np.swapaxes(b.data, -1, -2)
                a._accumulate(unbroadcast(ga, a.data.shape))
            if b.requires_grad:
                gb = np.swapaxes(a.data, -1, -2) @ g
                b._accumulate(unbroadcast(gb, b.data.shape))

        return Tensor._make(a.data @ b.data, (a, b), backward)

    # comparisons (non-differentiable, return plain arrays)
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------ #
    # elementwise transcendental
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * out_data)

        return Tensor._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(g):
            if a.requires_grad:
                a._accumulate(g / a.data)

        return Tensor._make(np.log(a.data), (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        out_data = np.sqrt(a.data)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * 0.5 / np.maximum(out_data, 1e-30))

        return Tensor._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        out_data = 1.0 / (1.0 + np.exp(-a.data))

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * mask)

        return Tensor._make(a.data * mask, (a,), backward)

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(a.data)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * sign)

        return Tensor._make(np.abs(a.data), (a,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        a = self
        mask = (a.data >= lo) & (a.data <= hi)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * mask)

        return Tensor._make(np.clip(a.data, lo, hi), (a,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self

        def backward(g):
            if not a.requires_grad:
                return
            if axis is None:
                a._accumulate(np.broadcast_to(g, a.data.shape))
            else:
                g2 = g if keepdims else np.expand_dims(g, axis)
                a._accumulate(np.broadcast_to(g2, a.data.shape))

        return Tensor._make(a.data.sum(axis=axis, keepdims=keepdims), (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        if axis is None:
            count = a.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([a.data.shape[ax] for ax in axes]))

        def backward(g):
            if not a.requires_grad:
                return
            if axis is None:
                a._accumulate(np.broadcast_to(g / count, a.data.shape))
            else:
                g2 = g if keepdims else np.expand_dims(g, axis)
                a._accumulate(np.broadcast_to(g2 / count, a.data.shape))

        return Tensor._make(a.data.mean(axis=axis, keepdims=keepdims), (a,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.max(axis=axis, keepdims=True)
        mask = a.data == out_data
        # split gradient evenly among ties, matching subgradient convention
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(g):
            if not a.requires_grad:
                return
            if axis is None:
                g2 = g
            else:
                g2 = g if keepdims else np.expand_dims(g, axis)
            a._accumulate(mask * (g2 / counts))

        result = out_data if keepdims or axis is None else np.squeeze(out_data, axis=axis)
        if axis is None and not keepdims:
            result = np.asarray(result).reshape(())
        return Tensor._make(result, (a,), backward)

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.data.shape

        def backward(g):
            if a.requires_grad:
                a._accumulate(g.reshape(old_shape))

        return Tensor._make(a.data.reshape(shape), (a,), backward)

    def transpose(self, *axes) -> "Tensor":
        a = self
        if not axes:
            perm = tuple(reversed(range(a.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            perm = tuple(axes[0])
        else:
            perm = tuple(axes)
        inv = tuple(np.argsort(perm))

        def backward(g):
            if a.requires_grad:
                a._accumulate(g.transpose(inv))

        return Tensor._make(a.data.transpose(perm), (a,), backward)

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        a = self

        def backward(g):
            if a.requires_grad:
                a._accumulate(np.swapaxes(g, ax1, ax2))

        return Tensor._make(np.swapaxes(a.data, ax1, ax2), (a,), backward)

    def __getitem__(self, idx) -> "Tensor":
        a = self

        def backward(g):
            if a.requires_grad:
                buf = np.zeros_like(a.data)
                np.add.at(buf, idx, g)
                a._accumulate(buf)

        return Tensor._make(a.data[idx], (a,), backward)

    # ------------------------------------------------------------------ #
    # factory methods
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None, scale: float = 1.0,
              requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    ts = [Tensor._coerce(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        for t, lo, hi in zip(ts, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(lo), int(hi))
                t._accumulate(g[tuple(sl)])

    return Tensor._make(np.concatenate([t.data for t in ts], axis=axis), ts, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    ts = [Tensor._coerce(t) for t in tensors]

    def backward(g):
        for i, t in enumerate(ts):
            if t.requires_grad:
                t._accumulate(np.take(g, i, axis=axis))

    return Tensor._make(np.stack([t.data for t in ts], axis=axis), ts, backward)


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise select; ``cond`` is a plain bool array."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    cond = np.asarray(cond)

    def backward(g):
        if a.requires_grad:
            a._accumulate(unbroadcast(g * cond, a.data.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(g * (~cond), b.data.shape))

    return Tensor._make(np.where(cond, a.data, b.data), (a, b), backward)
