"""Synthetic graph generators with controlled sparsity, skew and clustering.

The paper's three techniques exploit exactly three structural properties of
real graphs: extreme sparsity, power-law degree skew, and community
(cluster) structure.  These generators let each property be dialed in
independently so the synthetic stand-ins for the OGB datasets (Table III)
have the right *shape* even at reduced scale:

* :func:`barabasi_albert` — power-law degree skew (citation/social graphs);
* :func:`dc_sbm` — planted communities with degree correction, the main
  generator for the cluster-aware experiments;
* :func:`molecule_like` — small, nearly-tree-shaped graphs with rings for
  ZINC / ogbg-molpcba style graph-level tasks;
* :func:`erdos_renyi`, :func:`ring_of_cliques`, :func:`grid_graph` —
  controls for the ablations and tests.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "dc_sbm",
    "ring_of_cliques",
    "grid_graph",
    "molecule_like",
    "path_graph",
    "star_graph",
    "complete_graph",
    "rmat",
]


def erdos_renyi(n: int, p: float, rng: np.random.Generator) -> CSRGraph:
    """G(n, p) random graph (vectorized sampling of the upper triangle)."""
    if n <= 1:
        return CSRGraph.from_edges(max(n, 0), np.empty((0, 2), dtype=np.int64))
    # Sample edge count then positions — avoids materializing n^2 booleans.
    max_pairs = n * (n - 1) // 2
    m = rng.binomial(max_pairs, p)
    if m == 0:
        return CSRGraph.from_edges(n, np.empty((0, 2), dtype=np.int64))
    flat = rng.choice(max_pairs, size=min(m, max_pairs), replace=False)
    # invert the linear index of the strictly-upper triangle
    i = (n - 2 - np.floor(np.sqrt(-8 * flat + 4 * n * (n - 1) - 7) / 2.0 - 0.5)).astype(np.int64)
    j = (flat + i + 1 - i * (2 * n - i - 1) // 2).astype(np.int64)
    return CSRGraph.from_edges(n, np.stack([i, j], axis=1))


def barabasi_albert(n: int, m: int, rng: np.random.Generator) -> CSRGraph:
    """Preferential-attachment graph: power-law degrees with exponent ≈ 3.

    Each arriving node attaches to ``m`` existing nodes sampled
    proportionally to degree (implemented with the repeated-endpoints trick
    so sampling stays O(1) amortized).
    """
    if m < 1 or n <= m:
        raise ValueError("need n > m >= 1")
    targets = list(range(m))
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    for v in range(m, n):
        for t in set(targets):
            edges.append((v, t))
        repeated.extend(targets)
        repeated.extend([v] * m)
        # next targets: degree-proportional sample from the endpoint pool
        idx = rng.integers(0, len(repeated), size=m)
        targets = [repeated[i] for i in idx]
    return CSRGraph.from_edges(n, np.array(edges, dtype=np.int64))


def dc_sbm(
    n: int,
    num_blocks: int,
    avg_degree: float,
    rng: np.random.Generator,
    p_in_over_p_out: float = 20.0,
    power_law_exponent: float = 2.5,
    block_sizes: np.ndarray | None = None,
) -> tuple[CSRGraph, np.ndarray]:
    """Degree-corrected stochastic block model.

    Produces a graph with ``num_blocks`` planted communities whose
    intra-community edge propensity is ``p_in_over_p_out`` times the
    inter-community one, and per-node degree propensities drawn from a
    truncated power law (the skew that causes the irregular-access problem
    ECR attacks).

    Returns the graph and the per-node block assignment.
    """
    if block_sizes is None:
        sizes = np.full(num_blocks, n // num_blocks, dtype=np.int64)
        sizes[: n % num_blocks] += 1
    else:
        sizes = np.asarray(block_sizes, dtype=np.int64)
        if sizes.sum() != n:
            raise ValueError("block sizes must sum to n")
    blocks = np.repeat(np.arange(num_blocks), sizes)

    # degree propensities: truncated Pareto, normalized per block
    theta = (1.0 + rng.pareto(power_law_exponent - 1.0, size=n))
    theta = np.minimum(theta, 50.0)

    target_edges = int(n * avg_degree / 2)
    r = p_in_over_p_out
    # probability an edge endpoint pair is intra-block
    intra_frac = r / (r + (num_blocks - 1.0)) if num_blocks > 1 else 1.0
    n_intra = int(target_edges * intra_frac)
    n_inter = target_edges - n_intra

    edges: list[np.ndarray] = []
    # intra-block edges: sample block by size share, endpoints by theta
    block_starts = np.concatenate([[0], np.cumsum(sizes)])
    block_weight = sizes.astype(np.float64) ** 2
    block_weight /= block_weight.sum()
    if n_intra > 0:
        chosen = rng.choice(num_blocks, size=n_intra, p=block_weight)
        for b in range(num_blocks):
            cnt = int((chosen == b).sum())
            if cnt == 0 or sizes[b] < 2:
                continue
            lo, hi = block_starts[b], block_starts[b + 1]
            w = theta[lo:hi] / theta[lo:hi].sum()
            u = rng.choice(np.arange(lo, hi), size=cnt, p=w)
            v = rng.choice(np.arange(lo, hi), size=cnt, p=w)
            keep = u != v
            edges.append(np.stack([u[keep], v[keep]], axis=1))
    if n_inter > 0 and num_blocks > 1:
        w_all = theta / theta.sum()
        u = rng.choice(n, size=2 * n_inter, p=w_all)
        v = rng.choice(n, size=2 * n_inter, p=w_all)
        keep = blocks[u] != blocks[v]
        edges.append(np.stack([u[keep][:n_inter], v[keep][:n_inter]], axis=1))
    if edges:
        edge_arr = np.concatenate(edges, axis=0)
    else:
        edge_arr = np.empty((0, 2), dtype=np.int64)
    g = CSRGraph.from_edges(n, edge_arr)
    return g, blocks


def ring_of_cliques(num_cliques: int, clique_size: int) -> tuple[CSRGraph, np.ndarray]:
    """Cliques joined in a ring — the idealized "perfectly clustered" graph.

    Used as a control in partitioner tests: the optimal partition is
    obvious, so edge-cut quality is checkable exactly.  Returns the graph
    and the ground-truth cluster labels.
    """
    n = num_cliques * clique_size
    edges = []
    for c in range(num_cliques):
        base = c * clique_size
        ii, jj = np.triu_indices(clique_size, k=1)
        edges.append(np.stack([ii + base, jj + base], axis=1))
        nxt = ((c + 1) % num_cliques) * clique_size
        edges.append(np.array([[base, nxt]], dtype=np.int64))
    labels = np.repeat(np.arange(num_cliques), clique_size)
    return CSRGraph.from_edges(n, np.concatenate(edges)), labels


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """2-D lattice (regular degrees, high locality, no skew)."""
    ids = np.arange(rows * cols).reshape(rows, cols)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    return CSRGraph.from_edges(rows * cols, np.concatenate([right, down]))


def path_graph(n: int) -> CSRGraph:
    """Simple path 0–1–…–(n−1); trivially Hamiltonian-traceable."""
    i = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(n, np.stack([i, i + 1], axis=1))


def star_graph(n: int) -> CSRGraph:
    """Hub node 0 connected to all others; maximally skewed degrees."""
    spokes = np.arange(1, n, dtype=np.int64)
    return CSRGraph.from_edges(n, np.stack([np.zeros(n - 1, dtype=np.int64), spokes], axis=1))


def complete_graph(n: int) -> CSRGraph:
    """K_n — the fully-connected pattern dense attention assumes."""
    ii, jj = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(n, np.stack([ii, jj], axis=1))


def molecule_like(
    num_atoms: int,
    rng: np.random.Generator,
    ring_prob: float = 0.3,
) -> CSRGraph:
    """A small molecule-shaped graph: a random tree plus a few ring closures.

    Average degree lands near ZINC's ~2.1 (23.2 nodes / 24.9 edges per
    graph), keeping the graph-level task workloads structurally faithful.
    """
    if num_atoms < 2:
        return CSRGraph.from_edges(max(num_atoms, 0), np.empty((0, 2), dtype=np.int64))
    # random recursive tree
    parents = np.array([rng.integers(0, v) for v in range(1, num_atoms)], dtype=np.int64)
    edges = [np.stack([np.arange(1, num_atoms, dtype=np.int64), parents], axis=1)]
    # ring closures between nodes at distance ≥ 3 in id space (cheap proxy)
    n_rings = rng.binomial(num_atoms, ring_prob / 10.0)
    for _ in range(n_rings):
        u = int(rng.integers(0, num_atoms))
        v = int(rng.integers(0, num_atoms))
        if abs(u - v) >= 3:
            edges.append(np.array([[u, v]], dtype=np.int64))
    return CSRGraph.from_edges(num_atoms, np.concatenate(edges))


def rmat(scale: int, edge_factor: int, rng: np.random.Generator,
         a: float = 0.57, b: float = 0.19, c: float = 0.19,
         drop_self_loops: bool = True) -> CSRGraph:
    """R-MAT / Graph500 recursive generator: 2^scale nodes, skewed degrees.

    Each edge picks a quadrant of the adjacency matrix recursively with
    probabilities (a, b, c, d=1−a−b−c); the default Graph500 parameters
    give the heavy-tailed, weakly-clustered structure typical of web and
    social graphs.  Fully vectorized: one (E, scale) batch of quadrant
    draws instead of a per-edge recursion.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    n = 1 << scale
    num_edges = n * edge_factor
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        u = rng.random(num_edges)
        # quadrants: [0, a) → (0,0), [a, a+b) → (0,1),
        #            [a+b, a+b+c) → (1,0), rest → (1,1)
        src_bit = u >= a + b
        dst_bit = ((u >= a) & (u < a + b)) | (u >= a + b + c)
        src += src_bit * bit
        dst += dst_bit * bit
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    return CSRGraph.from_edges(n, np.stack([src, dst], axis=1))
