"""Synthetic stand-ins for the paper's evaluation datasets (Table III).

The original evaluation uses OGB graphs up to 111M nodes plus ZINC and
MalNet.  Offline and at laptop scale we regenerate each dataset as a
*statistically shaped* synthetic graph: matched average degree, degree
skew, planted community structure, feature dimensionality and class count,
at a configurable ``scale`` shrinking the node count.  The registry keeps
the **paper-scale statistics** alongside, because the analytic hardware
model (Table V / Fig. 9 reproductions) computes memory and kernel times at
the paper's true N and E while the convergence experiments train on the
scaled instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph
from .generators import dc_sbm, molecule_like

__all__ = [
    "PaperStats",
    "NodeDataset",
    "GraphDataset",
    "NODE_DATASET_SPECS",
    "GRAPH_DATASET_SPECS",
    "load_node_dataset",
    "load_graph_dataset",
    "available_datasets",
    "dataset_fingerprint",
]


def dataset_fingerprint(dataset) -> tuple:
    """A stable cache-key component identifying a dataset's content.

    Store-backed datasets (anything exposing ``content_fingerprint``,
    e.g. :class:`repro.store.StoredNodeDataset`) are identified by that
    content hash, so two handles onto the same store bytes — or the
    same store reopened across processes — coalesce in
    :class:`~repro.api.Session`'s inference caches.  Plain in-RAM
    datasets fall back to object identity, preserving the previous
    behaviour exactly (mutating an in-RAM dataset in place also bumps
    its ``graph_version``, which the cache keys carry separately).
    """
    fp = getattr(dataset, "content_fingerprint", None)
    if fp is not None:
        return ("content", fp)
    return ("object", id(dataset))


@dataclass(frozen=True)
class PaperStats:
    """Full-scale statistics as reported in Table III of the paper."""

    num_nodes: int
    num_edges: int
    feature_dim: int
    num_classes: int
    task: str  # "node-classification" | "graph-classification" | "regression"

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.num_edges / max(self.num_nodes, 1)

    @property
    def sparsity(self) -> float:
        """β_G: fraction of nonzeros in the full adjacency."""
        n = self.num_nodes
        return 2.0 * self.num_edges / float(n * n) if n else 0.0


@dataclass
class NodeDataset:
    """A node-level task instance: one big graph + per-node labels."""

    name: str
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    blocks: np.ndarray = field(default=None)  # planted community labels
    paper: PaperStats = field(default=None)
    # monotonic topology/feature version: 0 at load, bumped by every
    # applied :class:`~repro.stream.GraphDelta` — the staleness token
    # the serving layer stamps on results (see docs/streaming.md)
    graph_version: int = 0

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes


@dataclass
class GraphDataset:
    """A graph-level task instance: many small graphs + per-graph targets."""

    name: str
    graphs: list[CSRGraph]
    features: list[np.ndarray]
    targets: np.ndarray  # int labels for classification, float for regression
    num_classes: int  # 0 for regression
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray
    paper: PaperStats = field(default=None)

    @property
    def num_graphs(self) -> int:
        return len(self.graphs)


# --------------------------------------------------------------------- #
# specs: (paper stats, generator knobs)
# --------------------------------------------------------------------- #
# knobs: base_nodes at scale=1.0, avg_degree, planted blocks, skew exponent,
# community strength (p_in/p_out), label homophily (how strongly the label
# follows the planted block).
NODE_DATASET_SPECS: dict[str, dict] = {
    "ogbn-arxiv": dict(
        paper=PaperStats(169_343, 1_166_243, 128, 40, "node-classification"),
        base_nodes=1200, avg_degree=13.8, blocks=8, skew=2.3,
        p_ratio=6.0, homophily=0.75,
    ),
    "ogbn-products": dict(
        paper=PaperStats(2_449_029, 61_859_140, 100, 47, "node-classification"),
        base_nodes=1600, avg_degree=16.0, blocks=16, skew=2.1,
        p_ratio=25.0, homophily=0.85,
    ),
    "ogbn-papers100M": dict(
        paper=PaperStats(111_059_956, 1_615_685_872, 128, 2, "node-classification"),
        base_nodes=2000, avg_degree=14.0, blocks=24, skew=2.2,
        p_ratio=30.0, homophily=0.9,
    ),
    "amazon": dict(
        paper=PaperStats(1_598_960, 132_169_734, 200, 107, "node-classification"),
        base_nodes=1400, avg_degree=18.0, blocks=20, skew=2.0,
        p_ratio=22.0, homophily=0.8,
    ),
    "flickr": dict(
        paper=PaperStats(89_250, 899_756, 500, 7, "node-classification"),
        base_nodes=900, avg_degree=10.0, blocks=7, skew=2.4,
        p_ratio=10.0, homophily=0.7,
    ),
    "pokec": dict(
        paper=PaperStats(1_632_803, 30_622_564, 65, 2, "node-classification"),
        base_nodes=1500, avg_degree=15.0, blocks=12, skew=2.2,
        p_ratio=15.0, homophily=0.8,
    ),
    "aminer-cs": dict(
        paper=PaperStats(593_486, 6_217_004, 100, 18, "node-classification"),
        base_nodes=1100, avg_degree=9.0, blocks=18, skew=2.3,
        p_ratio=12.0, homophily=0.75,
    ),
}

GRAPH_DATASET_SPECS: dict[str, dict] = {
    "zinc": dict(
        paper=PaperStats(23, 25, 28, 0, "regression"),
        num_graphs=240, avg_nodes=23.2, node_sigma=5.0, num_classes=0,
        feature_dim=28,
    ),
    "ogbg-molpcba": dict(
        paper=PaperStats(26, 28, 9, 128, "graph-classification"),
        num_graphs=240, avg_nodes=26.0, node_sigma=6.0, num_classes=2,
        feature_dim=9,
    ),
    "malnet": dict(
        paper=PaperStats(15_378, 35_167, 16, 5, "graph-classification"),
        num_graphs=60, avg_nodes=220.0, node_sigma=80.0, num_classes=5,
        feature_dim=16,
    ),
}


def available_datasets() -> dict[str, list[str]]:
    """Names of all registered synthetic datasets by task family."""
    return {
        "node": sorted(NODE_DATASET_SPECS),
        "graph": sorted(GRAPH_DATASET_SPECS),
    }


def _make_splits(n: int, rng: np.random.Generator,
                 frac=(0.6, 0.2, 0.2)) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    perm = rng.permutation(n)
    n_train = int(frac[0] * n)
    n_val = int(frac[1] * n)
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)
    train[perm[:n_train]] = True
    val[perm[n_train:n_train + n_val]] = True
    test[perm[n_train + n_val:]] = True
    return train, val, test


def load_node_dataset(name: str, scale: float = 1.0, seed: int = 0) -> NodeDataset:
    """Generate the synthetic stand-in for a node-level dataset.

    ``scale`` multiplies the baseline node count (≈1–2K at scale 1.0) so
    tests can run at scale 0.1 and experiments at scale 2–10.  Labels are
    drawn to follow the planted communities with probability ``homophily``
    and features are class-informative Gaussians plus structural signals
    (degree), so that attention over the real topology genuinely helps —
    the property the convergence experiments depend on.
    """
    if name not in NODE_DATASET_SPECS:
        raise KeyError(f"unknown node dataset {name!r}; have {sorted(NODE_DATASET_SPECS)}")
    spec = NODE_DATASET_SPECS[name]
    paper: PaperStats = spec["paper"]
    rng = np.random.default_rng(seed)
    n = max(int(spec["base_nodes"] * scale), 32)
    blocks_k = min(spec["blocks"], max(n // 16, 2))
    g, blocks = dc_sbm(
        n, blocks_k, spec["avg_degree"], rng,
        p_in_over_p_out=spec["p_ratio"], power_law_exponent=spec["skew"],
    )

    num_classes = min(paper.num_classes, max(blocks_k, 2))
    # label = block-derived class with prob homophily, else uniform noise
    block_to_class = rng.integers(0, num_classes, size=blocks_k)
    labels = block_to_class[blocks]
    noise = rng.random(n) > spec["homophily"]
    labels = np.where(noise, rng.integers(0, num_classes, size=n), labels)

    feat_dim = min(paper.feature_dim, 64)
    # class centers confined to a low-rank subspace with modest separation:
    # a node's own features are only weakly class-informative, so models
    # that aggregate neighbourhood information (homophilous) genuinely
    # beat feature-only classifiers — the property Table I demonstrates
    rank = 3
    centers = (rng.standard_normal((num_classes, rank))
               @ rng.standard_normal((rank, feat_dim))) * 0.30
    features = centers[labels] + rng.standard_normal((n, feat_dim))
    # append (standardized) log-degree as a structural feature channel
    deg = np.log1p(g.degrees().astype(np.float64))
    deg = (deg - deg.mean()) / (deg.std() + 1e-9)
    features[:, -1] = deg

    train, val, test = _make_splits(n, rng)
    return NodeDataset(
        name=name, graph=g, features=features.astype(np.float64),
        labels=labels.astype(np.int64), num_classes=num_classes,
        train_mask=train, val_mask=val, test_mask=test,
        blocks=blocks, paper=paper,
    )


def load_graph_dataset(name: str, scale: float = 1.0, seed: int = 0) -> GraphDataset:
    """Generate the synthetic stand-in for a graph-level dataset.

    ZINC-style regression targets are a smooth function of graph structure
    (size, ring count proxy, degree variance) so that models that read the
    topology can fit them; classification labels are derived from similar
    structural statistics with added noise.
    """
    if name not in GRAPH_DATASET_SPECS:
        raise KeyError(f"unknown graph dataset {name!r}; have {sorted(GRAPH_DATASET_SPECS)}")
    spec = GRAPH_DATASET_SPECS[name]
    rng = np.random.default_rng(seed)
    num_graphs = max(int(spec["num_graphs"] * scale), 12)
    feat_dim = spec["feature_dim"]

    graphs: list[CSRGraph] = []
    feats: list[np.ndarray] = []
    struct = np.zeros((num_graphs, 3))
    for i in range(num_graphs):
        size = max(int(rng.normal(spec["avg_nodes"], spec["node_sigma"])), 4)
        g = molecule_like(size, rng)
        graphs.append(g)
        deg = g.degrees().astype(np.float64)
        struct[i] = [size, deg.var(), g.num_edges / 2 - (size - 1)]
        # atom-type-like categorical feature, one-hot-ish embedding
        types = rng.integers(0, feat_dim, size=size)
        f = np.zeros((size, feat_dim))
        f[np.arange(size), types] = 1.0
        f += 0.1 * rng.standard_normal((size, feat_dim))
        feats.append(f)

    if spec["num_classes"] == 0:
        # regression: normalized structural score + noise (ZINC-like)
        z = (struct - struct.mean(axis=0)) / (struct.std(axis=0) + 1e-9)
        targets = (0.6 * z[:, 0] + 0.3 * z[:, 1] + 0.4 * z[:, 2]
                   + 0.1 * rng.standard_normal(num_graphs))
        num_classes = 0
    else:
        num_classes = spec["num_classes"]
        z = (struct - struct.mean(axis=0)) / (struct.std(axis=0) + 1e-9)
        score = 0.8 * z[:, 0] + 0.5 * z[:, 1]
        qs = np.quantile(score, np.linspace(0, 1, num_classes + 1)[1:-1])
        targets = np.digitize(score, qs)
        flip = rng.random(num_graphs) < 0.1
        targets = np.where(flip, rng.integers(0, num_classes, num_graphs), targets)

    idx = rng.permutation(num_graphs)
    n_train = int(0.6 * num_graphs)
    n_val = int(0.2 * num_graphs)
    return GraphDataset(
        name=name, graphs=graphs, features=feats,
        targets=targets.astype(np.float64 if num_classes == 0 else np.int64),
        num_classes=num_classes,
        train_idx=idx[:n_train], val_idx=idx[n_train:n_train + n_val],
        test_idx=idx[n_train + n_val:], paper=spec["paper"],
    )
