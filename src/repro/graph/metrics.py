"""Structural graph metrics: modularity, clustering, degree skew.

TorchGT's three techniques each bet on a measurable structural property:

* Dual-interleaved Attention bets on **sparsity** (β_G, already on
  :meth:`~repro.graph.csr.CSRGraph.sparsity`);
* Cluster-aware Graph Parallelism bets on **community structure** —
  quantified here by Newman **modularity** of a node partition;
* Elastic Computation Reformation bets on **degree skew** — quantified by
  the power-law exponent of the degree distribution and the Gini
  coefficient of degrees.

These metrics let tests assert that the synthetic dataset stand-ins have
the property each technique exploits (e.g. the papers100M stand-in is as
skewed as a citation graph should be), and let DESIGN.md's claims about
the generators be checked rather than asserted.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "modularity",
    "conductance",
    "degree_gini",
    "power_law_exponent",
]


def modularity(g: CSRGraph, communities: np.ndarray) -> float:
    """Newman modularity Q of a node→community assignment.

    Q = Σ_c (e_c / m − (d_c / 2m)²), with e_c the number of undirected
    intra-community edges, d_c the community's total degree, and m the
    number of undirected edges.  Q > 0 means denser-than-random
    communities; real social/citation graphs sit around 0.3–0.7.
    """
    communities = np.asarray(communities)
    if communities.shape != (g.num_nodes,):
        raise ValueError("communities must assign every node")
    edges = g.edge_array()
    # each undirected edge appears twice in the directed entry list
    m2 = g.num_edges  # == 2m (+ self-loops, negligible and conventional)
    if m2 == 0:
        return 0.0
    same = communities[edges[:, 0]] == communities[edges[:, 1]]
    intra_frac = float(same.sum()) / m2
    deg = g.degrees().astype(np.float64)
    d_c = np.bincount(communities, weights=deg)
    expected = float(((d_c / m2) ** 2).sum())
    return intra_frac - expected


def conductance(g: CSRGraph, mask: np.ndarray) -> float:
    """Conductance φ(S) of the cut around node set ``mask`` (boolean).

    φ = cut(S, S̄) / min(vol(S), vol(S̄)); lower is a better-isolated
    cluster.  Used to score partitioner output quality.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (g.num_nodes,):
        raise ValueError("mask must cover every node")
    edges = g.edge_array()
    in_s = mask[edges[:, 0]]
    in_t = mask[edges[:, 1]]
    cut = float((in_s != in_t).sum())  # counted once per direction ⇒ 2·cut
    deg = g.degrees().astype(np.float64)
    vol_s = float(deg[mask].sum())
    vol_t = float(deg[~mask].sum())
    denom = min(vol_s, vol_t)
    if denom == 0:
        return 1.0 if cut > 0 else 0.0
    return cut / denom


def degree_gini(g: CSRGraph) -> float:
    """Gini coefficient of the degree distribution (0 = uniform, →1 = skewed)."""
    deg = np.sort(g.degrees().astype(np.float64))
    n = len(deg)
    total = deg.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(deg)
    # Gini via the Lorenz-curve identity
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def power_law_exponent(g: CSRGraph, d_min: int = 2) -> float:
    """MLE of the power-law exponent α of the degree tail (Clauset et al.).

    α = 1 + n / Σ ln(d_i / (d_min − ½)) over degrees ≥ d_min.  Social and
    citation graphs live around α ∈ [2, 3]; the dc-SBM generator's
    ``power_law_exponent`` parameter should be recovered approximately.
    """
    deg = g.degrees().astype(np.float64)
    tail = deg[deg >= d_min]
    if len(tail) == 0:
        raise ValueError(f"no nodes with degree >= {d_min}")
    return float(1.0 + len(tail) / np.log(tail / (d_min - 0.5)).sum())
