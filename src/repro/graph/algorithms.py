"""Graph algorithms backing the Dual-interleaved Attention conditions.

Implements the structural checks of §III-B (C1 self-loops, C2 Hamiltonian
traceability via Dirac's theorem, C3 L-layer reachability), the truncated
shortest-path-distance (SPD) computation Graphormer's attention bias needs,
and assorted statistics (sparsity, clustering) used by the Auto Tuner.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from .csr import CSRGraph

__all__ = [
    "connected_components",
    "is_connected",
    "bfs_distances",
    "truncated_spd_matrix",
    "diameter_lower_bound",
    "dirac_hamiltonian_check",
    "ore_hamiltonian_check",
    "has_hamiltonian_heuristic",
    "reachable_within_l_hops",
    "degree_histogram",
    "average_clustering_sample",
]


def connected_components(g: CSRGraph) -> tuple[int, np.ndarray]:
    """Number of components and per-node component label."""
    n_comp, labels = csgraph.connected_components(g.to_scipy(), directed=False)
    return int(n_comp), labels


def is_connected(g: CSRGraph) -> bool:
    """Whether the graph is a single connected component."""
    if g.num_nodes == 0:
        return True
    return connected_components(g)[0] == 1


def bfs_distances(g: CSRGraph, source: int, max_depth: int | None = None) -> np.ndarray:
    """Hop distance from ``source`` to every node (−1 if unreachable).

    Frontier-at-a-time BFS with numpy set operations; ``max_depth`` bounds
    the expansion for the truncated-SPD use case.
    """
    n = g.num_nodes
    dist = -np.ones(n, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        if max_depth is not None and depth >= max_depth:
            break
        # gather all neighbors of the frontier in one vectorized pass
        starts, ends = g.indptr[frontier], g.indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        nbrs = np.empty(total, dtype=np.int64)
        pos = 0
        for s, e in zip(starts, ends):
            cnt = e - s
            nbrs[pos:pos + cnt] = g.indices[s:e]
            pos += cnt
        nbrs = np.unique(nbrs)
        new = nbrs[dist[nbrs] < 0]
        if len(new) == 0:
            break
        depth += 1
        dist[new] = depth
        frontier = new
    return dist


def truncated_spd_matrix(g: CSRGraph, max_dist: int) -> np.ndarray:
    """All-pairs shortest-path hops, clipped at ``max_dist``.

    Unreachable pairs and pairs farther than ``max_dist`` get the sentinel
    ``max_dist + 1`` — the "far" bucket of Graphormer's learnable SPD bias
    table.  Computed by repeated boolean sparse matmul (one matmul per hop),
    so cost is O(max_dist · nnz) rather than N² BFS runs.
    """
    n = g.num_nodes
    adj = g.to_scipy().astype(bool)
    spd = np.full((n, n), max_dist + 1, dtype=np.int16)
    np.fill_diagonal(spd, 0)
    reach = sp.identity(n, dtype=bool, format="csr")
    seen = reach.toarray()
    for d in range(1, max_dist + 1):
        reach = (reach @ adj).astype(bool)
        newly = reach.toarray() & ~seen
        spd[newly] = d
        seen |= newly
        if seen.all():
            break
    return spd


def diameter_lower_bound(g: CSRGraph, rng: np.random.Generator, samples: int = 4) -> int:
    """Lower-bound the diameter by double-sweep BFS from random seeds."""
    if g.num_nodes == 0:
        return 0
    best = 0
    for _ in range(samples):
        s = int(rng.integers(0, g.num_nodes))
        d1 = bfs_distances(g, s)
        far = int(np.argmax(d1))
        d2 = bfs_distances(g, far)
        best = max(best, int(d2.max()))
    return best


def dirac_hamiltonian_check(g: CSRGraph) -> bool:
    """Dirac's theorem: min degree ≥ N/2 ⇒ a Hamiltonian cycle exists.

    This is the paper's "quick check" for condition C2 — a *sufficient*
    condition only, chosen because it is O(N) on the degree array.
    Self-loops are excluded from the degree count.
    """
    n = g.num_nodes
    if n < 3:
        return False
    deg = g.degrees().astype(np.int64).copy()
    # discount self-loops
    for v in range(n):
        if g.has_edge(v, v):
            deg[v] -= 1
    return bool(deg.min() >= (n + 1) // 2)


def ore_hamiltonian_check(g: CSRGraph) -> bool:
    """Ore's theorem: deg(u)+deg(v) ≥ N for every non-adjacent pair u,v.

    A strictly weaker requirement than Dirac's; provided as the fallback
    heuristic tier.  O(N²) worst case, so intended for small sequences.
    """
    n = g.num_nodes
    if n < 3:
        return False
    deg = g.degrees()
    dense = g.to_dense()
    for u in range(n):
        non_adj = np.where(~dense[u])[0]
        non_adj = non_adj[non_adj > u]
        if len(non_adj) and (deg[u] + deg[non_adj]).min() < n:
            return False
    return True


def has_hamiltonian_heuristic(g: CSRGraph, strict: bool = False) -> bool:
    """Heuristic traceability test used by Dual-interleaved Attention (C2).

    Tier 1: Dirac's theorem (cheap, sufficient).  Tier 2 (``strict=False``,
    the system default): fall back to connectivity + minimum-degree ≥ 2
    screening — real-world sparse graphs essentially never satisfy Dirac,
    and the paper's intent is a *negligible-overhead* plausibility check
    rather than an exact NP-hard decision.
    """
    if g.num_nodes == 0:
        return False
    if g.num_nodes == 1:
        return True
    if dirac_hamiltonian_check(g):
        return True
    if strict:
        return False
    if not is_connected(g):
        return False
    # degrees excluding self-loops (a self-loop never extends a path)
    deg = g.degrees().astype(np.int64).copy()
    src = np.repeat(np.arange(g.num_nodes, dtype=np.int64), g.degrees())
    loops = np.bincount(src[src == g.indices], minlength=g.num_nodes)
    deg -= loops
    # a traceable graph has at most 2 degree-1 endpoints
    return int((deg <= 1).sum()) <= 2


def reachable_within_l_hops(g: CSRGraph, num_layers: int) -> bool:
    """Condition C3: all node pairs interact within ``num_layers`` hops.

    After L attention layers over a sparse pattern, information propagates
    L hops; the condition holds iff the graph is connected and its diameter
    is ≤ L.  We check exactly via BFS from an eccentric node when the graph
    is small, otherwise use the double-sweep lower bound to reject early
    and a full sweep from the worst seed to confirm.
    """
    if g.num_nodes <= 1:
        return True
    if not is_connected(g):
        return False
    rng = np.random.default_rng(0)
    lb = diameter_lower_bound(g, rng)
    if lb > num_layers:
        return False
    if g.num_nodes <= 2048:
        # exact: eccentricity of every node
        for s in range(g.num_nodes):
            if bfs_distances(g, s, max_depth=num_layers + 1).max() > num_layers:
                return False
        return True
    # large graphs: accept on the strength of the sampled bound
    return True


def degree_histogram(g: CSRGraph, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced degree histogram (used to verify power-law skew)."""
    deg = g.degrees()
    deg = deg[deg > 0]
    if len(deg) == 0:
        return np.zeros(bins), np.ones(bins + 1)
    edges = np.logspace(0, np.log10(deg.max() + 1), bins + 1)
    hist, _ = np.histogram(deg, bins=edges)
    return hist, edges


def average_clustering_sample(g: CSRGraph, rng: np.random.Generator,
                              samples: int = 200) -> float:
    """Estimate the average clustering coefficient by node sampling."""
    n = g.num_nodes
    if n == 0:
        return 0.0
    picks = rng.integers(0, n, size=min(samples, n))
    total, counted = 0.0, 0
    for v in picks:
        nbrs = g.neighbors(int(v))
        nbrs = nbrs[nbrs != v]
        k = len(nbrs)
        if k < 2:
            continue
        sub = g.to_scipy()[nbrs][:, nbrs]
        links = sub.nnz / 2
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0
