"""Compressed-sparse-row graph structure.

The CSR layout is the backbone of every sparse component in the repro: the
topology-induced attention pattern (§III-B), the METIS-substitute
partitioner, and the cluster-sparse reformation (§III-D) all operate on
``indptr`` / ``indices`` arrays directly, which keeps memory contiguous and
lets every traversal be a vectorized numpy slice instead of a Python loop.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["CSRGraph"]


class CSRGraph:
    """An (optionally weighted) graph in CSR form.

    Stored undirected-as-symmetric: builders always insert both edge
    directions, so ``indptr``/``indices`` describe a symmetric adjacency.
    Self-loops are allowed and tracked (condition C1 of Dual-interleaved
    Attention requires each node to attend to itself).

    Attributes
    ----------
    indptr, indices:
        Standard CSR row pointers and column indices (sorted per row).
    num_nodes, num_edges:
        ``num_edges`` counts *directed* entries, i.e. twice the number of
        undirected edges plus the number of self-loops.
    """

    __slots__ = ("indptr", "indices", "num_nodes")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, num_nodes: int):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.num_nodes = int(num_nodes)
        if len(self.indptr) != self.num_nodes + 1:
            raise ValueError("indptr length must be num_nodes + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_edges(num_nodes: int, edges: np.ndarray, symmetrize: bool = True,
                   add_self_loops: bool = False) -> "CSRGraph":
        """Build from an ``(E, 2)`` array of endpoints.

        Duplicate edges are merged. With ``symmetrize`` both directions are
        inserted (the standard form used throughout the repro).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        src, dst = edges[:, 0], edges[:, 1]
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if add_self_loops:
            loop = np.arange(num_nodes, dtype=np.int64)
            src, dst = np.concatenate([src, loop]), np.concatenate([dst, loop])
        if len(src) and (src.max() >= num_nodes or dst.max() >= num_nodes):
            raise ValueError("edge endpoint out of range")
        if len(src) and (src.min() < 0 or dst.min() < 0):
            raise ValueError("negative edge endpoint")
        mat = sp.csr_matrix(
            (np.ones(len(src), dtype=np.int8), (src, dst)),
            shape=(num_nodes, num_nodes),
        )
        mat.sum_duplicates()
        mat.sort_indices()
        return CSRGraph(mat.indptr.astype(np.int64), mat.indices.astype(np.int64), num_nodes)

    @staticmethod
    def from_scipy(mat: sp.spmatrix) -> "CSRGraph":
        """Wrap a scipy sparse matrix (made symmetric & binary)."""
        m = sp.csr_matrix(mat)
        m = ((m + m.T) > 0).astype(np.int8).tocsr()
        m.sort_indices()
        return CSRGraph(m.indptr.astype(np.int64), m.indices.astype(np.int64), m.shape[0])

    @staticmethod
    def from_dense(adj: np.ndarray) -> "CSRGraph":
        """Build from a dense boolean adjacency matrix (symmetrized)."""
        adj = np.asarray(adj)
        adj = (adj != 0) | (adj.T != 0)
        return CSRGraph.from_scipy(sp.csr_matrix(adj))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of directed CSR entries (2 × undirected + self-loops)."""
        return int(len(self.indices))

    def degrees(self) -> np.ndarray:
        """Out-degree of every node (== in-degree for symmetric graphs)."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor ids of ``node`` (zero-copy CSR slice)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < len(nbrs) and nbrs[pos] == v)

    def has_all_self_loops(self) -> bool:
        """Whether every node has a self-loop (condition C1)."""
        for v in range(self.num_nodes):
            if not self.has_edge(v, v):
                return False
        return True

    def sparsity(self) -> float:
        """Proportion of nonzero entries in the N×N adjacency (β_G)."""
        n = self.num_nodes
        return self.num_edges / float(n * n) if n else 0.0

    def edge_array(self) -> np.ndarray:
        """Return directed edges as an ``(E, 2)`` array."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees())
        return np.stack([src, self.indices], axis=1)

    # ------------------------------------------------------------------ #
    # conversions & transforms
    # ------------------------------------------------------------------ #
    def to_scipy(self) -> sp.csr_matrix:
        """View as a binary scipy CSR matrix."""
        return sp.csr_matrix(
            (np.ones(self.num_edges, dtype=np.int8), self.indices, self.indptr),
            shape=(self.num_nodes, self.num_nodes),
        )

    def to_dense(self) -> np.ndarray:
        """Dense boolean adjacency; only sensible for small graphs."""
        if self.num_nodes > 20_000:
            raise MemoryError(
                f"refusing to densify a {self.num_nodes}-node graph")
        out = np.zeros((self.num_nodes, self.num_nodes), dtype=bool)
        src = np.repeat(np.arange(self.num_nodes), self.degrees())
        out[src, self.indices] = True
        return out

    def with_self_loops(self) -> "CSRGraph":
        """Return a copy with a self-loop on every node."""
        return CSRGraph.from_edges(
            self.num_nodes, self.edge_array(), symmetrize=False, add_self_loops=True)

    def permute(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel nodes: new id of old node ``v`` is ``perm[v]``.

        This is the reordering hook used by cluster-locality layout
        (§III-C): METIS-style cluster ids become contiguous node ranges.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.num_nodes,) or not np.array_equal(
                np.sort(perm), np.arange(self.num_nodes)):
            raise ValueError("perm must be a permutation of range(num_nodes)")
        edges = self.edge_array()
        new_edges = perm[edges]
        return CSRGraph.from_edges(self.num_nodes, new_edges, symmetrize=False)

    def apply_edge_delta(self, add_edges: np.ndarray | None = None,
                         remove_edges: np.ndarray | None = None,
                         num_new_nodes: int = 0,
                         symmetrize: bool = True,
                         ) -> tuple["CSRGraph", np.ndarray]:
        """Incrementally apply an edge/node delta, rebuilding only touched rows.

        ``add_edges`` / ``remove_edges`` are ``(E, 2)`` endpoint arrays
        (symmetrized like :meth:`from_edges` unless ``symmetrize=False``);
        ``num_new_nodes`` appends that many fresh (initially isolated)
        nodes, which ``add_edges`` may reference.  Removals of absent
        edges are ignored; additions of existing edges deduplicate — a
        delta is therefore idempotent at the edge level.  Additions win
        over removals: an edge both removed and added ends up present.

        Returns ``(new_graph, touched_rows)`` where ``touched_rows`` are
        the row ids whose adjacency was recomputed.  The result is
        **bitwise identical** (same ``indptr``/``indices`` bytes) to a
        from-scratch :meth:`from_edges` rebuild over the updated edge
        set, but only touched rows pay re-sort/dedup cost — untouched
        row segments are bulk-copied.
        """
        if num_new_nodes < 0:
            raise ValueError(f"num_new_nodes must be >= 0, got {num_new_nodes}")
        n_old = self.num_nodes
        n = n_old + num_new_nodes
        add = (np.empty((0, 2), dtype=np.int64) if add_edges is None
               else np.asarray(add_edges, dtype=np.int64).reshape(-1, 2))
        rem = (np.empty((0, 2), dtype=np.int64) if remove_edges is None
               else np.asarray(remove_edges, dtype=np.int64).reshape(-1, 2))
        if len(add) and (add.min() < 0 or add.max() >= n):
            raise ValueError("add_edges endpoint out of range")
        if len(rem) and (rem.min() < 0 or rem.max() >= n_old):
            raise ValueError("remove_edges endpoint out of range")
        if symmetrize:
            add = np.concatenate([add, add[:, ::-1]])
            rem = np.concatenate([rem, rem[:, ::-1]])

        touched = np.sort(np.concatenate([add[:, 0], rem[:, 0]]))
        if len(touched):
            touched = touched[np.concatenate(
                [[True], touched[1:] != touched[:-1]])]
        touched_old = touched[touched < n_old]

        # merged entries of every touched row, via row-major linear ids
        # (sorted linear order == CSR order, so segments come out sorted);
        # lin_old is globally sorted by construction, which lets removal
        # membership use searchsorted instead of hash-based isin
        counts_old = np.diff(self.indptr)
        lens = counts_old[touched_old]
        starts = self.indptr[touched_old]
        total = int(lens.sum())
        if total:
            seg_off = np.repeat(np.concatenate([[0], np.cumsum(lens)[:-1]]),
                                lens)
            gather = np.repeat(starts, lens) + np.arange(total) - seg_off
            lin_old = (np.repeat(touched_old, lens) * n
                       + self.indices[gather])
        else:
            lin_old = np.empty(0, dtype=np.int64)
        if len(rem) and len(lin_old):
            lin_rem = np.sort(rem[:, 0] * n + rem[:, 1])
            pos = np.searchsorted(lin_rem, lin_old)
            pos[pos == len(lin_rem)] = 0
            lin_old = lin_old[lin_rem[pos] != lin_old]
        lin_add = add[:, 0] * n + add[:, 1]
        merged = np.sort(np.concatenate([lin_old, lin_add]))
        if len(merged):
            merged = merged[np.concatenate(
                [[True], merged[1:] != merged[:-1]])]
        rows_m = merged // n
        cols_m = merged % n

        counts_m = np.bincount(rows_m, minlength=n)
        new_counts = np.concatenate(
            [counts_old, np.zeros(num_new_nodes, dtype=np.int64)])
        new_counts[touched] = counts_m[touched]
        new_indptr = np.concatenate(
            [[0], np.cumsum(new_counts)]).astype(np.int64)
        out = np.empty(int(new_indptr[-1]), dtype=np.int64)

        # scatter the merged touched rows in one vectorized pass
        if len(merged):
            m_counts = counts_m[touched]
            m_starts = np.concatenate([[0], np.cumsum(m_counts)[:-1]])
            within = np.arange(len(merged)) - np.repeat(m_starts, m_counts)
            out[new_indptr[rows_m] + within] = cols_m
        # copy untouched entries: per-row order is preserved, so the
        # source (old layout) and destination (new layout) enumerate the
        # same entries in the same order.  Small deltas copy the spans
        # between consecutive touched rows directly (one memcpy per
        # span); large deltas use one vectorized boolean-mask pass.
        if len(touched) <= 512:
            indptr_old, indices_old = self.indptr, self.indices
            prev = 0
            for t in touched.tolist() + [n]:
                if prev < t and prev < n_old:
                    lo = int(indptr_old[prev])
                    hi = int(indptr_old[min(t, n_old)])
                    if hi > lo:
                        dst = int(new_indptr[prev])
                        out[dst:dst + (hi - lo)] = indices_old[lo:hi]
                prev = t + 1
        else:
            umask = np.ones(n, dtype=bool)
            umask[touched] = False
            out[np.repeat(umask, new_counts)] = \
                self.indices[np.repeat(umask[:n_old], counts_old)]
        return CSRGraph(new_indptr, out, n), touched

    def subgraph(self, nodes: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (nodes relabeled 0..len-1 in the given order)
        and the original node ids, i.e. the inverse mapping.  Used to build
        the per-sequence local attention graph G̃ for node-level tasks.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(np.unique(nodes)) != len(nodes):
            raise ValueError("subgraph nodes must be unique")
        mapping = -np.ones(self.num_nodes, dtype=np.int64)
        mapping[nodes] = np.arange(len(nodes))
        sub = self.to_scipy()[nodes][:, nodes].tocsr()
        sub.sort_indices()
        g = CSRGraph(sub.indptr.astype(np.int64), sub.indices.astype(np.int64), len(nodes))
        return g, nodes

    def __repr__(self) -> str:
        return (f"CSRGraph(nodes={self.num_nodes}, directed_edges={self.num_edges}, "
                f"sparsity={self.sparsity():.2e})")
