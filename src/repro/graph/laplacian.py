"""Laplacian positional encodings (GT / Dwivedi–Bresson style).

The GT model adds the first k non-trivial eigenvectors of the symmetric
normalized Laplacian to node features as positional encodings.  Eigen-
vectors are sign-ambiguous, so training randomly flips signs per epoch —
the helper here exposes that as an explicit option.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .csr import CSRGraph

__all__ = ["laplacian_positional_encoding"]


def laplacian_positional_encoding(
    g: CSRGraph,
    k: int,
    rng: np.random.Generator | None = None,
    random_sign: bool = False,
) -> np.ndarray:
    """First ``k`` non-trivial eigenvectors of the normalized Laplacian.

    Returns an ``(N, k)`` float64 array, zero-padded when the graph has
    fewer than ``k + 1`` nodes.  ``random_sign`` applies the per-vector
    sign flip augmentation used during GT training.
    """
    n = g.num_nodes
    out = np.zeros((n, k), dtype=np.float64)
    if n <= 1 or k == 0:
        return out
    adj = g.to_scipy().astype(np.float64)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)), 0.0)
    d_half = sp.diags(inv_sqrt)
    lap = sp.identity(n, format="csr") - d_half @ adj @ d_half

    want = min(k + 1, n - 1)
    if want < 1:
        return out
    if n <= 64 or want >= n - 1:
        # dense path for tiny graphs where ARPACK is unreliable
        vals, vecs = np.linalg.eigh(lap.toarray())
    else:
        try:
            # fixed start vector: ARPACK seeds v0 from the global RandomState
            # by default, which makes eigenvectors (already sign-ambiguous)
            # differ between calls on the same graph — every serving path
            # that promises bitwise-reproducible logits needs this pinned
            v0 = np.random.default_rng(0).standard_normal(n)
            vals, vecs = spla.eigsh(lap, k=want + 1, which="SM", tol=1e-4,
                                    v0=v0)
        except Exception:
            vals, vecs = np.linalg.eigh(lap.toarray())
    order = np.argsort(vals)
    vecs = vecs[:, order]
    # drop the trivial (constant) eigenvector, take the next k
    usable = vecs[:, 1:1 + k]
    out[:, : usable.shape[1]] = usable
    if random_sign:
        rng = rng if rng is not None else np.random.default_rng()
        signs = rng.choice([-1.0, 1.0], size=k)
        out *= signs
    return out
