"""Persistence for graphs and datasets: npz archives and edge-list text.

A downstream user needs to run the system on *their* graph, not only on
the synthetic stand-ins, so this module provides the interchange points:

* :func:`save_graph` / :func:`load_graph` — lossless CSR round-trip in a
  single compressed ``.npz``;
* :func:`write_edgelist` / :func:`read_edgelist` — the plain
  ``src dst``-per-line text format every graph tool emits (SNAP, OGB
  dumps, networkx) with ``#`` comments tolerated;
* :func:`save_node_dataset` / :func:`load_node_dataset_npz` — a full
  node-classification task (graph + features + labels + splits) in one
  archive, so a prepared experiment is a single file.

All formats are versioned with a ``format`` tag so later changes can
stay backward compatible.
"""

from __future__ import annotations

import os

import numpy as np

from .csr import CSRGraph
from .datasets import NodeDataset

__all__ = [
    "save_graph",
    "load_graph",
    "write_edgelist",
    "read_edgelist",
    "save_node_dataset",
    "load_node_dataset_npz",
]

_GRAPH_FORMAT = "repro-csr-v1"
_DATASET_FORMAT = "repro-node-dataset-v1"


def save_graph(path: str | os.PathLike, g: CSRGraph) -> None:
    """Write a graph as a compressed npz archive."""
    np.savez_compressed(path, format=_GRAPH_FORMAT,
                        indptr=g.indptr, indices=g.indices,
                        num_nodes=np.int64(g.num_nodes))


def load_graph(path: str | os.PathLike) -> CSRGraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["format"]) != _GRAPH_FORMAT:
            raise ValueError(f"not a {_GRAPH_FORMAT} archive: {path}")
        return CSRGraph(z["indptr"], z["indices"], int(z["num_nodes"]))


def write_edgelist(path: str | os.PathLike, g: CSRGraph,
                   deduplicate: bool = True) -> int:
    """Write ``src dst`` text lines; returns the number of lines written.

    With ``deduplicate`` each undirected edge is emitted once (src ≤ dst);
    self-loops are emitted as ``v v``.
    """
    edges = g.edge_array()
    if deduplicate:
        edges = edges[edges[:, 0] <= edges[:, 1]]
    with open(path, "w") as f:
        f.write(f"# nodes {g.num_nodes}\n")
        np.savetxt(f, edges, fmt="%d")
    return len(edges)


def read_edgelist(path: str | os.PathLike,
                  num_nodes: int | None = None) -> CSRGraph:
    """Parse ``src dst`` lines (``#`` comments skipped) into a graph.

    ``num_nodes`` defaults to max-endpoint + 1, but an explicit value
    keeps isolated high-id nodes; the ``# nodes N`` header written by
    :func:`write_edgelist` is honoured when present.
    """
    header_nodes = None
    with open(path) as f:
        first = f.readline()
        if first.startswith("# nodes"):
            header_nodes = int(first.split()[-1])
    edges = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    if edges.size == 0:
        edges = np.zeros((0, 2), dtype=np.int64)
    if edges.shape[1] != 2:
        raise ValueError(f"expected two columns per line, got {edges.shape[1]}")
    if num_nodes is None:
        num_nodes = header_nodes
    if num_nodes is None:
        num_nodes = int(edges.max()) + 1 if len(edges) else 0
    return CSRGraph.from_edges(num_nodes, edges)


def save_node_dataset(path: str | os.PathLike, ds: NodeDataset) -> None:
    """Write a node-classification dataset as one npz archive."""
    extras = {}
    if ds.blocks is not None:
        extras["blocks"] = ds.blocks
    np.savez_compressed(
        path, format=_DATASET_FORMAT, name=ds.name,
        indptr=ds.graph.indptr, indices=ds.graph.indices,
        num_nodes=np.int64(ds.graph.num_nodes),
        features=ds.features, labels=ds.labels,
        num_classes=np.int64(ds.num_classes),
        train_mask=ds.train_mask, val_mask=ds.val_mask,
        test_mask=ds.test_mask, **extras)


def load_node_dataset_npz(path: str | os.PathLike) -> NodeDataset:
    """Read a dataset written by :func:`save_node_dataset`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["format"]) != _DATASET_FORMAT:
            raise ValueError(f"not a {_DATASET_FORMAT} archive: {path}")
        graph = CSRGraph(z["indptr"], z["indices"], int(z["num_nodes"]))
        return NodeDataset(
            name=str(z["name"]), graph=graph,
            features=z["features"], labels=z["labels"],
            num_classes=int(z["num_classes"]),
            train_mask=z["train_mask"], val_mask=z["val_mask"],
            test_mask=z["test_mask"],
            blocks=z["blocks"] if "blocks" in z.files else None)
