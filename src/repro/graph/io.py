"""Persistence for graphs and datasets: npz archives and edge-list text.

A downstream user needs to run the system on *their* graph, not only on
the synthetic stand-ins, so this module provides the interchange points:

* :func:`save_graph` / :func:`load_graph` — lossless CSR round-trip in a
  single compressed ``.npz``;
* :func:`write_edgelist` / :func:`read_edgelist` — the plain
  ``src dst``-per-line text format every graph tool emits (SNAP, OGB
  dumps, networkx) with ``#`` comments tolerated;
* :func:`save_node_dataset` / :func:`load_node_dataset_npz` — a full
  node-classification task (graph + features + labels + splits) in one
  archive, so a prepared experiment is a single file.

All formats are versioned with a ``format`` tag so later changes can
stay backward compatible.
"""

from __future__ import annotations

import os

import numpy as np

from .csr import CSRGraph
from .datasets import NodeDataset

__all__ = [
    "save_graph",
    "load_graph",
    "write_edgelist",
    "read_edgelist",
    "save_node_dataset",
    "load_node_dataset_npz",
    "validate_csr",
    "validate_splits",
]

_GRAPH_FORMAT = "repro-csr-v1"
_DATASET_FORMAT = "repro-node-dataset-v1"


def validate_csr(indptr: np.ndarray, indices: np.ndarray, num_nodes: int,
                 where: str = "") -> None:
    """Check CSR invariants on loaded arrays; raise ``ValueError`` if broken.

    A corrupt or hand-edited archive that violates CSR structure would
    otherwise surface as an opaque ``IndexError`` deep inside a kernel.
    Checked here: ``indptr`` has ``num_nodes + 1`` entries, starts at 0,
    ends at ``len(indices)``, is monotonically non-decreasing; every
    adjacency index lies in ``[0, num_nodes)``.  ``where`` names the
    source (a file path) in the error message.
    """
    src = f" in {where}" if where else ""
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    if indptr.ndim != 1 or len(indptr) != num_nodes + 1:
        raise ValueError(
            f"corrupt CSR{src}: indptr has {indptr.shape} entries, "
            f"expected ({num_nodes + 1},)")
    if len(indptr) and (indptr[0] != 0 or indptr[-1] != len(indices)):
        raise ValueError(
            f"corrupt CSR{src}: indptr spans [{indptr[0]}, {indptr[-1]}], "
            f"expected [0, {len(indices)}]")
    if len(indptr) > 1 and (np.diff(indptr) < 0).any():
        bad = int(np.nonzero(np.diff(indptr) < 0)[0][0])
        raise ValueError(
            f"corrupt CSR{src}: indptr decreases at row {bad} "
            f"({int(indptr[bad])} -> {int(indptr[bad + 1])})")
    if len(indices) and (indices.min() < 0 or indices.max() >= num_nodes):
        bad = indices[(indices < 0) | (indices >= num_nodes)][0]
        raise ValueError(
            f"corrupt CSR{src}: adjacency index {int(bad)} outside "
            f"[0, {num_nodes})")


def validate_splits(train_mask: np.ndarray, val_mask: np.ndarray,
                    test_mask: np.ndarray, where: str = "") -> None:
    """Check that the train/val/test masks are pairwise disjoint.

    Overlapping splits silently corrupt every reported metric (a node
    trained on leaks into validation accuracy), so a loaded dataset
    whose masks intersect is rejected with a ``ValueError`` naming the
    offending pair and the overlap count.
    """
    src = f" in {where}" if where else ""
    masks = {"train": np.asarray(train_mask, dtype=bool),
             "val": np.asarray(val_mask, dtype=bool),
             "test": np.asarray(test_mask, dtype=bool)}
    names = list(masks)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            overlap = int(np.count_nonzero(masks[a] & masks[b]))
            if overlap:
                raise ValueError(
                    f"corrupt dataset{src}: {a} and {b} splits share "
                    f"{overlap} node(s); splits must be disjoint")


def save_graph(path: str | os.PathLike, g: CSRGraph) -> None:
    """Write a graph as a compressed npz archive."""
    np.savez_compressed(path, format=_GRAPH_FORMAT,
                        indptr=g.indptr, indices=g.indices,
                        num_nodes=np.int64(g.num_nodes))


def load_graph(path: str | os.PathLike) -> CSRGraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["format"]) != _GRAPH_FORMAT:
            raise ValueError(f"not a {_GRAPH_FORMAT} archive: {path}")
        num_nodes = int(z["num_nodes"])
        validate_csr(z["indptr"], z["indices"], num_nodes,
                     where=os.fspath(path))
        return CSRGraph(z["indptr"], z["indices"], num_nodes)


def write_edgelist(path: str | os.PathLike, g: CSRGraph,
                   deduplicate: bool = True) -> int:
    """Write ``src dst`` text lines; returns the number of lines written.

    With ``deduplicate`` each undirected edge is emitted once (src ≤ dst);
    self-loops are emitted as ``v v``.
    """
    edges = g.edge_array()
    if deduplicate:
        edges = edges[edges[:, 0] <= edges[:, 1]]
    with open(path, "w") as f:
        f.write(f"# nodes {g.num_nodes}\n")
        np.savetxt(f, edges, fmt="%d")
    return len(edges)


def read_edgelist(path: str | os.PathLike,
                  num_nodes: int | None = None) -> CSRGraph:
    """Parse ``src dst`` lines (``#`` comments skipped) into a graph.

    ``num_nodes`` defaults to max-endpoint + 1, but an explicit value
    keeps isolated high-id nodes; the ``# nodes N`` header written by
    :func:`write_edgelist` is honoured when present.
    """
    header_nodes = None
    with open(path) as f:
        first = f.readline()
        if first.startswith("# nodes"):
            header_nodes = int(first.split()[-1])
    edges = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    if edges.size == 0:
        edges = np.zeros((0, 2), dtype=np.int64)
    if edges.shape[1] != 2:
        raise ValueError(f"expected two columns per line, got {edges.shape[1]}")
    if num_nodes is None:
        num_nodes = header_nodes
    if num_nodes is None:
        num_nodes = int(edges.max()) + 1 if len(edges) else 0
    return CSRGraph.from_edges(num_nodes, edges)


def save_node_dataset(path: str | os.PathLike, ds: NodeDataset) -> None:
    """Write a node-classification dataset as one npz archive."""
    extras = {}
    if ds.blocks is not None:
        extras["blocks"] = ds.blocks
    np.savez_compressed(
        path, format=_DATASET_FORMAT, name=ds.name,
        indptr=ds.graph.indptr, indices=ds.graph.indices,
        num_nodes=np.int64(ds.graph.num_nodes),
        features=ds.features, labels=ds.labels,
        num_classes=np.int64(ds.num_classes),
        train_mask=ds.train_mask, val_mask=ds.val_mask,
        test_mask=ds.test_mask, **extras)


def load_node_dataset_npz(path: str | os.PathLike) -> NodeDataset:
    """Read a dataset written by :func:`save_node_dataset`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["format"]) != _DATASET_FORMAT:
            raise ValueError(f"not a {_DATASET_FORMAT} archive: {path}")
        num_nodes = int(z["num_nodes"])
        validate_csr(z["indptr"], z["indices"], num_nodes,
                     where=os.fspath(path))
        validate_splits(z["train_mask"], z["val_mask"], z["test_mask"],
                        where=os.fspath(path))
        graph = CSRGraph(z["indptr"], z["indices"], num_nodes)
        return NodeDataset(
            name=str(z["name"]), graph=graph,
            features=z["features"], labels=z["labels"],
            num_classes=int(z["num_classes"]),
            train_mask=z["train_mask"], val_mask=z["val_mask"],
            test_mask=z["test_mask"],
            blocks=z["blocks"] if "blocks" in z.files else None)
