"""Table/figure rendering harness for the benchmark suite.

Every ``benchmarks/bench_*.py`` regenerates one table or figure of the
paper; this module gives them a uniform way to print rows/series in the
paper's format and to record paper-vs-measured comparisons that
EXPERIMENTS.md summarizes.

Backend enumeration helpers (:func:`backend_choices`,
:func:`engine_choices`, :func:`kernel_table`) come straight from the
attention-kernel registry, so benchmarks sweeping "every backend" pick up
new drop-in kernels without edits.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

__all__ = ["TableReport", "SeriesReport", "fmt_time", "fmt_ratio",
           "backend_choices", "engine_choices", "kernel_table",
           "compute_backend_choices", "compute_backend_table",
           "pattern_builder_table", "serve_throughput_table",
           "cluster_scaling_table", "net_tenant_table", "StageProfiler",
           "stage_breakdown_table"]


def fmt_time(seconds: float) -> str:
    """Human-scaled time: µs/ms/s."""
    if seconds != seconds:  # NaN
        return "OOM"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def fmt_ratio(x: float) -> str:
    return f"{x:.1f}×"


@dataclass
class TableReport:
    """A paper table: header row + data rows, pretty-printed aligned."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append([str(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self, file=None) -> None:
        print("\n" + self.render() + "\n", file=file or sys.stdout)


def backend_choices(trainable_only: bool = False) -> list[str]:
    """Registered attention-backend names (for ``--backend`` options)."""
    from ..attention import kernel_names
    return kernel_names(trainable_only=trainable_only)


def engine_choices() -> list[str]:
    """Registered engine names (for ``--engine`` options)."""
    from ..core.engine import engine_names
    return engine_names()


def compute_backend_choices() -> list[str]:
    """Registered *compute*-backend names (``repro.backend`` registry —
    distinct from :func:`backend_choices`, which lists attention kernels)."""
    from ..backend import backend_names
    return backend_names()


def compute_backend_table(specs=None) -> TableReport:
    """The compute-backend registry rendered as a capability table."""
    from ..backend import iter_backends
    table = TableReport(
        title="compute-backend registry",
        columns=["backend", "compiled", "jit", "deterministic",
                 "precisions", "description"])
    for s in (specs if specs is not None else iter_backends()):
        table.add_row(s.name, "yes" if s.compiled else "no",
                      "numba" if s.jit else "—",
                      "bitwise" if s.deterministic else "approx",
                      "/".join(s.precisions), s.description)
    return table


def kernel_table(specs=None) -> TableReport:
    """The kernel registry rendered as a capability table."""
    from ..attention import iter_kernels
    table = TableReport(
        title="attention-kernel registry",
        columns=["backend", "complexity", "bias", "pattern", "trainable",
                 "exact", "cost-model kind"])
    for s in (specs if specs is not None else iter_kernels()):
        table.add_row(s.name, s.complexity or "—",
                      "yes" if s.supports_bias else "no",
                      "required" if s.needs_pattern else "—",
                      "yes" if s.trainable else "fwd-only",
                      "yes" if s.exact else "approx",
                      s.attention_kind)
    return table


def model_choices(engine_protocol_only: bool = False) -> list[str]:
    """Registered model names (for ``--model`` options)."""
    from ..models import model_names
    return model_names(engine_protocol_only=engine_protocol_only)


def model_table(specs=None) -> TableReport:
    """The model registry rendered as a capability table."""
    from ..models import iter_models
    table = TableReport(
        title="model registry",
        columns=["model", "aliases", "engine protocol", "description"])
    for s in (specs if specs is not None else iter_models()):
        table.add_row(s.name, ", ".join(s.aliases) or "—",
                      "yes" if s.engine_protocol else "no",
                      s.description)
    return table


def pattern_builder_table(specs=None) -> TableReport:
    """The pattern-builder registry rendered as a table."""
    from ..attention import iter_pattern_builders
    table = TableReport(
        title="pattern-builder registry",
        columns=["pattern", "input", "description"])
    for s in (specs if specs is not None else iter_pattern_builders()):
        table.add_row(s.name, "graph" if s.needs_graph else "seq_len",
                      s.description)
    return table


def serve_throughput_table(result: dict, title: str | None = None) -> TableReport:
    """A :func:`repro.serve.compare_with_naive` result as a paper table.

    Shared by ``repro bench-serve`` and
    ``benchmarks/bench_serve_throughput.py`` so the two surfaces render
    the comparison identically.
    """
    table = TableReport(
        title=title or (
            f"serving throughput — {result['num_requests']} requests, "
            f"{result['distinct_queries']} distinct queries, "
            f"window {result['concurrency']}"),
        columns=["path", "total", "req/s", "speedup", "batch occupancy"])
    table.add_row("naive per-request", fmt_time(result["naive_s"]),
                  f"{result['naive_rps']:.1f}", "1.0×", "1.0")
    table.add_row("batched serving", fmt_time(result["batched_s"]),
                  f"{result['batched_rps']:.1f}",
                  f"{result['speedup']:.2f}×",
                  f"{result['mean_batch_occupancy']:.1f}")
    table.add_note("bitwise-identical per-request results: "
                   + ("yes" if result["identical"] else "NO"))
    table.add_note(f"{result['shared_computes']} of "
                   f"{result['num_requests']} requests answered from a "
                   "coalesced forward pass")
    return table


def cluster_scaling_table(result: dict, title: str | None = None) -> TableReport:
    """A :func:`repro.serve.compare_cluster_scaling` result as a table.

    Shared by ``repro bench-serve --workers N`` and
    ``benchmarks/bench_serve_cluster.py``.
    """
    table = TableReport(
        title=title or (
            f"sharded serving scaling — {result['num_requests']} requests "
            f"over {result['num_configs']} configs, "
            f"pool {result['pool_size']}/worker"),
        columns=["path", "total", "req/s", "scaling",
                 "pool misses", "evictions"])
    for label, prefix, workers in (
            ("1 worker", "single_worker", 1),
            (f"{result['num_workers']} workers", "multi_worker",
             result["num_workers"])):
        pool = result[f"{prefix}_stats"]["pool"]
        scaling = (1.0 if prefix == "single_worker"
                   else result["scaling"])
        table.add_row(label, fmt_time(result[f"{prefix}_s"]),
                      f"{result[f'{prefix}_rps']:.1f}",
                      f"{scaling:.2f}×",
                      pool["misses"], pool["evictions"])
    table.add_note("bitwise-identical per-request logits "
                   "(vs naive Session and across worker counts): "
                   + ("yes" if result["identical"] else "NO"))
    router = result["multi_worker_stats"]["router"]
    table.add_note(f"routing: {router['sticky']} sticky, "
                   f"{router['spills']} spilled, "
                   f"{router['reroutes']} rerouted")
    return table


def net_tenant_table(result: dict, title: str | None = None) -> TableReport:
    """A :func:`repro.serve.run_multitenant_loop` result as a table.

    One row per tenant (offered load, admission outcome, completion
    accounting, latency percentiles), plus a totals note — the render
    behind ``benchmarks/bench_net_multitenant.py``'s BENCH_net.json.
    """
    table = TableReport(
        title=title or (
            f"multi-tenant admission — {result['num_arrivals']} arrivals "
            f"over {result['duration_s']:.0f}s (virtual), "
            f"seed {result['seed']}"),
        columns=["tenant", "class", "offered", "completed", "quota",
                 "shed", "expired", "p50", "p95"])
    def lat(x: float) -> str:
        return "—" if x != x else fmt_time(x)  # NaN = no completions

    for name, acct in result["tenants"].items():
        table.add_row(name, acct["priority"], acct["offered"],
                      acct["completed"], acct["quota_rejected"],
                      acct["shed"], acct["expired"],
                      lat(acct["latency_p50_s"]),
                      lat(acct["latency_p95_s"]))
    totals = result["total"]
    table.add_note(f"totals: {totals['completed']} completed of "
                   f"{totals['offered']} offered "
                   f"({totals['quota_rejected']} quota-rejected, "
                   f"{totals['shed']} shed, {totals['expired']} expired, "
                   f"{totals['failed']} failed)")
    return table


def stream_update_table(result: dict, title: str | None = None) -> TableReport:
    """A streaming-update comparison as a table.

    Renders the ``benchmarks/bench_stream_updates.py`` result dict:
    incremental CSR apply + targeted workspace invalidation vs a
    from-scratch edge-set rebuild + all-or-nothing workspace wipe.
    """
    table = TableReport(
        title=title or (
            f"streaming graph updates — {result['num_deltas']} deltas, "
            f"~{result['mean_touched_fraction'] * 100:.1f}% rows touched"),
        columns=["path", "total", "per delta", "speedup"])
    table.add_row("full rebuild + wipe", fmt_time(result["full_s"]),
                  fmt_time(result["full_s"] / result["num_deltas"]), "1.0×")
    table.add_row("incremental + targeted",
                  fmt_time(result["incremental_s"]),
                  fmt_time(result["incremental_s"] / result["num_deltas"]),
                  f"{result['speedup']:.2f}×")
    table.add_note("post-delta logits bitwise-identical to from-scratch "
                   "rebuild: " + ("yes" if result["identical"] else "NO"))
    table.add_note(f"bystander workspaces kept warm: "
                   f"{result['bystander_retained']} retentions "
                   f"(full path rebuilt {result['num_deltas']}×)")
    return table


class StageProfiler:
    """Stage-level timings collected from the :mod:`repro.obs` hooks.

    While attached (use as a context manager), every
    ``on_batch_end`` / ``on_compile`` / ``on_chunk_miss`` firing is
    accumulated into per-stage totals, giving benchmarks a breakdown of
    where serving time went (batch execution, backend compiles, store
    chunk loads) without instrumenting the subsystems themselves.
    """

    def __init__(self):
        self.batches = 0
        self.batch_requests = 0
        self.batch_seconds = 0.0
        self.compiles: dict[str, int] = {}
        self.compile_seconds = 0.0
        self.chunk_misses = 0
        self.chunk_miss_bytes = 0

    def _on_batch_end(self, key, size, seconds) -> None:
        self.batches += 1
        self.batch_requests += size
        self.batch_seconds += seconds

    def _on_compile(self, key, outcome, seconds) -> None:
        self.compiles[outcome] = self.compiles.get(outcome, 0) + 1
        self.compile_seconds += seconds

    def _on_chunk_miss(self, key, nbytes) -> None:
        self.chunk_misses += 1
        self.chunk_miss_bytes += nbytes

    def attach(self) -> "StageProfiler":
        """Register the hook callbacks (idempotent via detach)."""
        from repro.obs import add_hook

        add_hook("on_batch_end", self._on_batch_end)
        add_hook("on_compile", self._on_compile)
        add_hook("on_chunk_miss", self._on_chunk_miss)
        return self

    def detach(self) -> None:
        """Unregister the hook callbacks; totals stay readable."""
        from repro.obs import remove_hook

        remove_hook("on_batch_end", self._on_batch_end)
        remove_hook("on_compile", self._on_compile)
        remove_hook("on_chunk_miss", self._on_chunk_miss)

    def __enter__(self) -> "StageProfiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()


def stage_breakdown_table(profiler: StageProfiler,
                          title: str | None = None) -> TableReport:
    """A :class:`StageProfiler`'s totals as a stage-breakdown table."""
    table = TableReport(title=title or "serving stage breakdown",
                        columns=["stage", "events", "total", "per event"])
    per_batch = (fmt_time(profiler.batch_seconds / profiler.batches)
                 if profiler.batches else "—")
    table.add_row("batch execution", str(profiler.batches),
                  fmt_time(profiler.batch_seconds), per_batch)
    n_compiles = sum(profiler.compiles.values())
    per_compile = (fmt_time(profiler.compile_seconds / n_compiles)
                   if n_compiles else "—")
    table.add_row("backend compile", str(n_compiles),
                  fmt_time(profiler.compile_seconds), per_compile)
    table.add_row("store chunk loads", str(profiler.chunk_misses),
                  f"{profiler.chunk_miss_bytes} B", "—")
    if profiler.batches:
        table.add_note(f"{profiler.batch_requests} requests over "
                       f"{profiler.batches} batches "
                       f"(mean occupancy "
                       f"{profiler.batch_requests / profiler.batches:.1f})")
    if profiler.compiles:
        outcomes = ", ".join(f"{k}={v}"
                             for k, v in sorted(profiler.compiles.items()))
        table.add_note(f"compile outcomes: {outcomes}")
    return table


@dataclass
class SeriesReport:
    """A paper figure: named series over a shared x-axis."""

    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]] = field(default_factory=dict)
    y_label: str = ""
    notes: list[str] = field(default_factory=list)

    def add_series(self, name: str, values: list[float]) -> None:
        if len(values) != len(self.x_values):
            raise ValueError(f"series {name!r} length {len(values)} != x length")
        self.series[name] = list(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        lines = [f"== {self.title} =="]
        header = [self.x_label] + list(self.series)
        table = TableReport(title="", columns=header)
        for i, x in enumerate(self.x_values):
            row = [x] + [f"{self.series[s][i]:.4g}" for s in self.series]
            table.add_row(*row)
        lines.extend(table.render().splitlines()[1:])
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self, file=None) -> None:
        print("\n" + self.render() + "\n", file=file or sys.stdout)
