"""Benchmark harness: paper table/figure rendering utilities."""

from .harness import SeriesReport, TableReport, fmt_ratio, fmt_time

__all__ = ["TableReport", "SeriesReport", "fmt_time", "fmt_ratio"]
