"""Benchmark harness: paper table/figure rendering utilities."""

from .harness import (
    SeriesReport,
    StageProfiler,
    TableReport,
    backend_choices,
    cluster_scaling_table,
    engine_choices,
    fmt_ratio,
    fmt_time,
    kernel_table,
    model_choices,
    model_table,
    net_tenant_table,
    pattern_builder_table,
    serve_throughput_table,
    stage_breakdown_table,
    stream_update_table,
)

__all__ = [
    "TableReport",
    "SeriesReport",
    "fmt_time",
    "fmt_ratio",
    "backend_choices",
    "engine_choices",
    "model_choices",
    "kernel_table",
    "model_table",
    "pattern_builder_table",
    "serve_throughput_table",
    "cluster_scaling_table",
    "net_tenant_table",
    "stream_update_table",
    "StageProfiler",
    "stage_breakdown_table",
]
