"""Tiled online-softmax attention — the FlashAttention stand-in (GP-Flash).

Computes exactly the same function as :func:`dense_attention` but never
materializes the S×S score matrix: the key/value sequence is processed in
tiles with the online softmax recurrence (running max m, running denominator
l, rescaled accumulator).  The backward pass recomputes per-tile
probabilities from the saved row statistics, mirroring the real
FlashAttention algorithm's recomputation strategy.

Two behaviours of the real kernel matter for the paper's experiments and
are reproduced:

* **O(S·d) memory** instead of O(S²) — GP-Flash does not OOM where GP-Raw
  does (Table V);
* **no support for additive attention bias** — the paper disables
  Graphormer's bias under FlashAttention (§II-C); we raise if one is
  passed, and models fall back to bias-free attention under this backend;
* under simulated **BF16** the per-tile rounding reproduces the accuracy
  drop of Table VII (the global precision policy applies to this op's
  output like any other).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .registry import register_kernel
from .stats import AttentionStats, collector

__all__ = ["flash_attention", "flash_forward"]


def flash_forward(
    qd: np.ndarray,
    kd: np.ndarray,
    vd: np.ndarray,
    scale: float | None = None,
    tile_size: int = 128,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Forward-only tiled online-softmax attention on raw arrays.

    Returns ``(out, m, safe_l)`` — the (float64) output plus the running
    row-max and safe denominator the backward recomputation needs.
    Shared by :func:`flash_attention` and the compiled backend.
    """
    H, S, dh = qd.shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))
    out = np.zeros_like(qd)
    m = np.full((H, S), -np.inf)  # running row max
    l = np.zeros((H, S))  # running softmax denominator

    for j0 in range(0, S, tile_size):
        j1 = min(j0 + tile_size, S)
        s_tile = np.einsum("hid,hjd->hij", qd, kd[:, j0:j1]) * scale
        tile_max = s_tile.max(axis=-1)
        m_new = np.maximum(m, tile_max)
        correction = np.exp(m - m_new)
        p = np.exp(s_tile - m_new[:, :, None])
        l = l * correction + p.sum(axis=-1)
        out = out * correction[:, :, None] + np.einsum("hij,hjd->hid", p, vd[:, j0:j1])
        m = m_new
    safe_l = np.maximum(l, 1e-30)
    out = out / safe_l[:, :, None]
    return out, m, safe_l


def flash_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    scale: float | None = None,
    tile_size: int = 128,
) -> Tensor:
    """Exact attention over ``(H, S, dh)`` inputs in O(S·d) extra memory."""
    H, S, dh = q.shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))

    qd, kd, vd = q.data, k.data, v.data
    out, m, safe_l = flash_forward(qd, kd, vd, scale=scale, tile_size=tile_size)
    out_final = out  # captured for backward's dS identity

    def backward(g):
        # delta_i = rowsum(dO ∘ O) — the standard flash backward statistic
        delta = np.einsum("hid,hid->hi", g, out_final)
        dq = np.zeros_like(qd) if q.requires_grad else None
        for j0 in range(0, S, tile_size):
            j1 = min(j0 + tile_size, S)
            s_tile = np.einsum("hid,hjd->hij", qd, kd[:, j0:j1]) * scale
            p = np.exp(s_tile - m[:, :, None]) / safe_l[:, :, None]
            dp = np.einsum("hid,hjd->hij", g, vd[:, j0:j1])
            ds = p * (dp - delta[:, :, None])
            if v.requires_grad:
                v._accumulate_slice_flash(j0, j1, np.einsum("hij,hid->hjd", p, g))
            if k.requires_grad:
                k._accumulate_slice_flash(j0, j1, np.einsum("hij,hid->hjd", ds, qd) * scale)
            if dq is not None:
                dq += np.einsum("hij,hjd->hid", ds, kd[:, j0:j1]) * scale
        if dq is not None:
            q._accumulate(dq)

    itemsize = qd.itemsize
    collector.add(AttentionStats(
        kind="flash", seq_len=S, num_heads=H, head_dim=dh,
        scores_computed=H * S * S,
        flops=4 * H * S * S * dh,
        # IO-aware: only O(S·d) tensors round-trip HBM; tiles live in SRAM
        regular_bytes=itemsize * H * S * dh * 4,
        irregular_bytes=0,
    ))
    return Tensor._make(out, (q, k, v), backward)


def _accumulate_slice_flash(self: Tensor, j0: int, j1: int, grad_slice: np.ndarray) -> None:
    """Accumulate a gradient into rows ``j0:j1`` of this tensor's grad.

    Helper used by the tiled backward so K/V gradients build up tile by
    tile without allocating a full temporary per tile.
    """
    if self.grad is None:
        self.grad = np.zeros_like(self.data)
    self.grad[:, j0:j1] += grad_slice


# attach as a lightweight method (kept out of tensor.py because only the
# flash backward needs slice-level accumulation)
Tensor._accumulate_slice_flash = _accumulate_slice_flash


register_kernel(
    "flash",
    lambda q, k, v, *, pattern=None, bias=None, **kw:
        flash_attention(q, k, v, **kw),
    supports_bias=False, needs_pattern=False, trainable=True, exact=True,
    complexity="O(S²·d), O(S·d) mem", attention_kind="flash",
    bias_format=None,
    description="Tiled online-softmax attention; rejects bias like the "
                "real FlashAttention kernel (GP-Flash)")
