"""Topology-induced sparse attention (the GP-Sparse kernel).

Evaluates attention scores only at the entries of an
:class:`~repro.attention.patterns.AttentionPattern`: complexity O(Ẽ·d)
instead of O(S²·d).  The per-edge gathers this requires are exactly the
irregular memory accesses §II-C's Table II measures; the kernel reports
them as ``irregular_bytes`` so the hardware model can price them.

Vectorization strategy (no Python loop over edges):

* scores per entry via a gathered einsum over (src, dst) index arrays;
* row-wise softmax via ``np.maximum.reduceat`` / segment sums over the CSR
  row pointer;
* the weighted aggregation and all matrix-shaped backward products via
  per-head ``scipy.sparse`` CSR matmuls, which are C-speed.

All pattern-derived state — the expanded row index, segment boundaries,
int32 CSR index arrays, the transpose permutation — comes from a
:class:`~repro.attention.workspace.PatternWorkspace`, memoized per pattern
so repeated forwards across layers/iterations skip the reconstruction
entirely (see :mod:`repro.attention.workspace`).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor.functional import workspace_buffer as _buf
from .patterns import AttentionPattern
from .registry import register_kernel
from .stats import AttentionStats, collector
from .workspace import PatternWorkspace, get_workspace, segment_reduce_core

__all__ = ["sparse_attention", "sparse_attention_forward", "segment_softmax"]


def _segment_reduce(values: np.ndarray, indptr: np.ndarray, ufunc,
                    empty_val: float) -> np.ndarray:
    """Per-row ``ufunc`` reduction of CSR-ordered ``values``.

    Standalone entry point: derives the segment descriptors from
    ``indptr`` and defers to the shared
    :func:`~repro.attention.workspace.segment_reduce_core` (which a
    :class:`~repro.attention.workspace.PatternWorkspace` calls with its
    cached descriptors) so the two paths cannot diverge.
    """
    counts = np.diff(indptr)
    nonempty = counts > 0
    return segment_reduce_core(values, ufunc, empty_val,
                               counts, nonempty, indptr[:-1][nonempty])


def _segment_max(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row max of CSR-ordered ``values`` (last axis = entries)."""
    return _segment_reduce(values, indptr, np.maximum, -np.inf)


def _segment_sum(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row sum of CSR-ordered ``values``."""
    return _segment_reduce(values, indptr, np.add, 0.0)


def segment_softmax(scores: np.ndarray, indptr: np.ndarray,
                    rows: np.ndarray) -> np.ndarray:
    """Softmax over CSR row segments; ``scores`` shape (..., E).

    Standalone (workspace-free) variant for callers that bring their own
    indptr/rows — the GNN message passing and the distributed kernels.
    The attention hot path uses the cached
    :meth:`~repro.attention.workspace.PatternWorkspace.segment_softmax`.
    """
    row_max = _segment_max(scores, indptr)
    shifted = scores - row_max[..., rows]
    e = np.exp(shifted)
    denom = _segment_sum(e, indptr)
    return e / np.maximum(denom[..., rows], 1e-30)


def sparse_attention_forward(
    qd: np.ndarray,
    kd: np.ndarray,
    vd: np.ndarray,
    pattern_ws: PatternWorkspace,
    bias: np.ndarray | None = None,
    scale: float | None = None,
    ws: dict | None = None,
    scores_fn=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward-only pattern-restricted attention on raw arrays.

    Returns ``(out, p)``; shared by :func:`sparse_attention` and the
    compiled backend.  With a workspace dict the gathered Q/K copies and
    the per-entry score vector become persistent buffers.  ``scores_fn``
    optionally replaces the gathered-einsum score computation (the numba
    JIT hook); it receives ``(qg, kg, out)`` and must fill ``out`` with
    the per-entry dot products.
    """
    H, S, dh = qd.shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))
    rows, cols = pattern_ws.rows, pattern_ws.cols
    E = pattern_ws.num_entries
    qg = _buf(ws, "sp_qg", (H, E, dh), qd.dtype)
    kg = _buf(ws, "sp_kg", (H, E, dh), kd.dtype)
    np.take(qd, rows, axis=1, out=qg)
    np.take(kd, cols, axis=1, out=kg)
    scores = _buf(ws, "sp_scores", (H, E), np.result_type(qd, kd))
    if scores_fn is not None:
        scores_fn(qg, kg, scores)
    else:
        np.einsum("hed,hed->he", qg, kg, out=scores)
    np.multiply(scores, scale, out=scores)
    if bias is not None:
        if np.result_type(scores.dtype, bias.dtype) == scores.dtype:
            np.add(scores, bias, out=scores)
        else:
            scores = scores + bias
    p = pattern_ws.segment_softmax(scores)  # (H, E)
    out = _buf(ws, "sp_out", qd.shape, qd.dtype)
    for h in range(H):
        out[h] = pattern_ws.matmul(p[h], vd[h])
    return out, p


def sparse_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    pattern: AttentionPattern,
    bias: Tensor | None = None,
    scale: float | None = None,
    workspace: PatternWorkspace | None = None,
) -> Tensor:
    """Pattern-restricted attention over ``(H, S, dh)`` inputs.

    ``bias`` may be a per-entry tensor of shape ``(H, E)`` or ``(1, E)``
    (Graphormer's SPD bias gathered at the pattern entries); gradients flow
    into it.  Rows with no pattern entries produce zero output.
    ``workspace`` overrides the cached pattern workspace (rarely needed —
    the default consults the global cache).
    """
    H, S, dh = q.shape
    if S != pattern.seq_len:
        raise ValueError(f"pattern is for seq_len={pattern.seq_len}, inputs have S={S}")
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))

    ws = workspace if workspace is not None else get_workspace(pattern)
    rows = ws.rows
    cols = ws.cols
    E = ws.num_entries

    parents: list[Tensor] = [q, k, v]
    if bias is not None:
        parents.append(bias)
    out_data, p = sparse_attention_forward(
        q.data, k.data, v.data, ws,
        bias=bias.data if bias is not None else None, scale=scale)

    def backward(g):
        # dV_h = A_hᵀ dO_h
        if v.requires_grad:
            dv = np.empty_like(v.data)
            for h in range(H):
                dv[h] = ws.matmul_t(p[h], g[h])
            v._accumulate(dv)
        # d p_e = dO[row_e] · V[col_e]
        dp = np.einsum("hed,hed->he", g[:, rows, :], v.data[:, cols, :])
        # softmax backward per row segment
        dot = ws.segment_sum(dp * p)  # (H, S)
        ds = p * (dp - dot[:, rows])  # (H, E)
        if bias is not None and bias.requires_grad:
            gb = ds if bias.data.shape[0] == H else ds.sum(axis=0, keepdims=True)
            bias._accumulate(gb)
        if q.requires_grad or k.requires_grad:
            dq = np.zeros_like(q.data) if q.requires_grad else None
            dk = np.zeros_like(k.data) if k.requires_grad else None
            for h in range(H):
                if dq is not None:
                    dq[h] = ws.matmul(ds[h], k.data[h]) * scale
                if dk is not None:
                    dk[h] = ws.matmul_t(ds[h], q.data[h]) * scale
            if dq is not None:
                q._accumulate(dq)
            if dk is not None:
                k._accumulate(dk)

    itemsize = q.data.itemsize
    collector.add(AttentionStats(
        kind="sparse", seq_len=S, num_heads=H, head_dim=dh,
        scores_computed=H * E,
        flops=4 * H * E * dh,
        regular_bytes=itemsize * H * S * dh * 2,  # streaming Q and O
        # every entry gathers a K row and a V row at an arbitrary address
        irregular_bytes=itemsize * H * E * dh * 2,
    ))
    return Tensor._make(out_data, parents, backward)


register_kernel(
    "sparse",
    lambda q, k, v, *, pattern=None, bias=None, **kw:
        sparse_attention(q, k, v, pattern, bias=bias, **kw),
    supports_bias=True, needs_pattern=True, trainable=True, exact=True,
    complexity="O(Ẽ·d)", attention_kind="sparse", bias_format="entries",
    description="Pattern-restricted attention with irregular per-edge "
                "gathers (GP-Sparse)")
