"""Standard (fully-connected) multi-head attention — the GP-Raw kernel.

Materializes the full S×S score matrix, exactly as the vanilla graph
transformer implementations the paper calls GP-Raw do.  This is the
O(N²)-memory baseline that OOMs on every large dataset in Table V.

Implemented as a single fused autograd op: forward keeps the probability
matrix, backward applies the standard attention gradient identities
(dV = Pᵀ dO, dP = dO Vᵀ, dS = P ∘ (dP − rowsum(dP ∘ P)), dQ = dS K,
dK = dSᵀ Q).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .registry import register_kernel
from .stats import AttentionStats, collector

__all__ = ["dense_attention"]


def dense_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    bias: Tensor | None = None,
    mask: np.ndarray | None = None,
    scale: float | None = None,
) -> Tensor:
    """Softmax(Q Kᵀ · scale + bias) V over shape ``(H, S, dh)`` inputs.

    Parameters
    ----------
    q, k, v:
        ``(H, S, dh)`` tensors.
    bias:
        Optional additive attention bias, ``(H, S, S)`` or ``(1, S, S)``
        (Graphormer's SPD bias).  Gradients flow into it.
    mask:
        Optional boolean ``(S, S)``; False entries are excluded from the
        softmax (used to emulate pattern attention with the dense kernel).
    scale:
        Defaults to ``1/sqrt(dh)``.
    """
    H, S, dh = q.shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))

    parents: list[Tensor] = [q, k, v]
    scores = np.einsum("hid,hjd->hij", q.data, k.data) * scale
    if bias is not None:
        scores = scores + bias.data
        parents.append(bias)
    if mask is not None:
        scores = np.where(mask[None, :, :], scores, -1e30)

    shifted = scores - scores.max(axis=-1, keepdims=True)
    p = np.exp(shifted)
    if mask is not None:
        p = p * mask[None, :, :]
    denom = np.maximum(p.sum(axis=-1, keepdims=True), 1e-30)
    p = p / denom
    out_data = np.einsum("hij,hjd->hid", p, v.data)

    def backward(g):
        dp = np.einsum("hid,hjd->hij", g, v.data)
        ds = p * (dp - np.einsum("hij,hij->hi", dp, p)[:, :, None])
        if v.requires_grad:
            v._accumulate(np.einsum("hij,hid->hjd", p, g))
        if q.requires_grad:
            q._accumulate(np.einsum("hij,hjd->hid", ds, k.data) * scale)
        if k.requires_grad:
            k._accumulate(np.einsum("hij,hid->hjd", ds, q.data) * scale)
        if bias is not None and bias.requires_grad:
            gb = ds if bias.data.shape[0] == H else ds.sum(axis=0, keepdims=True)
            bias._accumulate(gb)

    itemsize = q.data.itemsize
    collector.add(AttentionStats(
        kind="dense", seq_len=S, num_heads=H, head_dim=dh,
        scores_computed=H * S * S,
        flops=4 * H * S * S * dh,
        # naive kernel round-trips the S×S scores through memory ~3 times
        regular_bytes=itemsize * H * S * (3 * S + 3 * dh),
        irregular_bytes=0,
    ))
    return Tensor._make(out_data, parents, backward)


register_kernel(
    "dense",
    lambda q, k, v, *, pattern=None, bias=None, **kw:
        dense_attention(q, k, v, bias=bias, **kw),
    supports_bias=True, needs_pattern=False, trainable=True, exact=True,
    complexity="O(S²·d)", attention_kind="dense", bias_format="dense",
    description="Fully-connected attention with materialized S×S scores "
                "(GP-Raw)")
