"""Standard (fully-connected) multi-head attention — the GP-Raw kernel.

Materializes the full S×S score matrix, exactly as the vanilla graph
transformer implementations the paper calls GP-Raw do.  This is the
O(N²)-memory baseline that OOMs on every large dataset in Table V.

Implemented as a single fused autograd op: forward keeps the probability
matrix, backward applies the standard attention gradient identities
(dV = Pᵀ dO, dP = dO Vᵀ, dS = P ∘ (dP − rowsum(dP ∘ P)), dQ = dS K,
dK = dSᵀ Q).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor.functional import workspace_buffer as _buf
from .registry import register_kernel
from .stats import AttentionStats, collector

__all__ = ["dense_attention", "dense_attention_forward"]


def dense_attention_forward(
    qd: np.ndarray,
    kd: np.ndarray,
    vd: np.ndarray,
    bias: np.ndarray | None = None,
    mask: np.ndarray | None = None,
    scale: float | None = None,
    ws: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward-only dense attention over raw ``(H, S, dh)`` arrays.

    Returns ``(out, p)`` where ``p`` is the probability matrix the
    backward pass needs.  Shared by :func:`dense_attention` and the
    compiled backend: with a workspace dict the six S×S-sized temporaries
    collapse into one persistent scores/probability buffer, and every
    in-place step is bitwise-identical to the composed expression.
    """
    H, S, dh = qd.shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))
    scores = _buf(ws, "att_scores", (H, S, S), np.result_type(qd, kd))
    np.einsum("hid,hjd->hij", qd, kd, out=scores)
    np.multiply(scores, scale, out=scores)
    if bias is not None:
        if np.result_type(scores.dtype, bias.dtype) == scores.dtype:
            np.add(scores, bias, out=scores)
        else:
            scores = scores + bias
    if mask is not None:
        scores = np.where(mask[None, :, :], scores, -1e30)
    mx = _buf(ws, "att_mx", (H, S, 1), scores.dtype)
    np.amax(scores, axis=-1, keepdims=True, out=mx)
    np.subtract(scores, mx, out=scores)
    np.exp(scores, out=scores)
    p = scores
    if mask is not None:
        p = p * mask[None, :, :]
    np.sum(p, axis=-1, keepdims=True, out=mx)
    np.maximum(mx, 1e-30, out=mx)
    np.divide(p, mx, out=p)
    out = _buf(ws, "att_out", qd.shape, np.result_type(p.dtype, vd.dtype))
    np.einsum("hij,hjd->hid", p, vd, out=out)
    return out, p


def dense_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    bias: Tensor | None = None,
    mask: np.ndarray | None = None,
    scale: float | None = None,
) -> Tensor:
    """Softmax(Q Kᵀ · scale + bias) V over shape ``(H, S, dh)`` inputs.

    Parameters
    ----------
    q, k, v:
        ``(H, S, dh)`` tensors.
    bias:
        Optional additive attention bias, ``(H, S, S)`` or ``(1, S, S)``
        (Graphormer's SPD bias).  Gradients flow into it.
    mask:
        Optional boolean ``(S, S)``; False entries are excluded from the
        softmax (used to emulate pattern attention with the dense kernel).
    scale:
        Defaults to ``1/sqrt(dh)``.
    """
    H, S, dh = q.shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))

    parents: list[Tensor] = [q, k, v]
    if bias is not None:
        parents.append(bias)
    out_data, p = dense_attention_forward(
        q.data, k.data, v.data,
        bias=bias.data if bias is not None else None,
        mask=mask, scale=scale)

    def backward(g):
        dp = np.einsum("hid,hjd->hij", g, v.data)
        ds = p * (dp - np.einsum("hij,hij->hi", dp, p)[:, :, None])
        if v.requires_grad:
            v._accumulate(np.einsum("hij,hid->hjd", p, g))
        if q.requires_grad:
            q._accumulate(np.einsum("hij,hjd->hid", ds, k.data) * scale)
        if k.requires_grad:
            k._accumulate(np.einsum("hij,hid->hjd", ds, q.data) * scale)
        if bias is not None and bias.requires_grad:
            gb = ds if bias.data.shape[0] == H else ds.sum(axis=0, keepdims=True)
            bias._accumulate(gb)

    itemsize = q.data.itemsize
    collector.add(AttentionStats(
        kind="dense", seq_len=S, num_heads=H, head_dim=dh,
        scores_computed=H * S * S,
        flops=4 * H * S * S * dh,
        # naive kernel round-trips the S×S scores through memory ~3 times
        regular_bytes=itemsize * H * S * (3 * S + 3 * dh),
        irregular_bytes=0,
    ))
    return Tensor._make(out_data, parents, backward)


register_kernel(
    "dense",
    lambda q, k, v, *, pattern=None, bias=None, **kw:
        dense_attention(q, k, v, bias=bias, **kw),
    supports_bias=True, needs_pattern=False, trainable=True, exact=True,
    complexity="O(S²·d)", attention_kind="dense", bias_format="dense",
    description="Fully-connected attention with materialized S×S scores "
                "(GP-Raw)")
