"""NLP sparse-attention patterns: BigBird / Longformer style.

The paper's issue I2: sparse patterns designed for language (Zaheer et
al.'s BigBird — ref [36] — and kin) "cannot be simply grafted to graph
transformers since they fail to consider the inherent graph structure
information".  These builders construct exactly those patterns so the
ablation benchmarks can measure that failure: the patterns have the same
entry budget as the topology pattern but place entries by *position*
(window / random / global), not by *connectivity*.

All builders return :class:`~repro.attention.patterns.AttentionPattern`
and always include self-loops, so they satisfy condition C1 and any
accuracy difference is attributable to edge placement, not degeneracy.
"""

from __future__ import annotations

import numpy as np

from .patterns import AttentionPattern
from .registry import register_pattern_builder

__all__ = [
    "random_pattern",
    "global_token_pattern",
    "longformer_pattern",
    "bigbird_pattern",
]


def _self_loops(seq_len: int) -> tuple[np.ndarray, np.ndarray]:
    idx = np.arange(seq_len, dtype=np.int64)
    return idx, idx


def random_pattern(seq_len: int, entries_per_row: int,
                   rng: np.random.Generator | None = None,
                   symmetric: bool = True) -> AttentionPattern:
    """Uniform random pattern: each row attends to ``entries_per_row``
    random columns (plus itself).  ``symmetric`` mirrors every entry,
    matching BigBird's undirected random block.
    """
    if entries_per_row < 0:
        raise ValueError("entries_per_row must be >= 0")
    rng = rng if rng is not None else np.random.default_rng(0)
    rows = np.repeat(np.arange(seq_len, dtype=np.int64), entries_per_row)
    cols = rng.integers(0, seq_len, size=len(rows), dtype=np.int64)
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    sr, sc = _self_loops(seq_len)
    return AttentionPattern.from_entries(
        seq_len, np.concatenate([rows, sr]), np.concatenate([cols, sc]))


def global_token_pattern(seq_len: int, num_global: int) -> AttentionPattern:
    """Global tokens only: the first ``num_global`` rows/cols are dense."""
    if not 0 <= num_global <= seq_len:
        raise ValueError("num_global out of range")
    g = np.arange(num_global, dtype=np.int64)
    allv = np.arange(seq_len, dtype=np.int64)
    # global rows attend to everyone; everyone attends to global cols
    rows = [np.repeat(g, seq_len), np.repeat(allv, num_global)]
    cols = [np.tile(allv, num_global), np.tile(g, seq_len)]
    sr, sc = _self_loops(seq_len)
    rows.append(sr)
    cols.append(sc)
    return AttentionPattern.from_entries(
        seq_len, np.concatenate(rows), np.concatenate(cols))


def longformer_pattern(seq_len: int, window: int,
                       num_global: int = 0) -> AttentionPattern:
    """Longformer: sliding window ± ``window`` plus dense global tokens."""
    offs = np.arange(-window, window + 1)
    rows = np.repeat(np.arange(seq_len, dtype=np.int64), len(offs))
    cols = rows + np.tile(offs, seq_len)
    keep = (cols >= 0) & (cols < seq_len)
    rows, cols = rows[keep], cols[keep]
    if num_global > 0:
        gp = global_token_pattern(seq_len, num_global)
        rows = np.concatenate([rows, gp.rows])
        cols = np.concatenate([cols, gp.cols])
    return AttentionPattern.from_entries(seq_len, rows, cols)


def bigbird_pattern(seq_len: int, window: int, random_per_row: int,
                    num_global: int,
                    rng: np.random.Generator | None = None) -> AttentionPattern:
    """BigBird = window + random + global components, by position only."""
    rng = rng if rng is not None else np.random.default_rng(0)
    win = longformer_pattern(seq_len, window, num_global)
    rnd = random_pattern(seq_len, random_per_row, rng)
    return AttentionPattern.from_entries(
        seq_len,
        np.concatenate([win.rows, rnd.rows]),
        np.concatenate([win.cols, rnd.cols]))


register_pattern_builder(
    "random", lambda seq_len, entries_per_row=8, **kw:
        random_pattern(seq_len, entries_per_row, **kw),
    needs_graph=False,
    description="Uniform random entries per row + self-loops (BigBird's "
                "random block)")
register_pattern_builder(
    "global", lambda seq_len, num_global=1, **kw:
        global_token_pattern(seq_len, num_global),
    needs_graph=False,
    description="Dense global tokens only + self-loops")
register_pattern_builder(
    "longformer", lambda seq_len, window=8, num_global=0, **kw:
        longformer_pattern(seq_len, window, num_global),
    needs_graph=False,
    description="Sliding window + global tokens (Longformer)")
register_pattern_builder(
    "bigbird", lambda seq_len, window=4, random_per_row=4, num_global=1, **kw:
        bigbird_pattern(seq_len, window, random_per_row, num_global, **kw),
    needs_graph=False,
    description="Window + random + global components (BigBird)")
