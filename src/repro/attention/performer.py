"""Performer-style kernelized linear attention (Choromanski et al., the
paper's ref [35]).

One of the two NLP answers to quadratic attention the paper surveys in
§II-C (I2): approximate ``softmax(QKᵀ)V`` by a low-rank feature map,

    Attn(Q, K, V) ≈ φ(Q) (φ(K)ᵀ V) / (φ(Q) (φ(K)ᵀ 1)),

with the FAVOR+ positive random features

    φ(x) = exp(Wx − ‖x‖²/2) / √m,   W ∼ N(0, I)^{m×dh}  (optionally
    orthogonalized), giving E[φ(q)·φ(k)] = exp(q·k).

Complexity is O(S·m·dh) — linear in sequence length — but the kernel is an
*approximation* with no notion of graph structure, which is exactly the
paper's argument for topology-induced attention instead: the graph is the
true interaction set, not a statistical surrogate.  The convergence
ablation benchmark pits this kernel against the topology pattern.

Built from composed autograd ops (matmul/exp/sum), so gradients flow into
Q, K, V with no bespoke backward.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .registry import register_kernel
from .stats import AttentionStats, collector

__all__ = ["random_feature_matrix", "performer_features", "performer_attention"]


def random_feature_matrix(num_features: int, head_dim: int,
                          rng: np.random.Generator,
                          orthogonal: bool = True) -> np.ndarray:
    """Draw the (m, dh) projection W for FAVOR+.

    ``orthogonal=True`` orthogonalizes each dh-sized block of rows (QR on
    a square Gaussian, rescaled to chi-distributed norms), which lowers
    the estimator variance — the trick from the Performer paper.
    """
    if num_features <= 0 or head_dim <= 0:
        raise ValueError("num_features and head_dim must be positive")
    if not orthogonal:
        return rng.standard_normal((num_features, head_dim))
    blocks = []
    remaining = num_features
    while remaining > 0:
        gaussian = rng.standard_normal((head_dim, head_dim))
        qmat, _ = np.linalg.qr(gaussian)
        # restore Gaussian row norms (QR rows are unit length)
        norms = np.sqrt(rng.chisquare(head_dim, size=head_dim))
        block = qmat * norms[:, None]
        take = min(remaining, head_dim)
        blocks.append(block[:take])
        remaining -= take
    return np.concatenate(blocks, axis=0)


def performer_features(x: Tensor, w: np.ndarray, stabilizer: bool = True) -> Tensor:
    """FAVOR+ positive features φ(x) for ``x`` of shape (H, S, dh).

    Returns (H, S, m).  ``stabilizer`` subtracts the per-head max of the
    projection before exp.  The shift must be constant across the whole
    head — a per-row shift would rescale each key's feature row by a
    different factor, which does *not* cancel in the attention ratio and
    silently distorts the softmax weights.
    """
    m = w.shape[0]
    proj = x @ Tensor(w.T)  # (H, S, m)
    sq = (x * x).sum(axis=-1, keepdims=True) * 0.5  # ‖x‖²/2, (H, S, 1)
    logits = proj - sq
    if stabilizer:
        shift = logits.data.max(axis=(-2, -1), keepdims=True)  # per head
        logits = logits - Tensor(shift)
    return logits.exp() * (1.0 / np.sqrt(m))


def performer_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    num_features: int = 64,
    rng: np.random.Generator | None = None,
    w: np.ndarray | None = None,
    scale: float | None = None,
    eps: float = 1e-6,
) -> Tensor:
    """Linear-complexity attention over ``(H, S, dh)`` tensors.

    Parameters
    ----------
    num_features:
        m, the random-feature count; approximation error ~ O(1/√m).
    rng / w:
        Either a generator to draw W from, or a pre-drawn W (m, dh) —
        models keep W fixed across steps, so they pass ``w``.
    scale:
        Score temperature; defaults to 1/√dh, folded into Q and K
        symmetrically (each scaled by scale^(1/2)).
    """
    H, S, dh = q.shape
    if w is None:
        rng = rng if rng is not None else np.random.default_rng(0)
        w = random_feature_matrix(num_features, dh, rng)
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))
    root = float(np.sqrt(scale))

    phi_q = performer_features(q * root, w)  # (H, S, m)
    phi_k = performer_features(k * root, w)  # (H, S, m)

    # numerator: φ(Q) (φ(K)ᵀ V)  — O(S·m·dh), never S×S
    kv = phi_k.swapaxes(1, 2) @ v  # (H, m, dh)
    num = phi_q @ kv  # (H, S, dh)
    # denominator: φ(Q) (φ(K)ᵀ 1)
    ksum = phi_k.sum(axis=1, keepdims=True)  # (H, 1, m)
    den = (phi_q * ksum).sum(axis=-1, keepdims=True) + eps  # (H, S, 1)
    out = num / den

    m = w.shape[0]
    itemsize = q.data.itemsize
    collector.add(AttentionStats(
        kind="performer", seq_len=S, num_heads=H, head_dim=dh,
        scores_computed=H * S * m,
        flops=4 * H * S * m * dh,
        regular_bytes=itemsize * H * S * (4 * m + 4 * dh),
        irregular_bytes=0,
    ))
    return out


register_kernel(
    "performer",
    lambda q, k, v, *, pattern=None, bias=None, **kw:
        performer_attention(q, k, v, **kw),
    supports_bias=False, needs_pattern=False, trainable=True, exact=False,
    complexity="O(S·m·d)", attention_kind="linear", bias_format=None,
    description="FAVOR+ kernelized linear attention — the NLP low-rank "
                "approximation the paper argues against for graphs")
