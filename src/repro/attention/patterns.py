"""Attention patterns: which (query, key) pairs a sparse kernel evaluates.

An :class:`AttentionPattern` is a fixed edge set in CSR order (row = query
node, col = key node).  Builders construct the patterns the paper uses:

* :func:`topology_pattern` — the local topology-induced pattern of §III-B:
  the input graph's edges, plus mandatory self-loops (condition C1), plus
  optional global-token edges;
* :func:`full_pattern` — all pairs (the dense pattern, for testing kernel
  equivalence);
* :func:`window_pattern` — a sliding-window NLP-style pattern used as an
  ablation control (a sparse pattern that *ignores* graph structure).

Patterns also expose a cluster view (given cluster boundaries) that the
Elastic Computation Reformation operates on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from .registry import register_pattern_builder

__all__ = ["AttentionPattern", "topology_pattern", "full_pattern", "window_pattern"]


@dataclass
class AttentionPattern:
    """A fixed sparse attention pattern in CSR row order.

    Attributes
    ----------
    indptr, cols:
        CSR arrays: row ``i`` attends to ``cols[indptr[i]:indptr[i+1]]``.
    seq_len:
        Number of query rows (== number of key columns).
    """

    indptr: np.ndarray
    cols: np.ndarray
    seq_len: int

    @property
    def num_entries(self) -> int:
        return int(len(self.cols))

    @property
    def rows(self) -> np.ndarray:
        """Expanded row index per entry (same length as ``cols``)."""
        return np.repeat(np.arange(self.seq_len, dtype=np.int64),
                         np.diff(self.indptr))

    def sparsity(self) -> float:
        """β: fraction of nonzero score entries in the S×S layout."""
        s = self.seq_len
        return self.num_entries / float(s * s) if s else 0.0

    def to_mask(self) -> np.ndarray:
        """Dense boolean (S, S) mask; small sequences only."""
        if self.seq_len > 20_000:
            raise MemoryError("refusing to densify a huge pattern")
        m = np.zeros((self.seq_len, self.seq_len), dtype=bool)
        m[self.rows, self.cols] = True
        return m

    def to_graph(self) -> CSRGraph:
        """Interpret the pattern as a graph (for the C1–C3 checks)."""
        edges = np.stack([self.rows, self.cols], axis=1)
        return CSRGraph.from_edges(self.seq_len, edges, symmetrize=False)

    def has_self_loops(self) -> bool:
        """Condition C1: every row attends to itself."""
        rows, cols = self.rows, self.cols
        diag = rows[rows == cols]
        return len(np.unique(diag)) == self.seq_len

    @staticmethod
    def from_entries(seq_len: int, rows: np.ndarray, cols: np.ndarray) -> "AttentionPattern":
        """Build from unordered entry lists (deduplicated, CSR-sorted)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if len(rows) != len(cols):
            raise ValueError("rows and cols must have equal length")
        if len(rows) and (rows.min() < 0 or rows.max() >= seq_len
                          or cols.min() < 0 or cols.max() >= seq_len):
            raise ValueError("entry index out of range")
        # dedupe via linear index
        lin = rows * seq_len + cols
        lin = np.unique(lin)
        rows = lin // seq_len
        cols = lin % seq_len
        counts = np.bincount(rows, minlength=seq_len)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return AttentionPattern(indptr=indptr, cols=cols, seq_len=seq_len)

    def cluster_entry_counts(self, bounds: np.ndarray) -> np.ndarray:
        """Entry count per (cluster_i, cluster_j) cell of the k×k grid.

        ``bounds`` are the cluster boundary offsets (length k+1) from the
        cluster reordering; rows/cols are assumed already in the clustered
        layout.
        """
        k = len(bounds) - 1
        ri = np.searchsorted(bounds, self.rows, side="right") - 1
        ci = np.searchsorted(bounds, self.cols, side="right") - 1
        counts = np.zeros((k, k), dtype=np.int64)
        np.add.at(counts, (ri, ci), 1)
        return counts


def topology_pattern(g: CSRGraph, global_tokens: int = 0) -> AttentionPattern:
    """The local topology-induced pattern of §III-B.

    Rows/cols follow the node ids of ``g``; self-loops are always added
    (condition C1).  If ``global_tokens`` > 0, the *first* that many nodes
    are treated as global tokens: they attend to, and are attended by,
    every node — the paper augments Ẽ with the global token's edges.
    """
    rows = [g.edge_array()[:, 0], np.arange(g.num_nodes, dtype=np.int64)]
    cols = [g.edge_array()[:, 1], np.arange(g.num_nodes, dtype=np.int64)]
    if global_tokens > 0:
        gt = np.arange(global_tokens, dtype=np.int64)
        allv = np.arange(g.num_nodes, dtype=np.int64)
        # global token g attends to all; all attend to g
        rows.append(np.repeat(gt, g.num_nodes))
        cols.append(np.tile(allv, global_tokens))
        rows.append(np.tile(allv, global_tokens))
        cols.append(np.repeat(gt, g.num_nodes))
    return AttentionPattern.from_entries(
        g.num_nodes, np.concatenate(rows), np.concatenate(cols))


def full_pattern(seq_len: int) -> AttentionPattern:
    """All-pairs pattern (dense attention expressed as a pattern)."""
    rows = np.repeat(np.arange(seq_len, dtype=np.int64), seq_len)
    cols = np.tile(np.arange(seq_len, dtype=np.int64), seq_len)
    return AttentionPattern.from_entries(seq_len, rows, cols)


def window_pattern(seq_len: int, window: int) -> AttentionPattern:
    """Sliding-window pattern (±window), the NLP-style sparse control.

    Ignores graph structure entirely — used in ablations to show *why*
    grafting NLP sparse patterns onto graph transformers hurts accuracy.
    """
    offs = np.arange(-window, window + 1)
    rows = np.repeat(np.arange(seq_len, dtype=np.int64), len(offs))
    cols = rows + np.tile(offs, seq_len)
    keep = (cols >= 0) & (cols < seq_len)
    return AttentionPattern.from_entries(seq_len, rows[keep], cols[keep])


register_pattern_builder(
    "topology", topology_pattern, needs_graph=True,
    description="Graph edges + self-loops (+ optional global tokens), §III-B")
register_pattern_builder(
    "full", full_pattern, needs_graph=False,
    description="All-pairs pattern (dense attention as a pattern)")
register_pattern_builder(
    "window", lambda seq_len, window=8, **kw: window_pattern(seq_len, window),
    needs_graph=False,
    description="Sliding-window ±w ablation control (ignores topology)")
