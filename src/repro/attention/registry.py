"""Unified attention-kernel registry — the single dispatch point.

Every attention kernel in the system (dense, flash, topology-sparse,
block/cluster-sparse, performer, …) registers itself here with capability
metadata, in the spirit of tinygrad's one-dispatch-point kernel design:

* models call :func:`resolve_kernel` once and invoke the returned
  :class:`KernelSpec` — no string ``if/elif`` chains anywhere;
* engines put a :class:`KernelSpec` into their execution plans;
* the autotuner enumerates candidate kernels by capability
  (:func:`find_kernels`);
* the hardware cost model prices a kernel through its
  ``attention_kind`` metadata;
* CLIs and benchmarks derive their ``--backend`` choices from
  :func:`kernel_names`.

Adding a new backend is a one-file drop-in: define the kernel, call
:func:`register_kernel` at module bottom, import the module from
``repro.attention`` — every dispatch site picks it up automatically.

A parallel registry holds the *pattern builders* (topology, sliding
window, BigBird, Longformer, expander, …) so sparse-pattern ablations are
addressable by name as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "AttentionBackend",
    "KernelSpec",
    "PatternBuilderSpec",
    "UnknownKernelError",
    "UnknownPatternBuilderError",
    "register_kernel",
    "get_kernel",
    "resolve_kernel",
    "kernel_names",
    "iter_kernels",
    "find_kernels",
    "register_pattern_builder",
    "get_pattern_builder",
    "pattern_builder_names",
    "iter_pattern_builders",
]


class AttentionBackend:
    """Canonical names for the registered kernels (back-compat constants)."""

    DENSE = "dense"
    FLASH = "flash"
    SPARSE = "sparse"  # requires a pattern
    BLOCK = "block"  # forward-only cluster-sparse measurement kernel
    PERFORMER = "performer"


class UnknownKernelError(ValueError, KeyError):
    """Lookup of a kernel name that was never registered."""


class UnknownPatternBuilderError(ValueError, KeyError):
    """Lookup of a pattern-builder name that was never registered."""


@dataclass(frozen=True)
class KernelSpec:
    """One registered attention kernel plus its capability metadata.

    Attributes
    ----------
    name:
        Registry key (also the CLI ``--backend`` choice).
    fn:
        Unified entry point ``fn(q, k, v, *, pattern, bias, **kw)`` over
        ``(H, S, dh)`` tensors.  Registration wraps the underlying kernel
        so every kernel is callable the same way.
    supports_bias:
        Whether an additive attention bias (graph encoding) is accepted.
        Flash does not — faithfully to the real FlashAttention kernel.
    needs_pattern:
        Whether an :class:`~repro.attention.patterns.AttentionPattern`
        must be supplied.
    trainable:
        Whether the kernel participates in autograd (the block kernel is
        a forward-only measurement kernel).
    exact:
        Whether the kernel computes exact softmax attention over its
        support (performer is a low-rank approximation).
    complexity:
        Human-readable complexity class, e.g. ``"O(S²·d)"``.
    attention_kind:
        The :class:`~repro.hardware.perf_model.AttentionKind` the cost
        model prices this kernel as.
    bias_format:
        Shape convention for the bias: ``"dense"`` = ``(H|1, S, S)``,
        ``"entries"`` = per-pattern-entry ``(H|1, E)``, ``None`` = no
        bias support.
    """

    name: str
    fn: Callable = field(repr=False)
    supports_bias: bool
    needs_pattern: bool
    trainable: bool
    exact: bool
    complexity: str
    attention_kind: str
    bias_format: str | None = None
    description: str = ""

    def __call__(self, q, k, v, *, pattern=None, bias=None, **kwargs):
        """Run the kernel after validating inputs against the metadata."""
        if self.needs_pattern and pattern is None:
            raise ValueError(f"{self.name} backend requires a pattern")
        if bias is not None and not self.supports_bias:
            raise ValueError(
                f"{self.name} attention does not support additive bias "
                "(matching the real kernel's limitation)")
        return self.fn(q, k, v, pattern=pattern, bias=bias, **kwargs)


_KERNELS: dict[str, KernelSpec] = {}


def register_kernel(
    name: str,
    fn: Callable,
    *,
    supports_bias: bool,
    needs_pattern: bool,
    trainable: bool = True,
    exact: bool = True,
    complexity: str = "",
    attention_kind: str = "dense",
    bias_format: str | None = None,
    description: str = "",
    overwrite: bool = False,
) -> KernelSpec:
    """Register an attention kernel under ``name`` and return its spec.

    Kernels self-register at import time from their defining modules;
    third-party backends call this directly.  Re-registering an existing
    name requires ``overwrite=True`` (guards against accidental clashes).
    """
    if name in _KERNELS and not overwrite:
        raise ValueError(f"kernel {name!r} is already registered "
                         "(pass overwrite=True to replace it)")
    spec = KernelSpec(
        name=name, fn=fn, supports_bias=supports_bias,
        needs_pattern=needs_pattern, trainable=trainable, exact=exact,
        complexity=complexity, attention_kind=attention_kind,
        bias_format=bias_format, description=description)
    _KERNELS[name] = spec
    return spec


def unregister_kernel(name: str) -> None:
    """Remove a registered kernel (primarily for tests)."""
    _KERNELS.pop(name, None)


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name; raises :class:`UnknownKernelError`."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise UnknownKernelError(
            f"unknown attention backend {name!r}; registered backends: "
            f"{', '.join(sorted(_KERNELS))}") from None


def resolve_kernel(backend: "str | KernelSpec") -> KernelSpec:
    """Coerce a backend name or spec to a :class:`KernelSpec`."""
    if isinstance(backend, KernelSpec):
        return backend
    return get_kernel(backend)


def kernel_names(trainable_only: bool = False) -> list[str]:
    """Registered backend names (sorted; the CLI choice list)."""
    return sorted(name for name, spec in _KERNELS.items()
                  if not trainable_only or spec.trainable)


def iter_kernels() -> list[KernelSpec]:
    """All registered kernel specs, sorted by name."""
    return [_KERNELS[n] for n in sorted(_KERNELS)]


def find_kernels(
    *,
    needs_pattern: bool | None = None,
    supports_bias: bool | None = None,
    trainable: bool | None = None,
    exact: bool | None = None,
    attention_kind: str | None = None,
) -> list[KernelSpec]:
    """Capability query over the registry (the autotuner's candidate set).

    ``None`` means "don't care"; other values must match exactly.
    """
    out = []
    for spec in iter_kernels():
        if needs_pattern is not None and spec.needs_pattern != needs_pattern:
            continue
        if supports_bias is not None and spec.supports_bias != supports_bias:
            continue
        if trainable is not None and spec.trainable != trainable:
            continue
        if exact is not None and spec.exact != exact:
            continue
        if attention_kind is not None and spec.attention_kind != attention_kind:
            continue
        out.append(spec)
    return out


# ------------------------------------------------------------------ #
# pattern-builder registry
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class PatternBuilderSpec:
    """A named sparse-pattern constructor.

    ``needs_graph`` distinguishes topology-aware builders (called with a
    :class:`~repro.graph.csr.CSRGraph`) from the NLP-style builders that
    only see ``seq_len`` — the distinction at the heart of the paper's I2
    argument.
    """

    name: str
    fn: Callable = field(repr=False)
    needs_graph: bool
    description: str = ""

    def build(self, graph, **kwargs):
        """Build the pattern for ``graph`` (NLP builders use its size)."""
        if self.needs_graph:
            return self.fn(graph, **kwargs)
        return self.fn(graph.num_nodes, **kwargs)


_PATTERN_BUILDERS: dict[str, PatternBuilderSpec] = {}


def register_pattern_builder(name: str, fn: Callable, *, needs_graph: bool,
                             description: str = "",
                             overwrite: bool = False) -> PatternBuilderSpec:
    """Register a pattern builder under ``name``."""
    if name in _PATTERN_BUILDERS and not overwrite:
        raise ValueError(f"pattern builder {name!r} is already registered "
                         "(pass overwrite=True to replace it)")
    spec = PatternBuilderSpec(name=name, fn=fn, needs_graph=needs_graph,
                              description=description)
    _PATTERN_BUILDERS[name] = spec
    return spec


def get_pattern_builder(name: str) -> PatternBuilderSpec:
    """Look up a builder; raises :class:`UnknownPatternBuilderError`."""
    try:
        return _PATTERN_BUILDERS[name]
    except KeyError:
        raise UnknownPatternBuilderError(
            f"unknown pattern builder {name!r}; registered builders: "
            f"{', '.join(sorted(_PATTERN_BUILDERS))}") from None


def pattern_builder_names() -> list[str]:
    return sorted(_PATTERN_BUILDERS)


def iter_pattern_builders() -> list[PatternBuilderSpec]:
    return [_PATTERN_BUILDERS[n] for n in sorted(_PATTERN_BUILDERS)]
