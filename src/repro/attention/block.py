"""Block-rectangular attention kernel (the cluster-sparse execution path).

After Elastic Computation Reformation, the attention pattern is a union of
dense rectangles: diagonal dense clusters plus the db×db sub-blocks that
sparse clusters were compacted into (Fig. 5(c)).  This kernel evaluates
exactly that union with *contiguous* memory access — each rectangle is one
small dense matmul — using the online-softmax merge so rows covered by
multiple rectangles stay mathematically exact.

Training uses the autograd :func:`~repro.attention.sparse.sparse_attention`
over the reformed pattern (numerically identical output); this forward-only
kernel exists to measure the regular-vs-irregular access gap for the
kernel-level benchmarks (Fig. 12) with real wall-clock numbers, and its
byte accounting feeds the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .patterns import AttentionPattern
from .registry import register_kernel
from .stats import AttentionStats, collector

__all__ = ["Rect", "BlockLayout", "block_attention_forward", "layout_from_pattern"]


@dataclass(frozen=True)
class Rect:
    """A dense rectangle [r0, r1) × [c0, c1) of the S×S score layout."""

    r0: int
    r1: int
    c0: int
    c1: int

    @property
    def area(self) -> int:
        return (self.r1 - self.r0) * (self.c1 - self.c0)


@dataclass
class BlockLayout:
    """A cluster-sparse layout: rectangles sorted by row block."""

    seq_len: int
    rects: list[Rect]

    @property
    def covered_entries(self) -> int:
        return sum(r.area for r in self.rects)

    def density(self) -> float:
        s = self.seq_len
        return self.covered_entries / float(s * s) if s else 0.0

    def to_pattern(self) -> AttentionPattern:
        """Expand rectangles into an explicit entry pattern (for training)."""
        rows_parts, cols_parts = [], []
        for r in self.rects:
            rr = np.arange(r.r0, r.r1, dtype=np.int64)
            cc = np.arange(r.c0, r.c1, dtype=np.int64)
            rows_parts.append(np.repeat(rr, len(cc)))
            cols_parts.append(np.tile(cc, len(rr)))
        if rows_parts:
            rows = np.concatenate(rows_parts)
            cols = np.concatenate(cols_parts)
        else:
            rows = cols = np.empty(0, dtype=np.int64)
        return AttentionPattern.from_entries(self.seq_len, rows, cols)


def layout_from_pattern(pattern: AttentionPattern, bounds: np.ndarray,
                        dense_threshold: float = 0.5) -> BlockLayout:
    """Greedy rectangle cover of a clustered pattern (diagnostic helper).

    Cluster cells denser than ``dense_threshold`` become full rectangles;
    everything else becomes 1×1 rectangles per entry.  The ECR module in
    :mod:`repro.core.ecr` builds better layouts — this helper exists so the
    kernel can run on *any* pattern for testing.
    """
    k = len(bounds) - 1
    counts = pattern.cluster_entry_counts(bounds)
    rows, cols = pattern.rows, pattern.cols
    ri = np.searchsorted(bounds, rows, side="right") - 1
    ci = np.searchsorted(bounds, cols, side="right") - 1
    rects: list[Rect] = []
    dense_cell = np.zeros((k, k), dtype=bool)
    for a in range(k):
        ra = int(bounds[a + 1] - bounds[a])
        for b in range(k):
            cb = int(bounds[b + 1] - bounds[b])
            if ra * cb == 0:
                continue
            if counts[a, b] / (ra * cb) >= dense_threshold:
                dense_cell[a, b] = True
                rects.append(Rect(int(bounds[a]), int(bounds[a + 1]),
                                  int(bounds[b]), int(bounds[b + 1])))
    loose = ~dense_cell[ri, ci]
    for r, c in zip(rows[loose], cols[loose]):
        rects.append(Rect(int(r), int(r) + 1, int(c), int(c) + 1))
    return BlockLayout(seq_len=pattern.seq_len, rects=rects)


def block_attention_forward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    layout: BlockLayout,
    scale: float | None = None,
) -> np.ndarray:
    """Forward attention over the rectangle union (online-softmax merge).

    Inputs are raw ``(H, S, dh)`` arrays; output matches
    ``sparse_attention`` on ``layout.to_pattern()`` up to float error.
    """
    H, S, dh = q.shape
    if scale is None:
        scale = 1.0 / float(np.sqrt(dh))

    out = np.zeros_like(q)
    m = np.full((H, S), -np.inf)
    l = np.zeros((H, S))

    for r in layout.rects:
        qs = q[:, r.r0:r.r1]
        ks = k[:, r.c0:r.c1]
        vs = v[:, r.c0:r.c1]
        s_tile = np.einsum("hid,hjd->hij", qs, ks) * scale
        tile_max = s_tile.max(axis=-1)
        m_old = m[:, r.r0:r.r1]
        m_new = np.maximum(m_old, tile_max)
        corr = np.exp(m_old - m_new)
        p = np.exp(s_tile - m_new[:, :, None])
        l[:, r.r0:r.r1] = l[:, r.r0:r.r1] * corr + p.sum(axis=-1)
        out[:, r.r0:r.r1] = (out[:, r.r0:r.r1] * corr[:, :, None]
                             + np.einsum("hij,hjd->hid", p, vs))
        m[:, r.r0:r.r1] = m_new

    out /= np.maximum(l, 1e-30)[:, :, None]

    covered = layout.covered_entries
    itemsize = q.itemsize
    collector.add(AttentionStats(
        kind="cluster-sparse", seq_len=S, num_heads=H, head_dim=dh,
        scores_computed=H * covered,
        flops=4 * H * covered * dh,
        # rectangles stream contiguously: all traffic is regular
        regular_bytes=itemsize * H * (covered * 2 + S * dh * 2),
        irregular_bytes=0,
    ))
    return out


def _block_kernel(q, k, v, *, pattern=None, bias=None, layout=None,
                  bounds=None, **kw):
    """Registry adapter: run the rectangle kernel from a pattern or layout.

    Without an explicit ``layout``/``bounds``, the pattern is covered as a
    single cluster cell (dense cells → rectangles, the rest 1×1) — correct
    for any pattern, fast only for reformed ones.  Returns a grad-less
    Tensor: this kernel is a forward-only measurement path.
    """
    from ..tensor import Tensor
    if layout is None:
        if bounds is None:
            bounds = np.array([0, pattern.seq_len], dtype=np.int64)
        layout = layout_from_pattern(pattern, bounds)
    out = block_attention_forward(q.data, k.data, v.data, layout, **kw)
    return Tensor(out)


register_kernel(
    "block", _block_kernel,
    supports_bias=False, needs_pattern=True, trainable=False, exact=True,
    complexity="O(covered·d), contiguous", attention_kind="cluster-sparse",
    bias_format=None,
    description="Forward-only rectangle-union kernel measuring the "
                "regular-access cluster-sparse path (ECR execution)")
