"""Attention kernels: dense (GP-Raw), flash (GP-Flash), topology-sparse
(GP-Sparse) and block/cluster-sparse (ECR execution path)."""

from .stats import AttentionStats, StatsCollector, collector
from .patterns import AttentionPattern, full_pattern, topology_pattern, window_pattern
from .dense import dense_attention
from .flash import flash_attention
from .sparse import segment_softmax, sparse_attention
from .block import BlockLayout, Rect, block_attention_forward, layout_from_pattern
from .performer import performer_attention, performer_features, random_feature_matrix
from .expander import (
    expander_pattern,
    exphormer_pattern,
    random_regular_expander,
)
from .nlp_patterns import (
    bigbird_pattern,
    global_token_pattern,
    longformer_pattern,
    random_pattern,
)

__all__ = [
    "AttentionStats",
    "StatsCollector",
    "collector",
    "AttentionPattern",
    "topology_pattern",
    "full_pattern",
    "window_pattern",
    "dense_attention",
    "flash_attention",
    "sparse_attention",
    "segment_softmax",
    "BlockLayout",
    "Rect",
    "block_attention_forward",
    "layout_from_pattern",
    "performer_attention",
    "performer_features",
    "random_feature_matrix",
    "random_pattern",
    "global_token_pattern",
    "longformer_pattern",
    "bigbird_pattern",
    "random_regular_expander",
    "expander_pattern",
    "exphormer_pattern",
]
