"""Attention kernels: dense (GP-Raw), flash (GP-Flash), topology-sparse
(GP-Sparse) and block/cluster-sparse (ECR execution path).

Every kernel self-registers in :mod:`repro.attention.registry` at import;
dispatch anywhere in the system goes through :func:`resolve_kernel`.
Pattern-derived state on the sparse hot path is memoized per pattern by
:mod:`repro.attention.workspace`.
"""

from .registry import (
    AttentionBackend,
    KernelSpec,
    PatternBuilderSpec,
    UnknownKernelError,
    UnknownPatternBuilderError,
    find_kernels,
    get_kernel,
    get_pattern_builder,
    iter_kernels,
    iter_pattern_builders,
    kernel_names,
    pattern_builder_names,
    register_kernel,
    register_pattern_builder,
    resolve_kernel,
)
from .stats import AttentionStats, StatsCollector, collector
from .patterns import AttentionPattern, full_pattern, topology_pattern, window_pattern
from .workspace import (
    PatternWorkspace,
    WorkspaceCacheStats,
    clear_workspace_stats,
    get_workspace,
    invalidate_touching,
    invalidate_workspace,
    live_workspace_count,
    set_workspace_caching,
    stamp_workspace_scope,
    workspace_cache_stats,
    workspace_caching,
    workspace_caching_enabled,
)
from .dense import dense_attention
from .flash import flash_attention
from .sparse import segment_softmax, sparse_attention
from .block import BlockLayout, Rect, block_attention_forward, layout_from_pattern
from .performer import performer_attention, performer_features, random_feature_matrix
from .expander import (
    expander_pattern,
    exphormer_pattern,
    random_regular_expander,
)
from .nlp_patterns import (
    bigbird_pattern,
    global_token_pattern,
    longformer_pattern,
    random_pattern,
)

__all__ = [
    "AttentionBackend",
    "KernelSpec",
    "PatternBuilderSpec",
    "UnknownKernelError",
    "UnknownPatternBuilderError",
    "find_kernels",
    "get_kernel",
    "get_pattern_builder",
    "iter_kernels",
    "iter_pattern_builders",
    "kernel_names",
    "pattern_builder_names",
    "register_kernel",
    "register_pattern_builder",
    "resolve_kernel",
    "AttentionStats",
    "StatsCollector",
    "collector",
    "AttentionPattern",
    "topology_pattern",
    "full_pattern",
    "window_pattern",
    "PatternWorkspace",
    "WorkspaceCacheStats",
    "clear_workspace_stats",
    "get_workspace",
    "invalidate_touching",
    "invalidate_workspace",
    "live_workspace_count",
    "set_workspace_caching",
    "stamp_workspace_scope",
    "workspace_cache_stats",
    "workspace_caching",
    "workspace_caching_enabled",
    "dense_attention",
    "flash_attention",
    "sparse_attention",
    "segment_softmax",
    "BlockLayout",
    "Rect",
    "block_attention_forward",
    "layout_from_pattern",
    "performer_attention",
    "performer_features",
    "random_feature_matrix",
    "random_pattern",
    "global_token_pattern",
    "longformer_pattern",
    "bigbird_pattern",
    "random_regular_expander",
    "expander_pattern",
    "exphormer_pattern",
]
