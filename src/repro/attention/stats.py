"""Instrumentation for attention kernels.

Every backend records an :class:`AttentionStats` per call: floating-point
operations, score-matrix entries computed, and how many of the memory
accesses were *irregular* (per-edge gathers) versus *regular* (contiguous
block reads).  The hardware model consumes these counts to estimate device
kernel times, and the tests use them to verify the complexity claims of the
paper (dense O(S²) vs topology-induced O(Ẽ)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AttentionStats", "StatsCollector", "collector"]


@dataclass
class AttentionStats:
    """Operation counts for one attention forward (and backward, if run)."""

    kind: str  # "dense" | "flash" | "sparse" | "cluster-sparse"
    seq_len: int
    num_heads: int
    head_dim: int
    scores_computed: int  # number of (i, j) score entries evaluated
    flops: int
    regular_bytes: int  # contiguous reads/writes
    irregular_bytes: int  # gather/scatter (per-edge) traffic

    @property
    def total_bytes(self) -> int:
        return self.regular_bytes + self.irregular_bytes

    @property
    def irregular_fraction(self) -> float:
        t = self.total_bytes
        return self.irregular_bytes / t if t else 0.0


@dataclass
class StatsCollector:
    """Module-level sink the kernels append to; cheap enough to always run."""

    records: list[AttentionStats] = field(default_factory=list)
    enabled: bool = True

    def add(self, stats: AttentionStats) -> None:
        if self.enabled:
            self.records.append(stats)

    def clear(self) -> None:
        self.records.clear()

    def last(self) -> AttentionStats | None:
        return self.records[-1] if self.records else None

    def total_flops(self) -> int:
        return sum(r.flops for r in self.records)


collector = StatsCollector()
