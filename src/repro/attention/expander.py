"""Expander-augmented attention patterns (Exphormer, the paper's ref [26]).

Shirzad et al.'s Exphormer keeps attention sparse but restores global
information flow by overlaying a *random regular expander graph* on the
topology pattern: expanders have constant degree yet logarithmic diameter
and strong spectral gap, so a few layers of attention reach the whole
graph without the O(S²) dense pass.

This sits between the two poles the TorchGT paper measures — the pure
topology pattern (loses high-order reach, Fig. 10/11's "sparse") and the
periodic dense interleave (TorchGT's answer).  The expander overlay is
the *static* alternative to interleaving, and the ablation benchmark can
pit the two directly.

:func:`random_regular_expander` builds the overlay by the permutation-
union construction (union of d/2 random perfect matchings over a random
cycle), which yields simple d-regular graphs with high probability and is
fully vectorized.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .patterns import AttentionPattern, topology_pattern
from .registry import register_pattern_builder

__all__ = ["random_regular_expander", "expander_pattern", "exphormer_pattern"]


def random_regular_expander(n: int, degree: int,
                            rng: np.random.Generator | None = None) -> CSRGraph:
    """A random ≈``degree``-regular graph on ``n`` nodes.

    Construction: ``degree // 2`` independent random cycles (each
    contributing 2 to every node's degree), plus one random perfect
    matching when ``degree`` is odd.  Unions of random cycles are
    expanders with overwhelming probability (Friedman's theorem
    neighbourhood); duplicate edges are merged by the CSR builder, so
    tiny graphs may come out slightly under-degree.
    """
    if n < 3:
        raise ValueError("need at least 3 nodes for an expander overlay")
    if degree < 2:
        raise ValueError("degree must be >= 2")
    rng = rng if rng is not None else np.random.default_rng(0)
    src_parts, dst_parts = [], []
    for _ in range(degree // 2):
        perm = rng.permutation(n)
        src_parts.append(perm)
        dst_parts.append(np.roll(perm, -1))  # cycle edges perm[i]—perm[i+1]
    if degree % 2 == 1:
        perm = rng.permutation(n - (n % 2))
        half = len(perm) // 2
        src_parts.append(perm[:half])
        dst_parts.append(perm[half:])
    edges = np.stack([np.concatenate(src_parts), np.concatenate(dst_parts)],
                     axis=1)
    return CSRGraph.from_edges(n, edges)


def expander_pattern(seq_len: int, degree: int,
                     rng: np.random.Generator | None = None) -> AttentionPattern:
    """Pure expander pattern (plus self-loops): global reach, no topology."""
    g = random_regular_expander(seq_len, degree, rng)
    return topology_pattern(g)  # adds the C1 self-loops


def exphormer_pattern(g: CSRGraph, expander_degree: int = 4,
                      num_global: int = 1,
                      rng: np.random.Generator | None = None) -> AttentionPattern:
    """The Exphormer layout: topology ∪ expander ∪ global tokens.

    Entry count is Ẽ + S·expander_degree + 2·S·num_global — still O(S),
    but with the expander's spectral gap guaranteeing that condition C3
    (L-hop reachability) holds for small L even when the input topology
    is a deep tree or a weakly connected mess.
    """
    topo = topology_pattern(g, global_tokens=num_global)
    exp = expander_pattern(g.num_nodes, expander_degree, rng)
    return AttentionPattern.from_entries(
        g.num_nodes,
        np.concatenate([topo.rows, exp.rows]),
        np.concatenate([topo.cols, exp.cols]))


register_pattern_builder(
    "expander", lambda seq_len, degree=4, **kw:
        expander_pattern(seq_len, degree, **kw),
    needs_graph=False,
    description="Random regular expander overlay + self-loops")
register_pattern_builder(
    "exphormer", exphormer_pattern, needs_graph=True,
    description="Topology ∪ expander ∪ global tokens (Exphormer)")
