"""Cached per-pattern workspaces for the sparse attention hot path.

The sparse kernel needs several arrays *derived* from an
:class:`~repro.attention.patterns.AttentionPattern` that do not depend on
Q/K/V at all:

* the expanded per-entry row index (``np.repeat`` over the CSR indptr);
* the non-empty segment starts the ``reduceat``-based row softmax uses;
* ``int32`` copies of the CSR index arrays (scipy's native index dtype —
  passing int64 makes every ``csr_matrix`` construction downcast-copy
  O(E) per head per call);
* the transpose structure (indptr/indices of Aᵀ plus the entry
  permutation) used by the backward pass's ``Aᵀ @ G`` products.

Before this module existed, every forward of every layer rebuilt all of
that from scratch, every iteration.  A :class:`PatternWorkspace` computes
each piece once and memoizes itself on the pattern instance, so repeated
forwards across layers and iterations reuse it.  Keying by pattern
*identity* gives automatic invalidation under Elastic Computation
Reformation: ECR emits a fresh ``AttentionPattern`` object, whose
workspace is built anew, and the stale workspace dies with the old
pattern.  :func:`invalidate_workspace` drops a workspace explicitly (for
callers that mutate a pattern in place — none in-tree do).

Caching is process-global and can be toggled (``set_workspace_caching`` /
the ``workspace_caching`` context manager) — the disabled path builds a
fresh workspace per call and runs the *identical* code, so outputs are
bitwise identical with the cache on or off.

**Targeted invalidation** (streaming graph updates): every pattern with
a cached workspace is tracked in a weak registry, and callers that know
a pattern's provenance stamp it with :func:`stamp_workspace_scope` — a
dataset tag plus the original node ids its rows cover.  When a
:class:`~repro.stream.GraphDelta` lands, :func:`invalidate_touching`
drops *only* the workspaces whose scope intersects the delta's touched
rows (same tag, overlapping node set — or unknown provenance, dropped
conservatively); every other workspace stays warm.  This replaces the
previous all-or-nothing behavior where any topology change meant a cold
re-warm of every cached workspace in the process.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .patterns import AttentionPattern

__all__ = [
    "PatternWorkspace",
    "WorkspaceCacheStats",
    "get_workspace",
    "invalidate_workspace",
    "stamp_workspace_scope",
    "invalidate_touching",
    "live_workspace_count",
    "clear_workspace_stats",
    "workspace_cache_stats",
    "set_workspace_caching",
    "workspace_caching_enabled",
    "workspace_caching",
]

_WORKSPACE_ATTR = "_cached_workspace"
_SCOPE_TAG_ATTR = "_workspace_scope_tag"
_SCOPE_NODES_ATTR = "_workspace_scope_nodes"

#: Weak registry of every pattern currently holding a cached workspace —
#: what :func:`invalidate_touching` walks.  Keyed by ``id`` (patterns
#: are eq-dataclasses, hence unhashable) with a weakref finalizer, so a
#: pattern dropped by its owner (ECR re-reform, session eviction) never
#: leaks through here.
_live_patterns: dict[int, "weakref.ref[AttentionPattern]"] = {}


def _track_pattern(pattern: AttentionPattern) -> None:
    key = id(pattern)
    _live_patterns[key] = weakref.ref(
        pattern, lambda _ref, _key=key: _live_patterns.pop(_key, None))


def _iter_live_patterns():
    for ref in list(_live_patterns.values()):
        pattern = ref()
        if pattern is not None:
            yield pattern


@dataclass
class WorkspaceCacheStats:
    """Global hit/miss counters for the workspace cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    targeted_drops: int = 0   # invalidate_touching: scope intersected
    targeted_retained: int = 0  # invalidate_touching: stayed warm

    @property
    def builds(self) -> int:
        return self.misses

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = 0
        self.targeted_drops = self.targeted_retained = 0


_stats = WorkspaceCacheStats()
_caching_enabled = True


def _obs_targeted():
    """The registry counter twin of the targeted-invalidation counters.

    Fetched per call (not bound at import) so tests that install a
    fresh registry via :func:`repro.obs.set_registry` see these counts.
    """
    from ..obs.metrics import get_registry

    return get_registry().counter(
        "repro_workspace_targeted_total",
        "targeted invalidation outcomes (dropped / retained workspaces)",
        labels=("outcome",))


def segment_reduce_core(values: np.ndarray, ufunc, empty_val: float,
                        counts: np.ndarray, nonempty: np.ndarray,
                        starts_ne: np.ndarray) -> np.ndarray:
    """Per-row ``ufunc`` reduction of CSR-ordered ``values`` (shared core).

    ``counts``/``nonempty``/``starts_ne`` are the segment descriptors a
    workspace caches (or a standalone caller derives from an indptr).
    Reduceat is applied only at the starts of *non-empty* segments:
    consecutive non-empty starts are exactly each segment's boundaries
    (empty segments collapse onto the next start), so no index clamping
    is needed — clamping would silently truncate the last non-empty
    segment when trailing rows are empty.  Empty rows get ``empty_val``.
    """
    out = np.full(values.shape[:-1] + (len(counts),), empty_val)
    if values.shape[-1] and len(starts_ne):
        out[..., nonempty] = ufunc.reduceat(values, starts_ne, axis=-1)
    return out


class PatternWorkspace:
    """All pattern-derived state the sparse kernel needs, computed once.

    The transpose structure is built lazily (first backward pass) so
    forward-only uses — evaluation, benchmarking — never pay for it.
    """

    __slots__ = ("seq_len", "num_entries", "indptr", "cols", "rows",
                 "indptr_ix", "cols_ix", "counts", "nonempty", "starts_ne",
                 "_shape", "_t_struct")

    def __init__(self, pattern: AttentionPattern):
        indptr = np.asarray(pattern.indptr)
        cols = np.asarray(pattern.cols)
        S = pattern.seq_len
        self.seq_len = S
        self.num_entries = int(len(cols))
        self.indptr = indptr
        self.cols = cols
        self.counts = np.diff(indptr)
        self.rows = np.repeat(np.arange(S, dtype=np.int64), self.counts)
        self.nonempty = self.counts > 0
        self.starts_ne = indptr[:-1][self.nonempty]
        # scipy's native index dtype: int32 unless the pattern overflows it
        ix = np.int32 if max(S, self.num_entries) < np.iinfo(np.int32).max \
            else np.int64
        self.indptr_ix = indptr.astype(ix, copy=False)
        self.cols_ix = cols.astype(ix, copy=False)
        self._shape = (S, S)
        self._t_struct = None

    # ------------------------------------------------------------------ #
    # segment (per-CSR-row) reductions over entry-shaped arrays
    # ------------------------------------------------------------------ #
    def segment_reduce(self, values: np.ndarray, ufunc,
                       empty_val: float) -> np.ndarray:
        """Per-row reduction using the cached segment descriptors."""
        return segment_reduce_core(values, ufunc, empty_val,
                                   self.counts, self.nonempty, self.starts_ne)

    def segment_max(self, values: np.ndarray) -> np.ndarray:
        return self.segment_reduce(values, np.maximum, -np.inf)

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        return self.segment_reduce(values, np.add, 0.0)

    def segment_softmax(self, scores: np.ndarray) -> np.ndarray:
        """Row-segment softmax of entry scores shaped ``(..., E)``."""
        rows = self.rows
        row_max = self.segment_max(scores)
        e = np.exp(scores - row_max[..., rows])
        denom = self.segment_sum(e)
        return e / np.maximum(denom[..., rows], 1e-30)

    # ------------------------------------------------------------------ #
    # CSR matmuls with cached structure
    # ------------------------------------------------------------------ #
    def matrix(self, data: np.ndarray) -> sp.csr_matrix:
        """The S×S CSR matrix with this pattern's structure and ``data``."""
        return sp.csr_matrix((data, self.cols_ix, self.indptr_ix),
                             shape=self._shape, copy=False)

    def matmul(self, data: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """``A @ dense`` for A = CSR(pattern structure, data)."""
        return self.matrix(data) @ dense

    @property
    def transpose_struct(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(t_indptr, t_cols, perm)`` such that Aᵀ = CSR(data[perm], …).

        ``perm`` is the stable order of entries by column — the CSC/
        transpose index permutation.  Computed once per pattern (it costs
        an O(E log E) argsort, the single most expensive derived piece).
        """
        if self._t_struct is None:
            ix = self.indptr_ix.dtype
            perm = np.argsort(self.cols, kind="stable")
            t_cols = self.rows[perm].astype(ix, copy=False)
            col_counts = np.bincount(self.cols, minlength=self.seq_len)
            t_indptr = np.concatenate(
                [[0], np.cumsum(col_counts)]).astype(ix, copy=False)
            self._t_struct = (t_indptr, t_cols, perm)
        return self._t_struct

    def matmul_t(self, data: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """``Aᵀ @ dense`` via the cached transpose permutation."""
        t_indptr, t_cols, perm = self.transpose_struct
        at = sp.csr_matrix((data[perm], t_cols, t_indptr),
                           shape=self._shape, copy=False)
        return at @ dense


# ------------------------------------------------------------------ #
# the cache
# ------------------------------------------------------------------ #
def get_workspace(pattern: AttentionPattern) -> PatternWorkspace:
    """The (possibly cached) workspace for ``pattern``.

    With caching enabled the workspace memoizes on the pattern instance,
    so every layer/iteration touching the same pattern object shares one
    workspace; with caching disabled a fresh workspace is built per call
    (identical math, so outputs are bitwise identical either way).
    """
    if not _caching_enabled:
        _stats.misses += 1
        return PatternWorkspace(pattern)
    ws = pattern.__dict__.get(_WORKSPACE_ATTR)
    if ws is None:
        _stats.misses += 1
        ws = PatternWorkspace(pattern)
        pattern.__dict__[_WORKSPACE_ATTR] = ws
        _track_pattern(pattern)
    else:
        _stats.hits += 1
    return ws


def invalidate_workspace(pattern: AttentionPattern) -> bool:
    """Drop ``pattern``'s cached workspace; True if one existed."""
    existed = pattern.__dict__.pop(_WORKSPACE_ATTR, None) is not None
    _live_patterns.pop(id(pattern), None)
    if existed:
        _stats.invalidations += 1
    return existed


def stamp_workspace_scope(pattern: AttentionPattern, tag=None,
                          node_ids: np.ndarray | None = None) -> None:
    """Record a pattern's provenance for targeted invalidation.

    ``tag`` names the dataset (any hashable — e.g. ``("ds", id(ds))``)
    the pattern was built over; ``node_ids`` are the **original** node
    ids its rows cover (the reordering inverse for clustered layouts,
    the queried node set for subgraphs; ``None`` = the whole graph).
    :func:`invalidate_touching` keeps differently-tagged workspaces
    warm and, within a tag, drops only those whose node set intersects
    a delta's touched rows.
    """
    pattern.__dict__[_SCOPE_TAG_ATTR] = tag
    pattern.__dict__[_SCOPE_NODES_ATTR] = (
        None if node_ids is None
        else np.asarray(node_ids, dtype=np.int64))


def invalidate_touching(touched: np.ndarray, tag=None) -> dict:
    """Drop only the cached workspaces a graph delta actually staled.

    Walks every live workspace-holding pattern and drops it when

    * its scope tag matches ``tag`` (or either side has no tag —
      unknown provenance is dropped conservatively, never served
      stale), **and**
    * its scope node set intersects ``touched`` (no recorded node set
      = covers the whole graph = always intersects).

    Everything else stays warm.  Returns ``{"dropped": …,
    "retained": …}`` and feeds the ``targeted_drops`` /
    ``targeted_retained`` counters in :func:`workspace_cache_stats`.
    """
    touched = np.asarray(touched, dtype=np.int64)
    dropped = retained = 0
    live = list(_iter_live_patterns())
    if not len(touched):  # feature-only delta: no topology row changed
        _stats.targeted_retained += len(live)
        _obs_targeted().inc(len(live), outcome="retained")
        return {"dropped": 0, "retained": len(live)}
    for pattern in live:
        p_tag = pattern.__dict__.get(_SCOPE_TAG_ATTR)
        if tag is not None and p_tag is not None and p_tag != tag:
            retained += 1
            continue
        nodes = pattern.__dict__.get(_SCOPE_NODES_ATTR)
        if nodes is not None and not np.any(
                np.isin(nodes, touched, assume_unique=False)):
            retained += 1
            continue
        if invalidate_workspace(pattern):
            dropped += 1
    _stats.targeted_drops += dropped
    _stats.targeted_retained += retained
    if dropped:
        _obs_targeted().inc(dropped, outcome="dropped")
    if retained:
        _obs_targeted().inc(retained, outcome="retained")
    return {"dropped": dropped, "retained": retained}


def live_workspace_count() -> int:
    """How many patterns currently hold a cached workspace."""
    return sum(1 for p in _iter_live_patterns()
               if _WORKSPACE_ATTR in p.__dict__)


def workspace_cache_stats() -> WorkspaceCacheStats:
    """The global hit/miss counters (live object; see ``reset()``)."""
    return _stats


def clear_workspace_stats() -> None:
    _stats.reset()


def set_workspace_caching(enabled: bool) -> None:
    """Globally enable/disable workspace reuse (numerics are unaffected)."""
    global _caching_enabled
    _caching_enabled = bool(enabled)


def workspace_caching_enabled() -> bool:
    return _caching_enabled


@contextmanager
def workspace_caching(enabled: bool):
    """Temporarily force workspace caching on or off (tests, benchmarks)."""
    prev = _caching_enabled
    set_workspace_caching(enabled)
    try:
        yield
    finally:
        set_workspace_caching(prev)
