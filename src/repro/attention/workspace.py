"""Cached per-pattern workspaces for the sparse attention hot path.

The sparse kernel needs several arrays *derived* from an
:class:`~repro.attention.patterns.AttentionPattern` that do not depend on
Q/K/V at all:

* the expanded per-entry row index (``np.repeat`` over the CSR indptr);
* the non-empty segment starts the ``reduceat``-based row softmax uses;
* ``int32`` copies of the CSR index arrays (scipy's native index dtype —
  passing int64 makes every ``csr_matrix`` construction downcast-copy
  O(E) per head per call);
* the transpose structure (indptr/indices of Aᵀ plus the entry
  permutation) used by the backward pass's ``Aᵀ @ G`` products.

Before this module existed, every forward of every layer rebuilt all of
that from scratch, every iteration.  A :class:`PatternWorkspace` computes
each piece once and memoizes itself on the pattern instance, so repeated
forwards across layers and iterations reuse it.  Keying by pattern
*identity* gives automatic invalidation under Elastic Computation
Reformation: ECR emits a fresh ``AttentionPattern`` object, whose
workspace is built anew, and the stale workspace dies with the old
pattern.  :func:`invalidate_workspace` drops a workspace explicitly (for
callers that mutate a pattern in place — none in-tree do).

Caching is process-global and can be toggled (``set_workspace_caching`` /
the ``workspace_caching`` context manager) — the disabled path builds a
fresh workspace per call and runs the *identical* code, so outputs are
bitwise identical with the cache on or off.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .patterns import AttentionPattern

__all__ = [
    "PatternWorkspace",
    "WorkspaceCacheStats",
    "get_workspace",
    "invalidate_workspace",
    "clear_workspace_stats",
    "workspace_cache_stats",
    "set_workspace_caching",
    "workspace_caching_enabled",
    "workspace_caching",
]

_WORKSPACE_ATTR = "_cached_workspace"


@dataclass
class WorkspaceCacheStats:
    """Global hit/miss counters for the workspace cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def builds(self) -> int:
        return self.misses

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = 0


_stats = WorkspaceCacheStats()
_caching_enabled = True


def segment_reduce_core(values: np.ndarray, ufunc, empty_val: float,
                        counts: np.ndarray, nonempty: np.ndarray,
                        starts_ne: np.ndarray) -> np.ndarray:
    """Per-row ``ufunc`` reduction of CSR-ordered ``values`` (shared core).

    ``counts``/``nonempty``/``starts_ne`` are the segment descriptors a
    workspace caches (or a standalone caller derives from an indptr).
    Reduceat is applied only at the starts of *non-empty* segments:
    consecutive non-empty starts are exactly each segment's boundaries
    (empty segments collapse onto the next start), so no index clamping
    is needed — clamping would silently truncate the last non-empty
    segment when trailing rows are empty.  Empty rows get ``empty_val``.
    """
    out = np.full(values.shape[:-1] + (len(counts),), empty_val)
    if values.shape[-1] and len(starts_ne):
        out[..., nonempty] = ufunc.reduceat(values, starts_ne, axis=-1)
    return out


class PatternWorkspace:
    """All pattern-derived state the sparse kernel needs, computed once.

    The transpose structure is built lazily (first backward pass) so
    forward-only uses — evaluation, benchmarking — never pay for it.
    """

    __slots__ = ("seq_len", "num_entries", "indptr", "cols", "rows",
                 "indptr_ix", "cols_ix", "counts", "nonempty", "starts_ne",
                 "_shape", "_t_struct")

    def __init__(self, pattern: AttentionPattern):
        indptr = np.asarray(pattern.indptr)
        cols = np.asarray(pattern.cols)
        S = pattern.seq_len
        self.seq_len = S
        self.num_entries = int(len(cols))
        self.indptr = indptr
        self.cols = cols
        self.counts = np.diff(indptr)
        self.rows = np.repeat(np.arange(S, dtype=np.int64), self.counts)
        self.nonempty = self.counts > 0
        self.starts_ne = indptr[:-1][self.nonempty]
        # scipy's native index dtype: int32 unless the pattern overflows it
        ix = np.int32 if max(S, self.num_entries) < np.iinfo(np.int32).max \
            else np.int64
        self.indptr_ix = indptr.astype(ix, copy=False)
        self.cols_ix = cols.astype(ix, copy=False)
        self._shape = (S, S)
        self._t_struct = None

    # ------------------------------------------------------------------ #
    # segment (per-CSR-row) reductions over entry-shaped arrays
    # ------------------------------------------------------------------ #
    def segment_reduce(self, values: np.ndarray, ufunc,
                       empty_val: float) -> np.ndarray:
        """Per-row reduction using the cached segment descriptors."""
        return segment_reduce_core(values, ufunc, empty_val,
                                   self.counts, self.nonempty, self.starts_ne)

    def segment_max(self, values: np.ndarray) -> np.ndarray:
        return self.segment_reduce(values, np.maximum, -np.inf)

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        return self.segment_reduce(values, np.add, 0.0)

    def segment_softmax(self, scores: np.ndarray) -> np.ndarray:
        """Row-segment softmax of entry scores shaped ``(..., E)``."""
        rows = self.rows
        row_max = self.segment_max(scores)
        e = np.exp(scores - row_max[..., rows])
        denom = self.segment_sum(e)
        return e / np.maximum(denom[..., rows], 1e-30)

    # ------------------------------------------------------------------ #
    # CSR matmuls with cached structure
    # ------------------------------------------------------------------ #
    def matrix(self, data: np.ndarray) -> sp.csr_matrix:
        """The S×S CSR matrix with this pattern's structure and ``data``."""
        return sp.csr_matrix((data, self.cols_ix, self.indptr_ix),
                             shape=self._shape, copy=False)

    def matmul(self, data: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """``A @ dense`` for A = CSR(pattern structure, data)."""
        return self.matrix(data) @ dense

    @property
    def transpose_struct(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(t_indptr, t_cols, perm)`` such that Aᵀ = CSR(data[perm], …).

        ``perm`` is the stable order of entries by column — the CSC/
        transpose index permutation.  Computed once per pattern (it costs
        an O(E log E) argsort, the single most expensive derived piece).
        """
        if self._t_struct is None:
            ix = self.indptr_ix.dtype
            perm = np.argsort(self.cols, kind="stable")
            t_cols = self.rows[perm].astype(ix, copy=False)
            col_counts = np.bincount(self.cols, minlength=self.seq_len)
            t_indptr = np.concatenate(
                [[0], np.cumsum(col_counts)]).astype(ix, copy=False)
            self._t_struct = (t_indptr, t_cols, perm)
        return self._t_struct

    def matmul_t(self, data: np.ndarray, dense: np.ndarray) -> np.ndarray:
        """``Aᵀ @ dense`` via the cached transpose permutation."""
        t_indptr, t_cols, perm = self.transpose_struct
        at = sp.csr_matrix((data[perm], t_cols, t_indptr),
                           shape=self._shape, copy=False)
        return at @ dense


# ------------------------------------------------------------------ #
# the cache
# ------------------------------------------------------------------ #
def get_workspace(pattern: AttentionPattern) -> PatternWorkspace:
    """The (possibly cached) workspace for ``pattern``.

    With caching enabled the workspace memoizes on the pattern instance,
    so every layer/iteration touching the same pattern object shares one
    workspace; with caching disabled a fresh workspace is built per call
    (identical math, so outputs are bitwise identical either way).
    """
    if not _caching_enabled:
        _stats.misses += 1
        return PatternWorkspace(pattern)
    ws = pattern.__dict__.get(_WORKSPACE_ATTR)
    if ws is None:
        _stats.misses += 1
        ws = PatternWorkspace(pattern)
        pattern.__dict__[_WORKSPACE_ATTR] = ws
    else:
        _stats.hits += 1
    return ws


def invalidate_workspace(pattern: AttentionPattern) -> bool:
    """Drop ``pattern``'s cached workspace; True if one existed."""
    existed = pattern.__dict__.pop(_WORKSPACE_ATTR, None) is not None
    if existed:
        _stats.invalidations += 1
    return existed


def workspace_cache_stats() -> WorkspaceCacheStats:
    """The global hit/miss counters (live object; see ``reset()``)."""
    return _stats


def clear_workspace_stats() -> None:
    _stats.reset()


def set_workspace_caching(enabled: bool) -> None:
    """Globally enable/disable workspace reuse (numerics are unaffected)."""
    global _caching_enabled
    _caching_enabled = bool(enabled)


def workspace_caching_enabled() -> bool:
    return _caching_enabled


@contextmanager
def workspace_caching(enabled: bool):
    """Temporarily force workspace caching on or off (tests, benchmarks)."""
    prev = _caching_enabled
    set_workspace_caching(enabled)
    try:
        yield
    finally:
        set_workspace_caching(prev)
