"""Graph deltas: the unit of streaming topology/feature mutation.

A :class:`GraphDelta` describes one atomic change to a node-level
dataset: undirected edges to add and remove, fresh nodes to append
(with their feature rows and optional labels), and in-place feature
updates for existing nodes.  Deltas are *data*, not actions — they
validate against a graph, serialize to the :mod:`repro.distributed`
array wire framing (what the serving cluster broadcasts to workers),
and apply through :func:`repro.stream.apply_delta`.

Delta semantics (the contract ``docs/streaming.md`` documents):

* additions of existing edges deduplicate, removals of absent edges
  are ignored — applying the same delta twice is an edge-level no-op
  (node additions are **not** idempotent, which is why the serving
  layer guards application with an expected ``graph_version``);
* an edge both removed and added by one delta ends up present;
* node ids are assigned densely: a delta adding k nodes to an
  n-node graph creates ids ``n … n+k-1``, and its ``add_edges`` may
  reference them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distributed.comm import pack_arrays, unpack_arrays

__all__ = ["GraphDelta"]


def _as_edges(edges) -> np.ndarray:
    arr = (np.empty((0, 2), dtype=np.int64) if edges is None
           else np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    return arr


@dataclass(frozen=True)
class GraphDelta:
    """One atomic mutation of a node-level graph dataset.

    Attributes
    ----------
    add_edges, remove_edges:
        ``(E, 2)`` undirected endpoint arrays (symmetrized on apply,
        like :meth:`~repro.graph.CSRGraph.from_edges`).
    num_new_nodes:
        Fresh nodes appended after the existing ones; ``new_features``
        (``(num_new_nodes, F)``) is required when > 0, ``new_labels``
        defaults to class 0 and the new nodes join no train/val/test
        split.
    update_nodes, update_features:
        In-place feature replacement: row ``update_features[i]``
        overwrites the features of node ``update_nodes[i]``.
    """

    add_edges: np.ndarray = field(default_factory=lambda: _as_edges(None))
    remove_edges: np.ndarray = field(default_factory=lambda: _as_edges(None))
    num_new_nodes: int = 0
    new_features: np.ndarray | None = None
    new_labels: np.ndarray | None = None
    update_nodes: np.ndarray | None = None
    update_features: np.ndarray | None = None

    def __post_init__(self):
        object.__setattr__(self, "add_edges", _as_edges(self.add_edges))
        object.__setattr__(self, "remove_edges", _as_edges(self.remove_edges))
        object.__setattr__(self, "num_new_nodes", int(self.num_new_nodes))
        if self.num_new_nodes < 0:
            raise ValueError(
                f"num_new_nodes must be >= 0, got {self.num_new_nodes}")
        for name in ("new_features", "update_features"):
            val = getattr(self, name)
            if val is not None:
                object.__setattr__(self, name,
                                   np.asarray(val, dtype=np.float64))
        for name in ("new_labels", "update_nodes"):
            val = getattr(self, name)
            if val is not None:
                object.__setattr__(
                    self, name, np.asarray(val, dtype=np.int64).reshape(-1))
        if (self.update_nodes is None) != (self.update_features is None):
            raise ValueError(
                "update_nodes and update_features must be given together")
        if (self.update_nodes is not None
                and len(self.update_nodes) != len(self.update_features)):
            raise ValueError(
                f"{len(self.update_nodes)} update_nodes but "
                f"{len(self.update_features)} update_features rows")
        if self.num_new_nodes > 0 and self.new_features is None:
            raise ValueError(
                f"adding {self.num_new_nodes} nodes requires new_features")
        if (self.new_features is not None
                and len(self.new_features) != self.num_new_nodes):
            raise ValueError(
                f"new_features has {len(self.new_features)} rows for "
                f"{self.num_new_nodes} new nodes")
        if (self.new_labels is not None
                and len(self.new_labels) != self.num_new_nodes):
            raise ValueError(
                f"new_labels has {len(self.new_labels)} entries for "
                f"{self.num_new_nodes} new nodes")

    # -- introspection --------------------------------------------------- #
    @property
    def is_empty(self) -> bool:
        """True when applying this delta would change nothing."""
        return (not len(self.add_edges) and not len(self.remove_edges)
                and self.num_new_nodes == 0 and self.update_nodes is None)

    def touched_nodes(self, num_nodes: int) -> np.ndarray:
        """Node ids whose adjacency or features this delta changes.

        Endpoints of added/removed edges, feature-updated nodes, and
        the fresh node ids a graph of ``num_nodes`` would assign —
        the row set targeted workspace invalidation intersects against.
        """
        parts = [self.add_edges.reshape(-1), self.remove_edges.reshape(-1)]
        if self.update_nodes is not None:
            parts.append(self.update_nodes)
        if self.num_new_nodes:
            parts.append(np.arange(num_nodes,
                                   num_nodes + self.num_new_nodes,
                                   dtype=np.int64))
        return np.unique(np.concatenate(parts)) if parts else \
            np.empty(0, dtype=np.int64)

    def validate(self, dataset) -> None:
        """Raise ``ValueError`` unless the delta fits ``dataset``.

        Checks endpoint ranges against the current node count (added
        edges may reference the delta's own fresh nodes), feature
        dimensionality, and update-node ranges.
        """
        n = dataset.num_nodes
        n_total = n + self.num_new_nodes
        feat_dim = dataset.features.shape[1]
        if len(self.add_edges) and (self.add_edges.min() < 0
                                    or self.add_edges.max() >= n_total):
            raise ValueError(
                f"add_edges endpoint out of range for {n_total} nodes")
        if len(self.remove_edges) and (self.remove_edges.min() < 0
                                       or self.remove_edges.max() >= n):
            raise ValueError(
                f"remove_edges endpoint out of range for {n} nodes")
        if (self.new_features is not None and self.num_new_nodes
                and self.new_features.shape[1] != feat_dim):
            raise ValueError(
                f"new_features has dim {self.new_features.shape[1]}, "
                f"dataset features have dim {feat_dim}")
        if self.update_nodes is not None:
            if len(self.update_nodes) and (
                    self.update_nodes.min() < 0
                    or self.update_nodes.max() >= n):
                raise ValueError(
                    f"update_nodes out of range for {n} nodes")
            if self.update_features.shape[1:] != (feat_dim,):
                raise ValueError(
                    f"update_features rows have dim "
                    f"{self.update_features.shape[1:]}, expected {feat_dim}")

    # -- wire format ------------------------------------------------------ #
    def to_payload(self) -> bytes:
        """Serialize with the :func:`repro.distributed.pack_arrays` framing.

        This is the byte string a :class:`~repro.serve.ServingCluster`
        broadcasts to its workers — deterministic (the same delta
        always frames to the same bytes) and pickle-free.
        """
        feat_dim = (self.new_features.shape[1]
                    if self.new_features is not None else 0)
        return pack_arrays([
            np.asarray([self.num_new_nodes], dtype=np.int64),
            self.add_edges,
            self.remove_edges,
            (self.new_features if self.new_features is not None
             else np.empty((0, feat_dim), dtype=np.float64)),
            (self.new_labels if self.new_labels is not None
             else np.empty(0, dtype=np.int64)),
            (self.update_nodes if self.update_nodes is not None
             else np.empty(0, dtype=np.int64)),
            (self.update_features if self.update_features is not None
             else np.empty((0, 0), dtype=np.float64)),
        ])

    @classmethod
    def from_payload(cls, buf: bytes) -> "GraphDelta":
        """Decode a :meth:`to_payload` byte string back into a delta."""
        (meta, add, rem, new_feats, new_labels,
         upd_nodes, upd_feats) = unpack_arrays(buf)
        num_new = int(meta[0])
        return cls(
            add_edges=add, remove_edges=rem, num_new_nodes=num_new,
            new_features=new_feats if num_new else None,
            new_labels=(new_labels if num_new and len(new_labels) else None),
            update_nodes=upd_nodes if len(upd_nodes) else None,
            update_features=upd_feats if len(upd_nodes) else None,
        )

    def __repr__(self) -> str:
        upd = 0 if self.update_nodes is None else len(self.update_nodes)
        return (f"GraphDelta(+{len(self.add_edges)}e "
                f"-{len(self.remove_edges)}e +{self.num_new_nodes}n "
                f"~{upd}f)")
