"""Applying deltas to live datasets: incremental, versioned, auditable.

:func:`apply_delta` is the single mutation point for a
:class:`~repro.graph.NodeDataset`: it routes topology changes through
the incremental CSR rebuild (:meth:`~repro.graph.CSRGraph.apply_edge_delta`
— only touched rows are recomputed), extends the feature/label/split
arrays for fresh nodes, applies in-place feature updates, and bumps the
dataset's monotonic ``graph_version``.  :func:`full_rebuild` applies the
*same* semantics through a from-scratch
:meth:`~repro.graph.CSRGraph.from_edges` rebuild — the reference path
the streaming benchmark proves bitwise-identical (and ≥3× slower for
small deltas).

:func:`make_churn_deltas` generates a seeded sequence of valid deltas
against an evolving graph (removals always name live edges, additions
always name absent ones) — the churn workload the serving layer's
streaming tests and ``benchmarks/bench_stream_updates.py`` replay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..obs.metrics import get_registry
from .delta import GraphDelta

__all__ = ["DeltaReport", "apply_delta", "full_rebuild", "make_churn_deltas"]


@dataclass(frozen=True)
class DeltaReport:
    """What one applied delta changed (returned by :func:`apply_delta`)."""

    graph_version: int          # the dataset's version after the apply
    touched_rows: np.ndarray    # row ids whose adjacency was recomputed
    num_nodes: int              # node count after the apply
    num_edges: int              # directed CSR entries after the apply
    nodes_added: int
    features_updated: int

    @property
    def touched_fraction(self) -> float:
        """Touched rows over total rows — the locality of the delta."""
        return len(self.touched_rows) / self.num_nodes if self.num_nodes \
            else 0.0


def _extend_node_arrays(dataset, delta: GraphDelta) -> None:
    """Append the delta's fresh nodes to every per-node array."""
    k = delta.num_new_nodes
    dataset.features = np.concatenate(
        [dataset.features, delta.new_features])
    labels = (delta.new_labels if delta.new_labels is not None
              else np.zeros(k, dtype=np.int64))
    dataset.labels = np.concatenate([dataset.labels, labels])
    pad = np.zeros(k, dtype=bool)
    dataset.train_mask = np.concatenate([dataset.train_mask, pad])
    dataset.val_mask = np.concatenate([dataset.val_mask, pad])
    dataset.test_mask = np.concatenate([dataset.test_mask, pad])
    if dataset.blocks is not None:
        dataset.blocks = np.concatenate(
            [dataset.blocks, -np.ones(k, dtype=dataset.blocks.dtype)])


def _finish(dataset, delta: GraphDelta, graph: CSRGraph,
            touched: np.ndarray) -> DeltaReport:
    """Shared tail of both apply paths: features, labels, version bump."""
    if delta.num_new_nodes:
        _extend_node_arrays(dataset, delta)
    updated = 0
    if delta.update_nodes is not None:
        dataset.features[delta.update_nodes] = delta.update_features
        updated = len(delta.update_nodes)
    dataset.graph = graph
    dataset.graph_version = int(getattr(dataset, "graph_version", 0)) + 1
    registry = get_registry()
    registry.counter(
        "repro_stream_deltas_total",
        "GraphDeltas applied to a live dataset").inc()
    registry.gauge(
        "repro_stream_graph_version",
        "latest dataset graph_version observed in this process",
    ).set(dataset.graph_version)
    return DeltaReport(
        graph_version=dataset.graph_version,
        touched_rows=touched,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        nodes_added=delta.num_new_nodes,
        features_updated=updated,
    )


def apply_delta(dataset, delta: GraphDelta) -> DeltaReport:
    """Apply ``delta`` to a node-level dataset **incrementally**, in place.

    Only CSR rows touched by the delta are recomputed; untouched rows
    are bulk-copied.  The mutated dataset object keeps its identity
    (sessions and pools holding it observe the change through the
    bumped ``graph_version``), and the resulting graph is bitwise
    identical to what :func:`full_rebuild` produces.

    Datasets that manage their own persistence (anything exposing an
    ``apply_delta`` method, e.g. :class:`repro.store.StoredNodeDataset`)
    are dispatched to — the store rewrites exactly the chunks the delta
    intersects and returns the same :class:`DeltaReport`.
    """
    own_apply = getattr(dataset, "apply_delta", None)
    if own_apply is not None:
        return own_apply(delta)
    delta.validate(dataset)
    graph, touched = dataset.graph.apply_edge_delta(
        delta.add_edges, delta.remove_edges,
        num_new_nodes=delta.num_new_nodes)
    return _finish(dataset, delta, graph, touched)


def full_rebuild(dataset, delta: GraphDelta) -> DeltaReport:
    """Apply ``delta`` via a from-scratch edge-set rebuild (reference path).

    Semantically identical to :func:`apply_delta` — the updated directed
    edge set is materialized and re-sorted wholesale through
    :meth:`~repro.graph.CSRGraph.from_edges`.  This is what "reload the
    dataset" used to mean; the streaming benchmark measures its cost
    against the incremental path and asserts the results match bitwise.
    """
    delta.validate(dataset)
    n = dataset.num_nodes + delta.num_new_nodes
    old = dataset.graph.edge_array()
    add = np.concatenate([delta.add_edges, delta.add_edges[:, ::-1]])
    rem = np.concatenate([delta.remove_edges, delta.remove_edges[:, ::-1]])
    lin_old = old[:, 0] * n + old[:, 1]
    lin_rem = rem[:, 0] * n + rem[:, 1]
    lin_add = add[:, 0] * n + add[:, 1]
    lin = np.union1d(lin_old[~np.isin(lin_old, lin_rem)], lin_add)
    edges = np.stack([lin // n, lin % n], axis=1)
    graph = CSRGraph.from_edges(n, edges, symmetrize=False)
    touched = np.unique(np.concatenate(
        [add.reshape(-1), rem.reshape(-1)])).astype(np.int64)
    return _finish(dataset, delta, graph, touched)


def make_churn_deltas(dataset, num_deltas: int, edges_per_delta: int = 8,
                      feature_updates_per_delta: int = 0,
                      add_node_every: int = 0,
                      seed: int = 0) -> list[GraphDelta]:
    """A seeded churn sequence: valid deltas against the *evolving* graph.

    Each delta removes ``edges_per_delta`` currently-live undirected
    edges (never self-loops) and adds the same number of currently-absent
    ones, so every operation is meaningful at its position in the
    sequence.  ``feature_updates_per_delta`` adds in-place feature
    rewrites; every ``add_node_every``-th delta (0 = never) appends one
    fresh node wired to a random existing one.  The generator tracks the
    evolving topology itself — the caller's dataset is **not** mutated.
    """
    if num_deltas < 0:
        raise ValueError(f"num_deltas must be >= 0, got {num_deltas}")
    rng = np.random.default_rng(seed)
    graph = dataset.graph
    feat_dim = dataset.features.shape[1]
    deltas: list[GraphDelta] = []
    for i in range(num_deltas):
        edges = graph.edge_array()
        undirected = edges[edges[:, 0] < edges[:, 1]]
        k_rem = min(edges_per_delta, len(undirected))
        remove = (undirected[rng.choice(len(undirected), size=k_rem,
                                        replace=False)]
                  if k_rem else np.empty((0, 2), dtype=np.int64))
        add_rows = []
        attempts = 0
        while len(add_rows) < edges_per_delta and attempts < 50:
            cand = rng.integers(0, graph.num_nodes,
                                size=(4 * edges_per_delta, 2))
            cand = cand[cand[:, 0] != cand[:, 1]]
            for u, v in cand:
                if len(add_rows) >= edges_per_delta:
                    break
                if not graph.has_edge(int(u), int(v)):
                    add_rows.append((int(u), int(v)))
            attempts += 1
        add = np.asarray(add_rows, dtype=np.int64).reshape(-1, 2)
        num_new = 1 if add_node_every and (i + 1) % add_node_every == 0 else 0
        new_feats = None
        if num_new:
            anchor = int(rng.integers(0, graph.num_nodes))
            add = np.concatenate(
                [add, [[graph.num_nodes, anchor]]]).astype(np.int64)
            new_feats = rng.standard_normal((1, feat_dim))
        upd_nodes = upd_feats = None
        if feature_updates_per_delta:
            upd_nodes = rng.choice(graph.num_nodes,
                                   size=min(feature_updates_per_delta,
                                            graph.num_nodes),
                                   replace=False).astype(np.int64)
            upd_feats = rng.standard_normal((len(upd_nodes), feat_dim))
        delta = GraphDelta(add_edges=add, remove_edges=remove,
                           num_new_nodes=num_new, new_features=new_feats,
                           update_nodes=upd_nodes,
                           update_features=upd_feats)
        deltas.append(delta)
        graph, _ = graph.apply_edge_delta(add, remove,
                                          num_new_nodes=num_new)
    return deltas
