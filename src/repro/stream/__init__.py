"""Streaming graph updates: first-class incremental mutation of live graphs.

Every other subsystem treats a dataset as frozen; :mod:`repro.stream`
makes it *evolve*.  A :class:`GraphDelta` (edge add/remove, node
additions, feature updates) applies to a node-level dataset through
:func:`apply_delta`, which rebuilds **only the touched CSR rows**
(:meth:`~repro.graph.CSRGraph.apply_edge_delta`), bumps the dataset's
monotonic ``graph_version``, and leaves everything else — including the
warm pattern workspaces of unrelated datasets — untouched.

The stack above composes with it end to end:

* :meth:`repro.api.Session.apply_delta` versions the session's dataset,
  drops its inference cache, and triggers *targeted* workspace
  invalidation (:func:`repro.attention.invalidate_touching`);
* :meth:`repro.serve.InferenceServer.submit_delta` serializes mutations
  against in-flight micro-batches, and every result future carries the
  ``graph_version`` it was computed at;
* :meth:`repro.serve.ServingCluster.submit_delta` broadcasts the delta
  to every worker over the :func:`repro.distributed.pack_arrays` wire
  framing, with version-guarded application so a requeued delta is
  applied exactly once.

Durability lives in :mod:`repro.stream.wal`: a :class:`MutationLog`
write-ahead log sits in front of ``apply_delta`` at every tier
(:func:`log_apply` — append, apply, maybe snapshot), snapshots reuse
the :mod:`repro.store` chunked format, and crash recovery is snapshot
+ replay to the last acknowledged ``graph_version``
(``benchmarks/bench_wal_recovery.py`` gates it bitwise against an
uninterrupted run).

``benchmarks/bench_stream_updates.py`` holds the two gates: post-delta
logits bitwise identical to a from-scratch rebuild, and ≥3× faster
incremental apply for deltas touching ≤5% of rows.
"""

from .apply import DeltaReport, apply_delta, full_rebuild, make_churn_deltas
from .delta import GraphDelta
from .wal import (
    MAX_RECORD_BYTES,
    RECORD_HEADER_SIZE,
    WAL_MAGIC,
    CorruptRecordError,
    MutationLog,
    RecordTooLargeError,
    TruncatedRecordError,
    WalError,
    decode_record,
    encode_record,
    log_apply,
)

__all__ = [
    "GraphDelta",
    "DeltaReport",
    "apply_delta",
    "full_rebuild",
    "make_churn_deltas",
    "WAL_MAGIC",
    "RECORD_HEADER_SIZE",
    "MAX_RECORD_BYTES",
    "WalError",
    "TruncatedRecordError",
    "CorruptRecordError",
    "RecordTooLargeError",
    "encode_record",
    "decode_record",
    "MutationLog",
    "log_apply",
]
