"""Durable write-ahead logging for streaming graph mutations.

A :class:`MutationLog` is the durability spine of the streaming stack:
every :class:`~repro.stream.GraphDelta` is appended to an on-disk log
*before* it is applied, so a crash at any point loses no acknowledged
mutation.  The record body is the delta's own deterministic
:meth:`~repro.stream.GraphDelta.to_payload` framing; the log adds a
magic/length/CRC32 envelope per record, so a torn final record (the
crash-mid-write case) is detected and cleanly truncated on the next
owner open, while a CRC lie anywhere else surfaces as a typed
:class:`CorruptRecordError` — committed history is never silently
dropped.

Recovery is *snapshot + replay*: :meth:`MutationLog.snapshot`
persists the current dataset in the :mod:`repro.store` chunked format
under the log directory, and :meth:`MutationLog.recover` opens the
latest snapshot and replays every newer record, landing on exactly the
``graph_version`` the log last acknowledged.  Replay is exactly-once by
construction — each record carries the version it *produces*, records
at or below the dataset's current version are skipped, and a version
gap raises instead of applying out of order (node additions are not
idempotent).

Every mutation tier routes through the same pipeline
(:func:`log_apply` — append, apply, maybe snapshot):
:meth:`repro.api.Session.apply_delta` after
:meth:`~repro.api.Session.attach_wal`, the
:class:`~repro.serve.InferenceServer` via its ``wal=`` argument, the
:class:`~repro.serve.ServingCluster` router (append-then-broadcast via
``wal_dir=``, so a restarted router replays unacked deltas), and
:class:`~repro.store.StoredNodeDataset` via
:meth:`~repro.store.StoredNodeDataset.attach_wal`, which turns its
per-delta chunk rewrites into log-driven checkpoints.  Read-replica
workers tail the same file with ``mode="r"`` (never truncating the
owner's tail) and serve version-pinned reads at a bounded lag.

Observability: the ``repro_wal_*`` counters/gauges are pre-registered
at construction (appends, replays, truncations, snapshot bytes,
replica lag), and appends/replays record ``wal_append`` /
``wal_replay`` spans when tracing is on.
"""

from __future__ import annotations

import os
import struct
import zlib

from .._clock import now as _now
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .delta import GraphDelta

__all__ = [
    "WAL_MAGIC",
    "RECORD_HEADER_SIZE",
    "MAX_RECORD_BYTES",
    "WalError",
    "TruncatedRecordError",
    "CorruptRecordError",
    "RecordTooLargeError",
    "encode_record",
    "decode_record",
    "MutationLog",
    "log_apply",
]

#: Per-record magic marking the start of a WAL record envelope
#: (distinct from the net protocol's ``RNT1`` and the array framing's
#: ``RGT1`` so a mixed-up file fails loudly, not confusingly).
WAL_MAGIC = b"RWL1"

#: Fixed envelope size: magic (4) + body length u32 BE + CRC32 u32 BE.
RECORD_HEADER_SIZE = 12

#: Upper bound on one record body — a length prefix beyond it is
#: corruption (or an abuse attempt), not a real delta, and is refused
#: before any allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024

_LOG_NAME = "log.bin"
_SNAPSHOT_DIR = "snapshots"

#: One-line help strings for the pre-registered ``repro_wal_*`` series.
_COUNTER_HELP = {
    "appends": "records appended to a mutation write-ahead log",
    "append_bytes": "bytes appended to a mutation write-ahead log",
    "replayed": "log records applied to a dataset during replay",
    "replay_skipped":
        "already-applied log records skipped during replay "
        "(exactly-once guard)",
    "truncated": "torn-tail truncation events on write-ahead log open",
    "snapshots": "dataset snapshots written by a mutation log",
}

_GAUGE_HELP = {
    "snapshot_bytes": "size in bytes of the most recent WAL snapshot",
    "last_version": "highest graph_version recorded in a WAL",
    "replica_lag":
        "versions the slowest caught-up read replica trails the "
        "version authority",
}


class WalError(ValueError):
    """Base class for write-ahead-log errors (a :class:`ValueError`)."""


class TruncatedRecordError(WalError):
    """The buffer ends before the record does (a torn tail)."""


class CorruptRecordError(WalError):
    """The record envelope or body is structurally invalid (CRC lie,
    bad magic, impossible version stamp)."""


class RecordTooLargeError(WalError):
    """The record's length prefix exceeds :data:`MAX_RECORD_BYTES`."""


def encode_record(version: int, payload: bytes) -> bytes:
    """Frame one delta payload as a WAL record.

    The body is ``version`` as a big-endian u64 followed by the raw
    :meth:`~repro.stream.GraphDelta.to_payload` bytes; the envelope is
    :data:`WAL_MAGIC`, the body length, and the body's CRC32.  The
    encoding is fully deterministic — the recovery gate compares
    replayed state bitwise against an uninterrupted run.
    """
    version = int(version)
    if version < 1:
        raise ValueError(f"record version must be >= 1, got {version}")
    body = struct.pack(">Q", version) + bytes(payload)
    if len(body) > MAX_RECORD_BYTES:
        raise RecordTooLargeError(
            f"record body of {len(body)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte bound")
    return (WAL_MAGIC
            + struct.pack(">II", len(body), zlib.crc32(body) & 0xFFFFFFFF)
            + body)


def decode_record(buf, offset: int = 0) -> tuple:
    """Decode one record at ``offset``; ``(version, payload, end)``.

    ``end`` is the offset of the byte after the record.  Raises
    :class:`TruncatedRecordError` when the buffer ends mid-record (the
    torn-tail case the owner truncates on open),
    :class:`CorruptRecordError` on bad magic, a CRC mismatch or an
    impossible version stamp, and :class:`RecordTooLargeError` on a
    length prefix beyond :data:`MAX_RECORD_BYTES` — never any other
    exception type, and never a partially-decoded result.
    """
    view = memoryview(buf)
    n = len(view)
    if n - offset < RECORD_HEADER_SIZE:
        raise TruncatedRecordError(
            f"need {RECORD_HEADER_SIZE} header bytes at offset {offset}, "
            f"have {n - offset}")
    if bytes(view[offset:offset + 4]) != WAL_MAGIC:
        raise CorruptRecordError(
            f"bad record magic at offset {offset}: "
            f"{bytes(view[offset:offset + 4])!r}")
    body_len, crc = struct.unpack_from(">II", view, offset + 4)
    if body_len > MAX_RECORD_BYTES:
        raise RecordTooLargeError(
            f"record at offset {offset} declares {body_len} body bytes, "
            f"bounded at {MAX_RECORD_BYTES}")
    if body_len < 8:
        raise CorruptRecordError(
            f"record at offset {offset} declares {body_len} body bytes — "
            f"shorter than its version stamp")
    end = offset + RECORD_HEADER_SIZE + body_len
    if end > n:
        raise TruncatedRecordError(
            f"record at offset {offset} needs {end - n} more bytes")
    body = bytes(view[offset + RECORD_HEADER_SIZE:end])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CorruptRecordError(
            f"CRC mismatch for record at offset {offset}")
    version = struct.unpack_from(">Q", body)[0]
    if version < 1:
        raise CorruptRecordError(
            f"record at offset {offset} carries version {version} "
            f"(must be >= 1)")
    return int(version), body[8:], end


class MutationLog:
    """An append-only, CRC-framed log of :class:`~repro.stream.GraphDelta`\\ s.

    ``path`` is a directory owning the log file (``log.bin``) and its
    snapshots (``snapshots/v<version>/``, each a complete
    :mod:`repro.store` directory).  ``mode="a"`` (the default) opens as
    the **owner**: the file is scanned, a torn final record — the
    signature of a crash mid-append — is truncated away, and
    :meth:`append` is available.  ``mode="r"`` opens as a **follower**
    (a read replica tailing someone else's log): nothing is ever
    written or truncated, a missing file reads as empty, and
    :meth:`tail` returns records appended since the previous call.

    ``snapshot_every`` sets the snapshot cadence for
    :meth:`maybe_snapshot` (0 disables automatic snapshots).  Appends
    are write-ahead durable: each record is flushed and fsynced before
    :meth:`append` returns.

    ``prime`` applies only to followers: by default the cursor is
    primed to the current end of the log, so :meth:`tail` reports only
    records appended *after* open (a lag observer).  ``prime=False``
    leaves the cursor at byte 0 — the first :meth:`tail` returns the
    entire existing backlog, which is what a read replica that must
    *apply* history (not just watch it grow) needs at boot.
    """

    def __init__(self, path: str | os.PathLike, *,
                 snapshot_every: int = 0, mode: str = "a",
                 prime: bool = True):
        if mode not in ("a", "r"):
            raise ValueError(f"mode must be 'a' or 'r', got {mode!r}")
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}")
        self.path = os.fspath(path)
        self.mode = mode
        self.snapshot_every = int(snapshot_every)
        self.log_file = os.path.join(self.path, _LOG_NAME)
        self.snapshot_path = os.path.join(self.path, _SNAPSHOT_DIR)
        #: Highest record version seen (0 = empty log).
        self.last_version = 0
        #: Records decoded from (owner) or appended to this log.
        self.record_count = 0
        #: Bytes removed by torn-tail truncation at open (owner mode).
        self.truncated_tail_bytes = 0
        self._records_since_snapshot = 0
        self._cursor = 0  # scan frontier for follower tail()
        self._fh = None
        registry = get_registry()
        self._obs_counters = {
            name: registry.counter(f"repro_wal_{name}_total", help_)
            for name, help_ in _COUNTER_HELP.items()}
        self._obs_gauges = {
            name: registry.gauge(f"repro_wal_{name}", help_)
            for name, help_ in _GAUGE_HELP.items()}
        if mode == "a":
            os.makedirs(self.path, exist_ok=True)
            self._open_owner()
        elif prime:
            self.tail()  # prime cursor/last_version from what exists

    # -- open / scan ------------------------------------------------------- #
    def _open_owner(self) -> None:
        """Scan the log, truncate a torn tail, open for appending."""
        if os.path.exists(self.log_file):
            with open(self.log_file, "rb") as f:
                buf = f.read()
            offset = 0
            while offset < len(buf):
                try:
                    version, _, offset = decode_record(buf, offset)
                except TruncatedRecordError:
                    # crash mid-append: drop the torn tail, keep the
                    # committed prefix
                    self.truncated_tail_bytes = len(buf) - offset
                    with open(self.log_file, "r+b") as f:
                        f.truncate(offset)
                        f.flush()
                        os.fsync(f.fileno())
                    self._obs_counters["truncated"].inc()
                    break
                self.last_version = version
                self.record_count += 1
            self._cursor = offset if offset <= len(buf) else len(buf)
        self._fh = open(self.log_file, "ab")
        if self.last_version:
            self._obs_gauges["last_version"].set(self.last_version)

    def close(self) -> None:
        """Close the owner's append handle (idempotent; follower no-op)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "MutationLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ----------------------------------------------------------- #
    def records(self, after_version: int = 0) -> list:
        """All committed records, as ``(version, GraphDelta)`` pairs.

        Rescans the file from the start; records at or below
        ``after_version`` are filtered out.  A torn tail (possible only
        while another process is mid-append) ends the scan cleanly; a
        CRC or structural error raises — committed history is never
        silently skipped.
        """
        out = []
        try:
            with open(self.log_file, "rb") as f:
                buf = f.read()
        except FileNotFoundError:
            return out
        offset = 0
        while offset < len(buf):
            try:
                version, payload, offset = decode_record(buf, offset)
            except TruncatedRecordError:
                break
            if version > after_version:
                out.append((version, GraphDelta.from_payload(payload)))
        return out

    def tail(self) -> list:
        """Records appended since the previous :meth:`tail` call.

        The follower's polling primitive: reads from the saved byte
        cursor, stops (without advancing past it) at a torn tail so a
        record being written right now is picked up whole on the next
        call.  Returns ``(version, GraphDelta)`` pairs and advances
        :attr:`last_version`.
        """
        out = []
        try:
            with open(self.log_file, "rb") as f:
                f.seek(self._cursor)
                buf = f.read()
        except FileNotFoundError:
            return out
        offset = 0
        while offset < len(buf):
            try:
                version, payload, end = decode_record(buf, offset)
            except TruncatedRecordError:
                break
            out.append((version, GraphDelta.from_payload(payload)))
            offset = end
        self._cursor += offset
        if out:
            self.last_version = out[-1][0]
            self.record_count += len(out)
        return out

    # -- writing ----------------------------------------------------------- #
    def append(self, delta, version: int) -> int:
        """Durably append one delta producing ``version``; returns bytes.

        Write-ahead contract: call this *before* applying the delta.
        The record is flushed and fsynced before returning, so an
        acknowledged append survives any crash.  Versions must be
        contiguous (``last_version + 1``) once the log is non-empty —
        a gap would make replay ambiguous — and the first record may
        start above 1 (a log attached to a store whose persisted
        ``graph_version`` is already N starts at N+1).
        """
        if self.mode != "a":
            raise WalError("cannot append to a follower (mode='r') log")
        version = int(version)
        if version < 1:
            raise WalError(f"version must be >= 1, got {version}")
        if self.record_count and version != self.last_version + 1:
            raise WalError(
                f"non-contiguous append: log is at version "
                f"{self.last_version}, got {version}")
        buf = encode_record(version, delta.to_payload())
        t0 = _now()
        self._fh.write(buf)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        t1 = _now()
        self.last_version = version
        self.record_count += 1
        self._records_since_snapshot += 1
        self._obs_counters["appends"].inc()
        self._obs_counters["append_bytes"].inc(len(buf))
        self._obs_gauges["last_version"].set(version)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("wal_append", t0, t1,
                          attrs={"version": version, "bytes": len(buf)})
        return len(buf)

    # -- replay ------------------------------------------------------------ #
    def replay(self, dataset, through: int | None = None) -> int:
        """Apply every record newer than the dataset's version; count.

        The recovery half of the write-ahead contract: records at or
        below the dataset's current ``graph_version`` are skipped
        (exactly-once — node additions are not idempotent), a version
        gap raises :class:`WalError` instead of applying out of order,
        and ``through`` optionally stops replay at a version bound
        (point-in-time recovery).  Datasets with their own attached log
        (:meth:`repro.store.StoredNodeDataset.attach_wal`) are guarded
        against re-appending what is being replayed.
        """
        from .apply import apply_delta as _apply

        t0 = _now()
        applied = skipped = 0
        dataset._wal_replaying = True
        try:
            for version, delta in self.records():
                if through is not None and version > through:
                    break
                current = int(getattr(dataset, "graph_version", 0))
                if version <= current:
                    skipped += 1
                    continue
                if version != current + 1:
                    raise WalError(
                        f"replay gap: dataset at version {current}, next "
                        f"log record is {version}")
                _apply(dataset, delta)
                if int(dataset.graph_version) != version:
                    # datasets that count their own versions stay
                    # aligned with the log's authority
                    dataset.graph_version = version
                applied += 1
        finally:
            dataset._wal_replaying = False
        t1 = _now()
        if applied:
            self._obs_counters["replayed"].inc(applied)
        if skipped:
            self._obs_counters["replay_skipped"].inc(skipped)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record("wal_replay", t0, t1,
                          attrs={"applied": applied, "skipped": skipped})
        return applied

    # -- snapshots ---------------------------------------------------------- #
    def snapshot(self, dataset) -> str:
        """Persist the dataset as a :mod:`repro.store` snapshot; its path.

        The snapshot lands under ``snapshots/v<version>/`` keyed by the
        dataset's current ``graph_version`` and is a complete store
        directory — :func:`repro.store.open_store` opens it directly,
        and recovery is "open latest snapshot, replay newer records".
        The manifest commit is atomic, so a crash mid-snapshot leaves
        no half-readable snapshot behind.
        """
        from ..store import write_store

        if self.mode != "a":
            raise WalError("a follower (mode='r') log cannot snapshot")
        version = int(getattr(dataset, "graph_version", 0))
        out = os.path.join(self.snapshot_path, f"v{version:010d}")
        write_store(out, dataset)
        size = 0
        for root, _, files in os.walk(out):
            for name in files:
                size += os.path.getsize(os.path.join(root, name))
        self._records_since_snapshot = 0
        self._obs_counters["snapshots"].inc()
        self._obs_gauges["snapshot_bytes"].set(size)
        return out

    def maybe_snapshot(self, dataset, force: bool = False) -> str | None:
        """Snapshot when the cadence is due (or ``force``); path or None.

        The cadence counts appends since the last snapshot against
        ``snapshot_every``; with ``snapshot_every=0`` only ``force``
        snapshots.
        """
        if force or (self.snapshot_every > 0
                     and self._records_since_snapshot >= self.snapshot_every):
            return self.snapshot(dataset)
        return None

    def latest_snapshot(self) -> tuple | None:
        """``(version, path)`` of the newest committed snapshot, or None.

        Only snapshots whose manifest committed count — a directory
        left by a crash mid-snapshot is ignored.
        """
        try:
            names = os.listdir(self.snapshot_path)
        except FileNotFoundError:
            return None
        best = None
        for name in names:
            if not (name.startswith("v") and name[1:].isdigit()):
                continue
            path = os.path.join(self.snapshot_path, name)
            if not os.path.isfile(os.path.join(path, "manifest.json")):
                continue
            version = int(name[1:])
            if best is None or version > best[0]:
                best = (version, path)
        return best

    def recover(self, base=None, cache_bytes: int | None = None):
        """Dataset at the log's last acknowledged version.

        With no ``base``, the latest snapshot is opened read-only via
        :func:`repro.store.open_store` (``cache_bytes`` budgets its
        chunk cache) and newer records replay onto it as an in-RAM
        overlay; passing ``base`` replays onto an already-loaded
        dataset instead (the no-snapshot-yet case).  Returns the
        recovered dataset.
        """
        if base is None:
            snap = self.latest_snapshot()
            if snap is None:
                raise WalError(
                    f"log at {self.path} has no snapshot to recover from "
                    f"and no base dataset was given")
            from ..store import open_store

            base = (open_store(snap[1]) if cache_bytes is None
                    else open_store(snap[1], cache_bytes=cache_bytes))
        self.replay(base)
        return base

    def __repr__(self) -> str:
        return (f"MutationLog({self.path!r}, mode={self.mode!r}, "
                f"records={self.record_count}, "
                f"last_version={self.last_version})")


def log_apply(log: MutationLog, dataset, delta) -> "DeltaReport":
    """The unified mutation pipeline: append, apply, maybe snapshot.

    Every tier that owns both a log and a dataset funnels through this
    helper: the delta is durably appended (producing
    ``graph_version + 1``) *before* :func:`repro.stream.apply_delta`
    runs, and the log's snapshot cadence fires afterwards.  A dataset
    whose *own* attached log is ``log``
    (:meth:`repro.store.StoredNodeDataset.attach_wal`) handles the
    append internally and is dispatched straight to apply — attaching
    the same log at two tiers never double-logs a delta.
    """
    from .apply import apply_delta as _apply

    if getattr(dataset, "wal", None) is log:
        return _apply(dataset, delta)
    version = int(getattr(dataset, "graph_version", 0)) + 1
    log.append(delta, version)
    report = _apply(dataset, delta)
    if int(report.graph_version) != version:
        raise WalError(
            f"apply produced version {report.graph_version}, "
            f"log recorded {version}")
    log.maybe_snapshot(dataset)
    return report
