"""TorchGT reproduction — a holistic system for large-scale graph
transformer training (SC 2024), rebuilt from scratch in numpy.

Subpackages
-----------
``repro.tensor``
    Numpy autograd substrate (Tensor, nn modules, optimizers, bf16 sim).
``repro.graph``
    CSR graphs, synthetic dataset stand-ins, structural algorithms.
``repro.partition``
    METIS-substitute multilevel partitioner + cluster reordering.
``repro.attention``
    Dense / flash / topology-sparse / cluster-sparse attention kernels.
``repro.hardware``
    Analytic GPU model (3090, A100): roofline pricing, caches, OOM.
``repro.distributed``
    Simulated collectives and Cluster-aware Graph Parallelism.
``repro.models``
    Graphormer (slim/large), GT, plus GCN/GAT baselines.
``repro.core``
    The paper's contribution: Dual-interleaved Attention, Elastic
    Computation Reformation, Auto Tuner, and the training engines
    (TorchGT vs GP-Raw / GP-Flash / GP-Sparse).
``repro.train``
    Engine-agnostic training loops, callbacks and metrics.
``repro.api``
    The public facade: typed ``RunConfig`` + ``Session`` lifecycle
    (fit / evaluate / predict / save_config).
``repro.serve``
    Batched inference serving: request queue with futures/deadlines,
    dynamic micro-batching, warm ``SessionPool``, seeded load generator.
``repro.stream``
    Streaming graph updates: ``GraphDelta``, incremental CSR apply,
    dataset versioning, online mutation through the serving tier.
``repro.bench``
    Table/figure harness used by the ``benchmarks/`` suite.
"""

__version__ = "1.1.0"

from . import api, attention, core, distributed, graph, hardware, models, partition, serve, stream, tensor, train
from .api import DataConfig, EngineConfig, ModelConfig, RunConfig, Session, TrainConfig

__all__ = [
    "tensor",
    "graph",
    "partition",
    "attention",
    "hardware",
    "distributed",
    "models",
    "core",
    "train",
    "api",
    "serve",
    "stream",
    "DataConfig",
    "ModelConfig",
    "EngineConfig",
    "TrainConfig",
    "RunConfig",
    "Session",
    "__version__",
]
