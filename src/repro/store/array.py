"""Lazy node-chunked array views over store chunk files.

:class:`ChunkedRowArray` is the drop-in stand-in for the in-RAM numpy
arrays a :class:`~repro.graph.NodeDataset` carries: it exposes
``shape`` / ``dtype`` / ``len`` and row-oriented ``__getitem__`` (ints,
slices, integer arrays, boolean masks — everything ``Session``, the
trainers and the serve tiers actually do with ``dataset.features``),
materializing only the rows asked for.  Chunk loads are read-only
:func:`numpy.memmap` views (the OS pages bytes in lazily; writing
through one raises), routed through the dataset's shared
:class:`~repro.store.ChunkCache` and pinned for the duration of each
gather.

A read-only store that receives a :class:`~repro.stream.GraphDelta`
mutates through the **overlay**: in-place row updates become patch rows
and appended nodes become a tail block, both held in RAM and composed
over the immutable chunk files at read time.  Writable stores rewrite
the touched chunk files instead and never grow an overlay.
"""

from __future__ import annotations

import os
from contextlib import nullcontext

import numpy as np

from ..obs.trace import get_tracer

__all__ = ["ChunkedRowArray"]


class ChunkedRowArray:
    """A row-chunked, mmap-backed, cache-fronted read-only array.

    Direct writes raise — mutation goes through
    :meth:`~repro.store.StoredNodeDataset.apply_delta`, which either
    rewrites chunk files (writable stores) or installs overlay rows
    here via :meth:`apply_updates` / :meth:`append_rows`.
    """

    def __init__(self, store_dir: str, name: str, spec, cache,
                 row_bounds: np.ndarray):
        self._dir = os.fspath(store_dir)
        self._name = name
        self._spec = spec
        self._cache = cache
        self._bounds = np.asarray(row_bounds, dtype=np.int64)
        self._dtype = np.dtype(spec.dtype)
        self._base_rows = int(spec.shape[0])
        self._tail = np.empty((0,) + tuple(spec.shape[1:]), dtype=self._dtype)
        self._patch_rows = np.empty(0, dtype=np.int64)   # sorted, unique
        self._patch_vals = np.empty((0,) + tuple(spec.shape[1:]),
                                    dtype=self._dtype)

    # -- array surface ------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        """Logical shape: persisted rows plus any overlay tail."""
        return (self._base_rows + len(self._tail),) + tuple(
            self._spec.shape[1:])

    @property
    def dtype(self) -> np.dtype:
        """The element dtype (native-order view of the stored dtype)."""
        return self._dtype

    @property
    def ndim(self) -> int:
        """Number of dimensions (rows first)."""
        return len(self._spec.shape)

    @property
    def nbytes(self) -> int:
        """Logical byte count of the full array (not resident bytes)."""
        n = 1
        for d in self.shape:
            n *= d
        return n * self._dtype.itemsize

    def __len__(self) -> int:
        return self.shape[0]

    def __array__(self, dtype=None, copy=None):
        """Materialize every row (what ``np.asarray(features)`` hits)."""
        out = self._gather(np.arange(self.shape[0], dtype=np.int64))
        return out if dtype is None else out.astype(dtype)

    def __getitem__(self, key) -> np.ndarray:
        """Row-oriented indexing; always returns a materialized ndarray."""
        if isinstance(key, tuple):
            rows = self[key[0]]
            return rows[(slice(None),) + key[1:]] if len(key) > 1 else rows
        n = self.shape[0]
        if isinstance(key, (int, np.integer)):
            i = int(key)
            if i < 0:
                i += n
            if not 0 <= i < n:
                raise IndexError(
                    f"row {key} out of range for {n}-row array")
            return self._gather(np.array([i], dtype=np.int64))[0]
        if isinstance(key, slice):
            return self._gather(np.arange(n, dtype=np.int64)[key])
        rows = np.asarray(key)
        if rows.dtype == bool:
            if rows.shape != (n,):
                raise IndexError(
                    f"boolean mask of shape {rows.shape} does not match "
                    f"{n}-row array")
            rows = np.nonzero(rows)[0]
        rows = rows.astype(np.int64, copy=False)
        if rows.ndim != 1:
            raise IndexError("row indices must be one-dimensional")
        neg = rows < 0
        if neg.any():
            rows = np.where(neg, rows + n, rows)
        if len(rows) and (rows.min() < 0 or rows.max() >= n):
            raise IndexError(f"row index out of range for {n}-row array")
        return self._gather(rows)

    def __setitem__(self, key, value):
        """Refused: the chunk files are immutable through this view."""
        raise TypeError(
            f"store-backed array {self._name!r} is read-only; apply a "
            "GraphDelta through the dataset "
            "(StoredNodeDataset.apply_delta) instead")

    # -- chunk plumbing ----------------------------------------------------- #
    def _chunk_key(self, i: int) -> tuple:
        return (self._name, int(i))

    def _load_chunk(self, i: int) -> np.ndarray:
        ref = self._spec.chunks[i]
        path = os.path.join(self._dir, ref.file)
        try:
            return np.memmap(path, dtype=np.dtype(self._spec.dtype),
                             mode="r", shape=tuple(ref.shape))
        except (FileNotFoundError, ValueError) as exc:
            raise ValueError(
                f"store chunk {ref.file} for array {self._name!r} is "
                f"missing or truncated: {exc}") from exc

    def chunk(self, i: int) -> np.ndarray:
        """The ``i``-th chunk as a read-only mmap view (cache-fronted)."""
        return self._cache.get(self._chunk_key(i),
                               lambda: self._load_chunk(i))

    def _gather(self, rows: np.ndarray) -> np.ndarray:
        """Copy the requested rows out of chunks, tail and patches."""
        out = np.empty((len(rows),) + tuple(self._spec.shape[1:]),
                       dtype=self._dtype)
        if not len(rows):
            return out
        base = rows < self._base_rows
        base_rows = rows[base]
        if len(base_rows):
            cidx = np.searchsorted(self._bounds, base_rows,
                                   side="right") - 1
            chunks = np.unique(cidx)
            base_pos = np.nonzero(base)[0]
            tracer = get_tracer()
            # a chunk_fetch span only when a request's ambient trace
            # context is active — idle scans don't mint orphan traces
            span = (tracer.span("chunk_fetch",
                                attrs={"array": self._name,
                                       "chunks": int(len(chunks)),
                                       "rows": int(len(base_rows))})
                    if tracer.enabled and tracer.current() is not None
                    else nullcontext())
            # pin every chunk this gather reads so the copy loop cannot
            # have its own working set evicted under it by a tight budget
            with self._cache.pinned(
                    self._chunk_key(c) for c in chunks), span:
                for c in chunks:
                    sel = cidx == c
                    data = self.chunk(int(c))
                    out[base_pos[sel]] = data[base_rows[sel]
                                              - self._bounds[c]]
        if len(self._tail):
            tail_pos = np.nonzero(~base)[0]
            if len(tail_pos):
                out[tail_pos] = self._tail[rows[tail_pos] - self._base_rows]
        if len(self._patch_rows):
            patched = np.isin(rows, self._patch_rows)
            if patched.any():
                pi = np.searchsorted(self._patch_rows, rows[patched])
                out[patched] = self._patch_vals[pi]
        return out

    # -- overlay (read-only stores receiving deltas) ------------------------ #
    def apply_updates(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Overlay in-place row updates (later updates win per row).

        Rows landing in the overlay tail are written into the tail
        directly; rows over chunk files become patch entries.
        """
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values, dtype=self._dtype)
        in_tail = rows >= self._base_rows
        if in_tail.any():
            self._tail[rows[in_tail] - self._base_rows] = values[in_tail]
        rows, values = rows[~in_tail], values[~in_tail]
        if not len(rows):
            return
        # last write wins within one call, then merge over prior patches
        order = np.argsort(rows, kind="stable")
        rows, values = rows[order], values[order]
        keep = np.concatenate([rows[1:] != rows[:-1], [True]])
        rows, values = rows[keep], values[keep]
        old_keep = ~np.isin(self._patch_rows, rows)
        all_rows = np.concatenate([self._patch_rows[old_keep], rows])
        all_vals = np.concatenate([self._patch_vals[old_keep], values])
        order = np.argsort(all_rows)
        self._patch_rows = all_rows[order]
        self._patch_vals = all_vals[order]

    def append_rows(self, values: np.ndarray) -> None:
        """Overlay appended rows (fresh nodes) after the persisted rows."""
        values = np.asarray(values, dtype=self._dtype)
        self._tail = np.concatenate([self._tail, values])

    @property
    def overlay_rows(self) -> int:
        """Patched + appended rows currently held in RAM (observability)."""
        return len(self._patch_rows) + len(self._tail)

    def __repr__(self) -> str:
        return (f"ChunkedRowArray({self._name!r}, shape={self.shape}, "
                f"dtype={self._dtype}, chunks={len(self._spec.chunks)}, "
                f"overlay_rows={self.overlay_rows})")
