"""The store-backed dataset: ``NodeDataset``'s surface over chunk files.

:class:`StoredNodeDataset` opens a ``repro-store-v1`` directory and
exposes exactly what :class:`~repro.graph.NodeDataset` exposes — name,
graph, features, labels, splits, blocks, ``num_nodes``,
``graph_version`` — so :class:`~repro.api.Session`, the serve tiers and
the trainers run unchanged and produce **bitwise-identical** logits.
Features stay on disk behind a :class:`~repro.store.ChunkedRowArray`
(mmap chunk loads through the store's byte-budgeted
:class:`~repro.store.ChunkCache`); the small per-node arrays (labels,
split masks, blocks) and the CSR graph are materialized on first access
— features dominate dataset bytes, and the engines need the whole
topology anyway.

Streaming composes: :func:`repro.stream.apply_delta` dispatches to
:meth:`StoredNodeDataset.apply_delta`, which routes topology through
the incremental CSR rebuild and then either **rewrites only the chunks
the delta's rows intersect** (``mode="r+"``, with a manifest
``graph_version`` bump — reopening the store resumes the mutation
history) or holds the changes as an in-RAM overlay (``mode="r"``, the
cluster-worker case where the shared store on disk must stay pristine).

With a :class:`~repro.stream.MutationLog` attached
(:meth:`StoredNodeDataset.attach_wal`), chunk rewrites stop being an
independent persistence path and become **log-driven checkpoints**:
every delta is appended to the WAL first, applied as an overlay, and
the touched chunks are rewritten in batches at the checkpoint cadence.
A crash between checkpoints loses nothing — the manifest's
``graph_version`` says where the chunk files stand and
:meth:`~repro.stream.MutationLog.replay` carries the store forward
from exactly there.
"""

from __future__ import annotations

import os

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.datasets import PaperStats
from ..stream.apply import DeltaReport
from .array import ChunkedRowArray
from .chunks import DEFAULT_CACHE_BYTES, ChunkCache
from .format import Manifest, load_manifest
from .writer import rewrite_store_delta

__all__ = ["StoredNodeDataset", "open_store"]


class StoredNodeDataset:
    """A node-level dataset served out of a chunked on-disk store.

    ``mode="r"`` (default) never writes: deltas applied to it live in
    an in-RAM overlay and die with the process.  ``mode="r+"`` persists
    deltas by rewriting exactly the touched chunks and committing a
    version-bumped manifest.  With a WAL attached
    (:meth:`attach_wal`), writable stores switch to
    append-then-overlay with batched chunk rewrites at checkpoints.
    """

    def __init__(self, path: str | os.PathLike,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 mode: str = "r"):
        if mode not in ("r", "r+"):
            raise ValueError(f"mode must be 'r' or 'r+', got {mode!r}")
        self.path = os.fspath(path)
        self.mode = mode
        self.cache = ChunkCache(cache_bytes)
        self._install_manifest(load_manifest(self.path))
        self.graph_version = self._manifest.graph_version
        self.paper = (PaperStats(**self._manifest.paper)
                      if self._manifest.paper else None)
        self._num_nodes = self._manifest.num_nodes
        self._graph: CSRGraph | None = None
        self._small: dict[str, np.ndarray | None] = {}
        self.wal = None
        self._wal_replaying = False
        self._wal_checkpoint_every = 0
        self._wal_pending: list = []

    def _install_manifest(self, manifest: Manifest) -> None:
        """(Re)build the lazy views from a manifest (open, post-delta)."""
        self._manifest = manifest
        self.name = manifest.name
        self.num_classes = manifest.num_classes
        bounds = np.asarray(manifest.row_bounds, dtype=np.int64)
        self.features = ChunkedRowArray(self.path, "features",
                                        manifest.arrays["features"],
                                        self.cache, bounds)

    # -- NodeDataset surface ---------------------------------------------- #
    @property
    def num_nodes(self) -> int:
        """Current node count (persisted rows plus overlay appends)."""
        return self._num_nodes

    @property
    def graph(self) -> CSRGraph:
        """The CSR topology, assembled from chunks on first access."""
        if self._graph is None:
            degrees = self._read_small_raw("graph_degrees")
            indptr = np.concatenate(
                [[0], np.cumsum(degrees)]).astype(np.int64)
            spec = self._manifest.arrays["graph_indices"]
            indices = np.concatenate(
                [np.array(self._chunk("graph_indices", i))
                 for i in range(len(spec.chunks))]
            ) if spec.chunks else np.empty(0, dtype=np.int64)
            from ..graph.io import validate_csr

            validate_csr(indptr, indices, self._manifest.num_nodes,
                         where=f"store {self.path}")
            self._graph = CSRGraph(indptr, indices,
                                   self._manifest.num_nodes)
        return self._graph

    @graph.setter
    def graph(self, value: CSRGraph) -> None:
        """Installed by delta application (parity with ``NodeDataset``)."""
        self._graph = value
        self._num_nodes = value.num_nodes

    @property
    def labels(self) -> np.ndarray:
        """Per-node class labels (materialized on first access)."""
        return self._small_array("labels")

    @labels.setter
    def labels(self, value: np.ndarray) -> None:
        self._small["labels"] = value

    @property
    def train_mask(self) -> np.ndarray:
        """Training-split boolean mask."""
        return self._small_array("train_mask")

    @train_mask.setter
    def train_mask(self, value: np.ndarray) -> None:
        self._small["train_mask"] = value

    @property
    def val_mask(self) -> np.ndarray:
        """Validation-split boolean mask."""
        return self._small_array("val_mask")

    @val_mask.setter
    def val_mask(self, value: np.ndarray) -> None:
        self._small["val_mask"] = value

    @property
    def test_mask(self) -> np.ndarray:
        """Test-split boolean mask."""
        return self._small_array("test_mask")

    @test_mask.setter
    def test_mask(self, value: np.ndarray) -> None:
        self._small["test_mask"] = value

    @property
    def blocks(self) -> np.ndarray | None:
        """Planted community labels, when the source dataset had them."""
        if "blocks" not in self._manifest.arrays \
                and "blocks" not in self._small:
            return None
        return self._small_array("blocks")

    @blocks.setter
    def blocks(self, value: np.ndarray | None) -> None:
        self._small["blocks"] = value

    # -- chunk plumbing ----------------------------------------------------- #
    def _chunk(self, name: str, i: int) -> np.ndarray:
        spec = self._manifest.arrays[name]
        ref = spec.chunks[i]
        path = os.path.join(self.path, ref.file)

        def load():
            try:
                return np.memmap(path, dtype=np.dtype(spec.dtype),
                                 mode="r", shape=tuple(ref.shape))
            except (FileNotFoundError, ValueError) as exc:
                raise ValueError(
                    f"store chunk {ref.file} for array {name!r} is "
                    f"missing or truncated: {exc}") from exc

        return self.cache.get((name, i), load)

    def _read_small_raw(self, name: str) -> np.ndarray:
        """Materialize one small array wholesale (bypassing the budget
        accounting would be wrong — reads go through the cache too)."""
        spec = self._manifest.arrays[name]
        parts = [np.array(self._chunk(name, i))
                 for i in range(len(spec.chunks))]
        return (np.concatenate(parts) if parts
                else np.empty(spec.shape, dtype=np.dtype(spec.dtype)))

    def _small_array(self, name: str) -> np.ndarray:
        arr = self._small.get(name)
        if arr is None:
            arr = self._read_small_raw(name)
            self._small[name] = arr
        return arr

    # -- identity ----------------------------------------------------------- #
    @property
    def content_fingerprint(self) -> str:
        """SHA-256 of the canonical manifest: the store's content id.

        Two opens of the same (byte-identical) store share it, so the
        serving caches keyed through
        :func:`repro.graph.dataset_fingerprint` coalesce across
        handles; every persisted delta changes it.
        """
        return self._manifest.fingerprint()

    @property
    def manifest(self) -> Manifest:
        """The live manifest (what ``repro inspect`` renders)."""
        return self._manifest

    def cache_stats(self) -> dict:
        """Chunk-cache hit/miss/eviction counters and occupancy.

        A view over :meth:`~repro.store.ChunkCache.stats`; the same
        counts stream into the ``repro_store_chunk_*`` metrics of the
        process-global registry as they happen.
        """
        return self.cache.stats()

    @property
    def feature_bytes(self) -> int:
        """Total persisted feature bytes (the cache-budget yardstick)."""
        return sum(c.nbytes
                   for c in self._manifest.arrays["features"].chunks)

    # -- streaming ----------------------------------------------------------- #
    def apply_delta(self, delta) -> DeltaReport:
        """Apply a :class:`~repro.stream.GraphDelta` through the store.

        Topology goes through the incremental
        :meth:`~repro.graph.CSRGraph.apply_edge_delta` (bitwise-equal
        to a rebuild).  On a writable store the touched chunks are
        rewritten and the manifest committed with a bumped
        ``graph_version``; on a read-only store the same changes are
        held as an in-RAM overlay (patch rows + appended tail) and the
        files stay untouched.  :func:`repro.stream.apply_delta`
        dispatches here, so sessions and servers need no special case.

        With a WAL attached the delta is appended to the log *first*
        (write-ahead), applied as an overlay, and buffered for the
        next :meth:`checkpoint`; chunk rewrites happen only there.
        """
        delta.validate(self)
        if self.wal is not None and not self._wal_replaying:
            self.wal.append(delta, int(self.graph_version) + 1)
        graph, touched = self.graph.apply_edge_delta(
            delta.add_edges, delta.remove_edges,
            num_new_nodes=delta.num_new_nodes)
        k = delta.num_new_nodes
        if k:
            labels = (delta.new_labels if delta.new_labels is not None
                      else np.zeros(k, dtype=np.int64))
            self.labels = np.concatenate([self.labels, labels])
            pad = np.zeros(k, dtype=bool)
            self.train_mask = np.concatenate([self.train_mask, pad])
            self.val_mask = np.concatenate([self.val_mask, pad])
            self.test_mask = np.concatenate([self.test_mask, pad])
            if self.blocks is not None:
                self.blocks = np.concatenate(
                    [self.blocks, -np.ones(k, dtype=self.blocks.dtype)])
        updated = (0 if delta.update_nodes is None
                   else len(delta.update_nodes))
        if self.mode == "r+" and self.wal is None:
            node_arrays = {"labels": self.labels,
                           "train_mask": self.train_mask,
                           "val_mask": self.val_mask,
                           "test_mask": self.test_mask}
            if self.blocks is not None:
                node_arrays["blocks"] = self.blocks
            manifest, rewritten = rewrite_store_delta(
                self.path, self._manifest, delta, graph, touched,
                node_arrays,
                read_feature_chunk=self.features.chunk)
            for key in rewritten:
                self.cache.evict(key)
            self._install_manifest(manifest)
            self.graph_version = manifest.graph_version
        else:
            if k:
                self.features.append_rows(delta.new_features)
            if delta.update_nodes is not None:
                self.features.apply_updates(delta.update_nodes,
                                            delta.update_features)
            self.graph_version = int(self.graph_version) + 1
            if self.wal is not None:
                self._wal_pending.append((delta, graph, touched))
        self.graph = graph
        report = DeltaReport(
            graph_version=int(self.graph_version),
            touched_rows=touched,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            nodes_added=k,
            features_updated=updated,
        )
        if (self.wal is not None and self._wal_checkpoint_every
                and len(self._wal_pending) >= self._wal_checkpoint_every):
            self.checkpoint()
        return report

    # -- durability ---------------------------------------------------------- #
    def attach_wal(self, log, checkpoint_every: int = 8) -> int:
        """Put a :class:`~repro.stream.MutationLog` in front of this store.

        Requires ``mode="r+"`` (checkpoints rewrite chunk files).
        From here on every delta is appended to ``log`` before it is
        applied, held as an overlay, and persisted in batches: once
        ``checkpoint_every`` deltas accumulate (0 = only on explicit
        :meth:`checkpoint` calls) the touched chunks are rewritten and
        the manifest committed at the log's version.  Any log records
        past the manifest's ``graph_version`` are replayed immediately
        (crash catch-up) and checkpointed; returns the number replayed.
        """
        if self.mode != "r+":
            raise ValueError(
                "attach_wal requires a writable store (mode='r+'); "
                f"this store is mode={self.mode!r}")
        if self.wal is not None:
            raise ValueError("a MutationLog is already attached")
        self.wal = log
        self._wal_checkpoint_every = int(checkpoint_every)
        applied = log.replay(self)
        if self._wal_pending:
            self.checkpoint()
        return applied

    def checkpoint(self) -> int:
        """Persist every pending WAL-logged delta by rewriting chunks.

        Replays the buffered ``(delta, graph, touched)`` triples
        through the same incremental chunk rewrite the non-WAL
        writable path uses, committing one version-bumped manifest per
        delta (each commit is atomic: chunks first, manifest last), so
        a crash mid-checkpoint leaves the store at some intermediate
        ``graph_version`` from which WAL replay resumes.  Afterwards
        the manifest matches the live ``graph_version`` and the
        overlay is empty.  Returns the number of deltas persisted.
        """
        if self.wal is None:
            raise ValueError("no MutationLog attached (see attach_wal)")
        if not self._wal_pending:
            return 0
        manifest = self._manifest
        for delta, graph, touched in self._wal_pending:
            # labels/masks/blocks rows never change after creation, so
            # slicing the final arrays to this step's node count yields
            # exactly the arrays as of that version
            n = graph.num_nodes
            node_arrays = {"labels": self.labels[:n],
                           "train_mask": self.train_mask[:n],
                           "val_mask": self.val_mask[:n],
                           "test_mask": self.test_mask[:n]}
            if self.blocks is not None:
                node_arrays["blocks"] = self.blocks[:n]
            manifest, rewritten = rewrite_store_delta(
                self.path, manifest, delta, graph, touched,
                node_arrays,
                read_feature_chunk=self.features.chunk)
            for key in rewritten:
                self.cache.evict(key)
            self._install_manifest(manifest)
        count = len(self._wal_pending)
        self._wal_pending.clear()
        return count

    def __repr__(self) -> str:
        return (f"StoredNodeDataset({self.name!r}, path={self.path!r}, "
                f"nodes={self.num_nodes}, "
                f"chunks={self._manifest.num_chunks}, mode={self.mode!r}, "
                f"graph_version={self.graph_version})")


def open_store(path: str | os.PathLike,
               cache_bytes: int = DEFAULT_CACHE_BYTES,
               mode: str = "r") -> StoredNodeDataset:
    """Open a store directory as a serve-ready dataset.

    ``cache_bytes`` budgets the chunk cache (see
    :class:`~repro.store.ChunkCache`); ``mode="r+"`` makes
    :meth:`StoredNodeDataset.apply_delta` persist by rewriting touched
    chunks instead of overlaying in RAM.
    """
    return StoredNodeDataset(path, cache_bytes=cache_bytes, mode=mode)
