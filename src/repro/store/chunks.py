"""The tiered LRU chunk cache: byte-budgeted, pinnable, instrumented.

Every chunk a :class:`~repro.store.ChunkedRowArray` reads goes through
one :class:`ChunkCache`.  The cache holds loaded chunks (``mmap``-backed
read-only views) in two tiers:

* the **LRU tier** — plain entries, evicted least-recently-used when the
  cache's total bytes exceed ``budget_bytes``;
* the **pinned tier** — entries with a live pin count, never evicted.
  A gather pins the chunks it is copying from for the duration of the
  copy (see :meth:`pinned`), so an over-budget scan can stream through
  arbitrarily many chunks without ever evicting one mid-read.

The budget is a **soft high-water mark** over logical chunk bytes: the
most recently used entry always survives (evicting what was just loaded
would thrash), and pinned bytes can exceed the budget transiently.
Hits, misses and evictions are counted for observability
(:meth:`stats`), which is what cache-tuning in ``docs/storage.md``
works from.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager

from ..obs import hooks as _hooks
from ..obs.metrics import get_registry

__all__ = ["ChunkCache", "DEFAULT_CACHE_BYTES"]

#: Default chunk-cache byte budget for :func:`repro.store.open_store`.
DEFAULT_CACHE_BYTES = 64 * 2**20


class ChunkCache:
    """Byte-budgeted LRU over loaded chunks, with a pinned tier.

    Keys are caller-chosen hashables (the row arrays use
    ``(array_name, chunk_index)``); values are the loaded numpy views.
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES):
        if budget_bytes < 0:
            raise ValueError(
                f"budget_bytes must be >= 0, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()  # key -> (array, nbytes)
        self._pins: dict = {}                       # key -> pin count
        self._bytes = 0
        registry = get_registry()
        self._obs_hits = registry.counter(
            "repro_store_chunk_hits_total",
            "chunk-cache reads served from a resident chunk")
        self._obs_misses = registry.counter(
            "repro_store_chunk_misses_total",
            "chunk-cache reads that loaded a chunk from disk")
        self._obs_evictions = registry.counter(
            "repro_store_chunk_evictions_total",
            "chunks evicted by the byte-budget LRU")
        # delta-tracked so several caches in one process sum correctly
        self._obs_bytes = registry.gauge(
            "repro_store_cached_bytes",
            "logical bytes currently resident in chunk caches")

    # -- core ------------------------------------------------------------- #
    def get(self, key, loader):
        """The cached chunk for ``key``, loading via ``loader()`` on a miss.

        The entry moves to most-recently-used either way; after a miss
        the LRU tier is trimmed back under the byte budget (pinned
        entries and the entry just loaded are never eviction victims).
        A miss also fires the ``on_chunk_miss`` profiling hook with the
        loaded chunk's size.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._obs_hits.inc()
            self._entries.move_to_end(key)
            return entry[0]
        self.misses += 1
        self._obs_misses.inc()
        array = loader()
        nbytes = int(array.nbytes)
        _hooks.fire("on_chunk_miss", key=key, nbytes=nbytes)
        self._entries[key] = (array, nbytes)
        self._bytes += nbytes
        self._obs_bytes.add(nbytes)
        self._trim(keep=key)
        return array

    def _trim(self, keep=None) -> None:
        """Evict LRU unpinned entries until under budget (best effort)."""
        while self._bytes > self.budget_bytes:
            victim = None
            for key in self._entries:        # oldest first
                if key != keep and not self._pins.get(key):
                    victim = key
                    break
            if victim is None:               # everything left is held
                break
            _, nbytes = self._entries.pop(victim)
            self._bytes -= nbytes
            self._obs_bytes.add(-nbytes)
            self.evictions += 1
            self._obs_evictions.inc()

    def evict(self, key) -> bool:
        """Drop one entry regardless of recency (not counted as an
        eviction — this is invalidation, e.g. after a chunk rewrite);
        pinned entries are left in place.  Returns whether it was
        cached."""
        if self._pins.get(key):
            return False
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._bytes -= entry[1]
        self._obs_bytes.add(-entry[1])
        return True

    def clear(self) -> None:
        """Drop every unpinned entry (counters are kept)."""
        for key in [k for k in self._entries if not self._pins.get(k)]:
            _, nbytes = self._entries.pop(key)
            self._bytes -= nbytes
            self._obs_bytes.add(-nbytes)

    # -- pinning ----------------------------------------------------------- #
    def pin(self, key) -> None:
        """Hold ``key`` in the pinned tier (pins nest; see :meth:`unpin`)."""
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key) -> None:
        """Release one pin; the entry rejoins the LRU tier at zero pins."""
        count = self._pins.get(key, 0)
        if count <= 1:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count - 1

    @contextmanager
    def pinned(self, keys):
        """Context manager pinning ``keys`` for the duration of a read.

        This is what keeps an in-flight gather's chunks resident even
        when the gather itself spans more bytes than the budget.
        """
        keys = list(keys)
        for key in keys:
            self.pin(key)
        try:
            yield self
        finally:
            for key in keys:
                self.unpin(key)

    def is_pinned(self, key) -> bool:
        """Whether ``key`` currently holds at least one pin."""
        return bool(self._pins.get(key))

    # -- introspection ------------------------------------------------------ #
    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        """Total logical bytes of every cached chunk (both tiers)."""
        return self._bytes

    def stats(self) -> dict:
        """Counters + occupancy: the cache-tuning observability surface."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_chunks": len(self._entries),
            "cached_bytes": self._bytes,
            "pinned_chunks": len(self._pins),
            "budget_bytes": self.budget_bytes,
        }

    def __repr__(self) -> str:
        return (f"ChunkCache(chunks={len(self._entries)}, "
                f"bytes={self._bytes}/{self.budget_bytes}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")
