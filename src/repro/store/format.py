"""The ``repro-store-v1`` on-disk format: manifest + raw chunk files.

A store directory holds one JSON **manifest** (``manifest.json``) and a
``chunks/`` directory of raw binary chunk files::

    mystore/
      manifest.json
      chunks/
        features-000000.bin
        features-000001.bin
        labels-000000.bin
        graph_indices-000000.bin
        ...

Every persisted array is split into chunks along the **node axis** at a
single shared set of row boundaries (``Manifest.row_bounds``), so chunk
``i`` of every array covers the same node span — the property that lets a
:class:`~repro.stream.GraphDelta` rewrite exactly the chunks whose rows
it intersects.  Chunk files are raw C-contiguous little-endian bytes
(``numpy`` ``tobytes``), which is what makes ``mmap`` loads possible:
:func:`numpy.memmap` can view a chunk file directly with no parsing.

The CSR graph is stored as two node-chunked arrays: ``graph_degrees``
(per-node degree, from which ``indptr`` is a cumulative sum) and
``graph_indices`` (the adjacency entries of each node block, one
variable-length chunk per block).

The manifest is canonically serialized (sorted keys, no whitespace), so
its SHA-256 — :meth:`Manifest.fingerprint` — is a stable content
identity for the whole store: it covers every chunk's byte count, the
row boundaries and the ``graph_version``, and is what
:func:`repro.graph.dataset_fingerprint` keys serving caches on.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "STORE_FORMAT",
    "DEFAULT_CHUNK_ROWS",
    "ChunkRef",
    "ArraySpec",
    "Manifest",
    "load_manifest",
    "write_manifest",
]

STORE_FORMAT = "repro-store-v1"

#: Default node rows per chunk for :func:`repro.store.write_store`.
DEFAULT_CHUNK_ROWS = 512


@dataclass(frozen=True)
class ChunkRef:
    """One chunk file of one array: where it lives and what it holds."""

    file: str          # path relative to the store directory
    shape: tuple       # this chunk's array shape
    nbytes: int        # exact file size in bytes

    def to_dict(self) -> dict:
        """JSON-serializable form (shape as a list)."""
        return {"file": self.file, "shape": list(self.shape),
                "nbytes": self.nbytes}

    @staticmethod
    def from_dict(d: dict) -> "ChunkRef":
        """Rebuild from :meth:`to_dict` output."""
        return ChunkRef(file=d["file"], shape=tuple(d["shape"]),
                        nbytes=int(d["nbytes"]))


@dataclass(frozen=True)
class ArraySpec:
    """One persisted array: dtype, logical shape and its chunk table.

    ``dtype`` is the numpy dtype string in explicit byte-order form
    (``"<f8"``, ``"<i8"``, ``"|b1"``) — always little-endian where byte
    order applies, so stores are portable across hosts.
    """

    dtype: str
    shape: tuple
    chunks: tuple = field(default_factory=tuple)  # tuple[ChunkRef, ...]

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {"dtype": self.dtype, "shape": list(self.shape),
                "chunks": [c.to_dict() for c in self.chunks]}

    @staticmethod
    def from_dict(d: dict) -> "ArraySpec":
        """Rebuild from :meth:`to_dict` output."""
        return ArraySpec(dtype=d["dtype"], shape=tuple(d["shape"]),
                         chunks=tuple(ChunkRef.from_dict(c)
                                      for c in d["chunks"]))


@dataclass
class Manifest:
    """The store's JSON manifest: layout, versioning and chunk tables.

    ``row_bounds`` is the shared node-axis chunking: chunk ``i`` of
    every array covers rows ``[row_bounds[i], row_bounds[i+1])``.
    ``graph_version`` is the dataset's monotonic mutation counter —
    bumped by every :class:`~repro.stream.GraphDelta` written through
    :meth:`repro.store.StoredNodeDataset.apply_delta`, so a reopened
    store resumes exactly where the mutation history left it.
    """

    name: str
    num_nodes: int
    num_classes: int
    chunk_rows: int
    row_bounds: tuple          # tuple[int, ...], len == num_chunks + 1
    arrays: dict               # name -> ArraySpec
    graph_version: int = 0
    paper: dict | None = None  # PaperStats fields, when the source had them
    format: str = STORE_FORMAT

    @property
    def num_chunks(self) -> int:
        """Number of node blocks every array is chunked into."""
        return len(self.row_bounds) - 1

    def to_dict(self) -> dict:
        """JSON-serializable form of the whole manifest."""
        return {
            "format": self.format,
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_classes": self.num_classes,
            "chunk_rows": self.chunk_rows,
            "row_bounds": list(self.row_bounds),
            "graph_version": self.graph_version,
            "paper": self.paper,
            "arrays": {k: v.to_dict() for k, v in sorted(self.arrays.items())},
        }

    @staticmethod
    def from_dict(d: dict) -> "Manifest":
        """Rebuild from :meth:`to_dict` output (format tag enforced)."""
        if d.get("format") != STORE_FORMAT:
            raise ValueError(
                f"not a {STORE_FORMAT} manifest (format={d.get('format')!r})")
        return Manifest(
            name=d["name"], num_nodes=int(d["num_nodes"]),
            num_classes=int(d["num_classes"]),
            chunk_rows=int(d["chunk_rows"]),
            row_bounds=tuple(int(b) for b in d["row_bounds"]),
            graph_version=int(d["graph_version"]),
            paper=d.get("paper"),
            arrays={k: ArraySpec.from_dict(v)
                    for k, v in d["arrays"].items()},
        )

    def dumps(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — byte-stable."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """SHA-256 hex of the canonical manifest — the store's content id.

        Covers the chunk tables (files, shapes, byte counts), the row
        boundaries and ``graph_version``; any delta written to the
        store changes it, two byte-identical stores share it.
        """
        return hashlib.sha256(self.dumps().encode()).hexdigest()


def dtype_str(dtype) -> str:
    """Explicit byte-order dtype string, little-endian where applicable."""
    dt = np.dtype(dtype)
    return dt.newbyteorder("<").str if dt.byteorder != "|" else dt.str


def manifest_path(store_dir: str | os.PathLike) -> str:
    """``manifest.json`` inside the store directory."""
    return os.path.join(os.fspath(store_dir), "manifest.json")


def load_manifest(store_dir: str | os.PathLike) -> Manifest:
    """Read and parse a store directory's manifest.

    Raises :class:`FileNotFoundError` for a missing store and
    :class:`ValueError` for a directory that is not a
    ``repro-store-v1`` store.
    """
    path = manifest_path(store_dir)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no store manifest at {path} (not a repro store directory?)")
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt store manifest {path}: {exc}") from exc
    return Manifest.from_dict(data)


def write_manifest(store_dir: str | os.PathLike, manifest: Manifest) -> None:
    """Atomically write the manifest (tmp file + rename).

    The rename is the commit point of every store mutation: a reader
    opening the store mid-write sees either the old manifest (with the
    old chunk files still intact on their old inodes) or the new one —
    never a torn state.
    """
    path = manifest_path(store_dir)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        f.write(manifest.dumps())
        f.write("\n")
    os.replace(tmp, path)
