"""repro.store — out-of-core chunked, memory-mapped dataset storage.

The serving and training engines in this repo were built against
in-RAM :class:`~repro.graph.NodeDataset` objects; this package gives
the same datasets a versioned on-disk form that the whole stack can run
against **without loading the feature matrix into memory** and with
bitwise-identical logits.

A store directory (``repro-store-v1``, see :mod:`repro.store.format`)
holds a canonical JSON manifest plus raw little-endian chunk files, all
arrays chunked along the node axis at one shared set of row boundaries
(optionally aligned to ``repro.partition`` block runs).  Reads are lazy
:func:`numpy.memmap` chunk views behind a byte-budgeted, pinnable LRU
:class:`ChunkCache`; :class:`StoredNodeDataset` (via :func:`open_store`)
wraps it all in the ``NodeDataset`` access surface, so
:class:`~repro.api.Session`, the serve tiers and the trainers work
unchanged.  Streaming :class:`~repro.stream.GraphDelta` mutations
rewrite only the chunks they intersect and bump the manifest's
``graph_version`` (writable stores) or overlay in RAM (read-only
stores, e.g. a cluster's shared store).

Quick start::

    from repro.graph import load_node_dataset
    from repro.store import write_store, open_store

    ds = load_node_dataset("ogbn-arxiv", scale=1.0, seed=7)
    write_store("arxiv.store", ds)

    stored = open_store("arxiv.store", cache_bytes=16 * 2**20)
    # use `stored` anywhere a NodeDataset goes: Session, serve, train
"""

from .array import ChunkedRowArray
from .chunks import DEFAULT_CACHE_BYTES, ChunkCache
from .dataset import StoredNodeDataset, open_store
from .format import (
    DEFAULT_CHUNK_ROWS,
    STORE_FORMAT,
    ArraySpec,
    ChunkRef,
    Manifest,
    load_manifest,
    write_manifest,
)
from .writer import block_boundaries, rewrite_store_delta, write_store

__all__ = [
    "STORE_FORMAT",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_CACHE_BYTES",
    "ChunkRef",
    "ArraySpec",
    "Manifest",
    "load_manifest",
    "write_manifest",
    "ChunkCache",
    "ChunkedRowArray",
    "StoredNodeDataset",
    "open_store",
    "write_store",
    "rewrite_store_delta",
    "block_boundaries",
]
