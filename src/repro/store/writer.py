"""Writing stores: full conversion and touched-chunk delta rewrites.

:func:`write_store` converts an in-RAM :class:`~repro.graph.NodeDataset`
(or anything exposing its surface) into a ``repro-store-v1`` directory:
it picks the shared node-axis row boundaries (uniform ``chunk_rows``, or
aligned to the dataset's planted block runs with ``align_blocks``),
writes every array's chunk files, and commits the manifest.

:func:`rewrite_store_delta` is the incremental path behind
:meth:`repro.store.StoredNodeDataset.apply_delta` on writable stores:
given an already-applied :class:`~repro.stream.GraphDelta` it rewrites
**only** the chunks whose node rows the delta intersects — updated
feature rows, appended node rows, and the graph blocks whose adjacency
changed — then bumps ``graph_version`` and atomically commits the new
manifest.  Untouched chunk files are never opened for writing, which is
what keeps delta cost proportional to delta locality rather than store
size.

Chunk files are written tmp-then-rename, so a crash mid-delta leaves
the old manifest pointing at intact old bytes.
"""

from __future__ import annotations

import os

import numpy as np

from .format import (
    DEFAULT_CHUNK_ROWS,
    ArraySpec,
    ChunkRef,
    Manifest,
    dtype_str,
    write_manifest,
)

__all__ = ["write_store", "rewrite_store_delta", "block_boundaries"]

#: node arrays persisted besides features (all share the row boundaries)
_NODE_ARRAYS = ("labels", "train_mask", "val_mask", "test_mask", "blocks")


def block_boundaries(blocks: np.ndarray, chunk_rows: int) -> np.ndarray:
    """Row boundaries aligned to block runs, capped at ``chunk_rows``.

    Splits wherever the per-node block id changes in node order (the
    layout ``repro.partition`` orderings produce: cluster ids as
    contiguous node ranges), then splits any run longer than
    ``chunk_rows`` — so a chunk never spans two partitions and never
    exceeds the row cap.
    """
    blocks = np.asarray(blocks)
    n = len(blocks)
    cuts = np.nonzero(blocks[1:] != blocks[:-1])[0] + 1
    bounds = [0]
    for cut in list(cuts) + [n]:
        while cut - bounds[-1] > chunk_rows:
            bounds.append(bounds[-1] + chunk_rows)
        if cut > bounds[-1]:
            bounds.append(int(cut))
    return np.asarray(bounds, dtype=np.int64)


def _uniform_boundaries(num_nodes: int, chunk_rows: int) -> np.ndarray:
    bounds = np.arange(0, num_nodes, chunk_rows, dtype=np.int64)
    return np.concatenate([bounds, [num_nodes]])


def _chunk_file(name: str, i: int) -> str:
    return os.path.join("chunks", f"{name}-{i:06d}.bin")


def _write_chunk(store_dir: str, relfile: str, arr: np.ndarray,
                 dtype_s: str) -> ChunkRef:
    """Write one chunk's raw bytes atomically; returns its table entry."""
    data = np.ascontiguousarray(arr, dtype=np.dtype(dtype_s))
    path = os.path.join(store_dir, relfile)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data.tobytes())
    os.replace(tmp, path)
    return ChunkRef(file=relfile, shape=tuple(data.shape),
                    nbytes=int(data.nbytes))


def _chunk_node_array(store_dir: str, name: str, arr: np.ndarray,
                      bounds: np.ndarray) -> ArraySpec:
    """Persist one node-indexed array chunked at the shared boundaries."""
    dtype_s = dtype_str(arr.dtype)
    chunks = tuple(
        _write_chunk(store_dir, _chunk_file(name, i),
                     arr[bounds[i]:bounds[i + 1]], dtype_s)
        for i in range(len(bounds) - 1))
    return ArraySpec(dtype=dtype_s, shape=tuple(arr.shape), chunks=chunks)


def _graph_chunks(graph, bounds: np.ndarray, store_dir: str) -> dict:
    """Persist the CSR graph as degree + per-block adjacency chunks."""
    degrees = np.diff(graph.indptr).astype(np.int64)
    spec_deg = _chunk_node_array(store_dir, "graph_degrees", degrees, bounds)
    dtype_s = dtype_str(np.int64)
    chunks = []
    for i in range(len(bounds) - 1):
        lo = int(graph.indptr[bounds[i]])
        hi = int(graph.indptr[bounds[i + 1]])
        chunks.append(_write_chunk(store_dir, _chunk_file("graph_indices", i),
                                   graph.indices[lo:hi], dtype_s))
    spec_ind = ArraySpec(dtype=dtype_s, shape=(int(graph.num_edges),),
                         chunks=tuple(chunks))
    return {"graph_degrees": spec_deg, "graph_indices": spec_ind}


def write_store(out_dir: str | os.PathLike, dataset,
                chunk_rows: int = DEFAULT_CHUNK_ROWS,
                align_blocks: bool = False) -> Manifest:
    """Convert a node-level dataset into a store directory.

    ``chunk_rows`` caps the node rows per chunk; ``align_blocks``
    additionally cuts chunk boundaries at the dataset's planted block
    runs (see :func:`block_boundaries`) so chunks align with
    ``repro.partition`` orderings.  Any existing store at ``out_dir``
    is overwritten chunk-by-chunk.  Returns the committed manifest.
    """
    if hasattr(dataset, "graphs"):
        raise TypeError(
            "write_store takes a node-level dataset; graph-level datasets "
            "are collections of independent small graphs and stay in RAM")
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    graph = dataset.graph
    n = graph.num_nodes
    blocks = getattr(dataset, "blocks", None)
    if align_blocks and blocks is not None:
        bounds = block_boundaries(blocks, chunk_rows)
    else:
        bounds = _uniform_boundaries(n, chunk_rows)

    arrays = {"features": _chunk_node_array(
        out_dir, "features", np.asarray(dataset.features), bounds)}
    for name in _NODE_ARRAYS:
        arr = getattr(dataset, name, None)
        if arr is None:
            continue
        arrays[name] = _chunk_node_array(out_dir, name, np.asarray(arr),
                                         bounds)
    arrays.update(_graph_chunks(graph, bounds, out_dir))

    paper = getattr(dataset, "paper", None)
    manifest = Manifest(
        name=dataset.name, num_nodes=n,
        num_classes=int(dataset.num_classes),
        chunk_rows=int(chunk_rows),
        row_bounds=tuple(int(b) for b in bounds),
        arrays=arrays,
        graph_version=int(getattr(dataset, "graph_version", 0)),
        paper=(None if paper is None else {
            "num_nodes": paper.num_nodes, "num_edges": paper.num_edges,
            "feature_dim": paper.feature_dim,
            "num_classes": paper.num_classes, "task": paper.task}),
    )
    write_manifest(out_dir, manifest)
    return manifest


def _extend_bounds(manifest: Manifest, new_n: int) -> tuple:
    """Grow the row boundaries for appended nodes.

    The last chunk fills up to ``chunk_rows``, then fresh chunks of
    ``chunk_rows`` are appended.  Returns ``(new_bounds, grown_last)``
    where ``grown_last`` flags whether the old last chunk's span grew
    (and therefore must be rewritten).
    """
    bounds = list(manifest.row_bounds)
    old_n = manifest.num_nodes
    cap = manifest.chunk_rows
    grown_last = False
    remaining = new_n - old_n
    if remaining and len(bounds) > 1:
        room = cap - (bounds[-1] - bounds[-2])
        take = min(remaining, max(room, 0))
        if take:
            bounds[-1] += take
            remaining -= take
            grown_last = True
    while remaining > 0:
        take = min(remaining, cap)
        bounds.append(bounds[-1] + take)
        remaining -= take
    return tuple(bounds), grown_last


def rewrite_store_delta(store_dir: str, manifest: Manifest, delta,
                        graph, touched: np.ndarray,
                        node_arrays: dict,
                        read_feature_chunk) -> tuple:
    """Rewrite exactly the chunks a delta intersects; commit the manifest.

    ``graph`` / ``touched`` are the post-delta CSR and its recomputed
    rows from :meth:`~repro.graph.CSRGraph.apply_edge_delta`;
    ``node_arrays`` maps each small node array name (labels, masks,
    blocks) to its **already-extended** post-delta values;
    ``read_feature_chunk(i)`` returns the pre-delta bytes of feature
    chunk ``i`` (only called for chunks being rewritten — features are
    never materialized wholesale).

    Returns ``(new_manifest, rewritten_keys)`` where ``rewritten_keys``
    is the ``(array_name, chunk_index)`` cache keys the caller must
    evict.
    """
    old_n = manifest.num_nodes
    new_n = graph.num_nodes
    old_chunks = manifest.num_chunks
    bounds, grown_last = _extend_bounds(manifest, new_n)
    bounds_arr = np.asarray(bounds, dtype=np.int64)
    num_chunks = len(bounds) - 1
    rewritten: list[tuple] = []

    append_chunks = set(range(old_chunks, num_chunks))
    if grown_last:
        append_chunks.add(old_chunks - 1)

    def chunk_of(rows: np.ndarray) -> np.ndarray:
        return np.unique(np.searchsorted(bounds_arr, rows,
                                         side="right") - 1)

    # -- features: chunks holding updated rows, plus appended spans ------ #
    upd_rows = (np.empty(0, dtype=np.int64) if delta.update_nodes is None
                else np.asarray(delta.update_nodes, dtype=np.int64))
    upd_vals = (None if delta.update_features is None
                else np.asarray(delta.update_features))
    feat_spec = manifest.arrays["features"]
    feat_dim = feat_spec.shape[1]
    feat_chunks = list(feat_spec.chunks)
    targets = set(int(c) for c in chunk_of(upd_rows)) | append_chunks
    for i in sorted(targets):
        r0, r1 = bounds[i], bounds[i + 1]
        parts = []
        if i < old_chunks and r0 < old_n:
            parts.append(np.array(read_feature_chunk(i)))
        if r1 > old_n and delta.num_new_nodes:
            parts.append(np.asarray(delta.new_features)
                         [max(r0, old_n) - old_n:r1 - old_n])
        data = parts[0] if len(parts) == 1 else np.concatenate(parts)
        if len(upd_rows):
            sel = (upd_rows >= r0) & (upd_rows < r1)
            if sel.any():
                data[upd_rows[sel] - r0] = upd_vals[sel]
        ref = _write_chunk(store_dir, _chunk_file("features", i), data,
                           feat_spec.dtype)
        if i < len(feat_chunks):
            feat_chunks[i] = ref
        else:
            feat_chunks.append(ref)
        rewritten.append(("features", i))
    arrays = dict(manifest.arrays)
    arrays["features"] = ArraySpec(dtype=feat_spec.dtype,
                                   shape=(new_n, feat_dim),
                                   chunks=tuple(feat_chunks))

    # -- small node arrays: append-affected chunks only ------------------ #
    for name, arr in node_arrays.items():
        spec = arrays.get(name)
        if spec is None or not append_chunks:
            continue
        chunks = list(spec.chunks)
        for i in sorted(append_chunks):
            ref = _write_chunk(store_dir, _chunk_file(name, i),
                               arr[bounds[i]:bounds[i + 1]], spec.dtype)
            if i < len(chunks):
                chunks[i] = ref
            else:
                chunks.append(ref)
            rewritten.append((name, i))
        arrays[name] = ArraySpec(dtype=spec.dtype, shape=(new_n,),
                                 chunks=tuple(chunks))

    # -- graph: blocks whose adjacency the delta recomputed -------------- #
    graph_targets = set(int(c) for c in chunk_of(
        np.asarray(touched, dtype=np.int64))) | append_chunks
    degrees = np.diff(graph.indptr).astype(np.int64)
    for name in ("graph_degrees", "graph_indices"):
        spec = arrays[name]
        chunks = list(spec.chunks)
        for i in sorted(graph_targets):
            r0, r1 = bounds[i], bounds[i + 1]
            if name == "graph_degrees":
                data = degrees[r0:r1]
            else:
                data = graph.indices[graph.indptr[r0]:graph.indptr[r1]]
            ref = _write_chunk(store_dir, _chunk_file(name, i), data,
                               spec.dtype)
            if i < len(chunks):
                chunks[i] = ref
            else:
                chunks.append(ref)
            rewritten.append((name, i))
        shape = (new_n,) if name == "graph_degrees" \
            else (int(graph.num_edges),)
        arrays[name] = ArraySpec(dtype=spec.dtype, shape=shape,
                                 chunks=tuple(chunks))

    new_manifest = Manifest(
        name=manifest.name, num_nodes=new_n,
        num_classes=manifest.num_classes,
        chunk_rows=manifest.chunk_rows, row_bounds=bounds,
        arrays=arrays, graph_version=manifest.graph_version + 1,
        paper=manifest.paper)
    write_manifest(store_dir, new_manifest)
    return new_manifest, rewritten
