"""The repository's single injectable clock source.

Before this module, the serve stack mixed clock domains: request
deadlines were absolute :func:`time.perf_counter` timestamps (the queue
contract) while the cluster's heartbeat aging and drain watchdogs read
:func:`time.monotonic`.  Both are monotonic, but they are *different
counters with different zeros* — a virtual-clock test could freeze one
domain while the other kept running, and deadline culling could drift
from heartbeat timeouts in ways no test could pin down.

Every serve-layer timestamp — and, since the observability layer
landed, every :mod:`repro.obs` span timestamp and every benchmark
timing loop — flows through :func:`now`.  The default source is
``time.perf_counter`` (preserving the queue's documented deadline
domain); tests inject a fake via :func:`set_clock` /
:func:`clock_override` and deadline culling, worker-health policing,
latency accounting *and* trace span durations advance together,
deterministically.  Scheduling sleeps (``Event.wait`` timeouts) stay on
the real clock — only *measurements and comparisons* go through here.

The module lives at the package root (historically
``repro.serve._clock``, which remains as a re-export shim) so that
:mod:`repro.obs` can use it without importing the serving layer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable

__all__ = ["now", "get_clock", "set_clock", "clock_override", "ManualClock"]

_clock: Callable[[], float] = time.perf_counter


def now() -> float:
    """The serving layer's current time (seconds, monotonic domain)."""
    return _clock()


def get_clock() -> Callable[[], float]:
    """The active clock source callable."""
    return _clock


def set_clock(clock: Callable[[], float] | None) -> None:
    """Install a clock source; ``None`` restores ``time.perf_counter``."""
    global _clock
    _clock = time.perf_counter if clock is None else clock


@contextmanager
def clock_override(clock: Callable[[], float]):
    """Temporarily install a clock source (virtual-clock tests)."""
    prev = _clock
    set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(prev)


class ManualClock:
    """A hand-stepped clock for deterministic time-domain tests.

    Call the instance for the current time; :meth:`advance` steps it.
    Injecting one via :func:`clock_override` drives deadline expiry,
    heartbeat aging and latency accounting from one number.
    """

    def __init__(self, start: float = 0.0):
        self.time = float(start)

    def __call__(self) -> float:
        return self.time

    def advance(self, seconds: float) -> float:
        """Move the clock forward (never backward); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} (negative)")
        self.time += seconds
        return self.time
