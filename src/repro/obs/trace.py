"""Per-request tracing: spans, context propagation, Dapper-style.

A *span* is one named, timed segment of work (``queue_wait``,
``batch``, ``dispatch``, ``compute``, ``chunk_fetch`` …); a *trace* is
the tree of spans sharing one ``trace_id`` — everything that happened
to one serving request, across threads and across the router/worker
process boundary.

Propagation model: the serving layers are asynchronous (a request
crosses the queue, the batcher and possibly a worker pipe between
submit and complete), so the request object *carries* its
:class:`TraceContext` and each layer records its segment explicitly
with :meth:`Tracer.record` using timestamps it already tracks.  For
synchronous nested work (a compiled-program replay, a store chunk
gather) the ambient context — installed for the duration of a batch via
:meth:`Tracer.activate` — lets deep layers attach child spans with the
:meth:`Tracer.span` context manager without any parameter threading.

Crossing the process boundary: the router preallocates the dispatch
span's id, ships ``(trace_id, span_id)`` on the
:class:`~repro.serve.worker.WorkUnit` wire form, the worker parents its
request spans under it, and finished worker spans return on the
:class:`~repro.serve.worker.WorkResult` for the router to
:meth:`~Tracer.ingest` — one tree, two processes.

All span timestamps read :func:`repro._clock.now` — the same injectable
clock the serving layer uses — so :class:`~repro._clock.ManualClock`
tests pin span durations exactly.  Timestamps are process-local
(``perf_counter`` zeros differ across processes); durations and
parent/child structure are what cross the boundary, not a shared epoch.

Tracing is **off by default**; every entry point starts with one
``enabled`` check.  Enable with :func:`set_tracing` (the REPL's
``trace on``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from .._clock import now as _now

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracing",
    "tracing_enabled",
    "spans_to_jsonl",
    "spans_to_chrome",
]


@dataclass(frozen=True)
class TraceContext:
    """The identity one span of work carries: trace, own id, parent."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def to_wire(self) -> tuple:
        """Picklable wire form for the WorkUnit trace field."""
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_wire(wire) -> "TraceContext | None":
        """Rebuild a (parent) context from :meth:`to_wire` output."""
        if wire is None:
            return None
        return TraceContext(trace_id=wire[0], span_id=wire[1])


@dataclass
class Span:
    """One finished, named, timed segment of a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (``end - start``)."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-able dict form (the JSON-lines export row)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "start": self.start, "end": self.end,
                "duration": self.duration, "attrs": self.attrs}

    @staticmethod
    def from_dict(d: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (ingest path)."""
        return Span(trace_id=d["trace_id"], span_id=d["span_id"],
                    parent_id=d.get("parent_id"), name=d["name"],
                    start=d["start"], end=d["end"],
                    attrs=dict(d.get("attrs") or {}))


class Tracer:
    """Collects finished spans in a bounded buffer; hands out contexts.

    One instance per process (see :func:`get_tracer`); ``enabled``
    gates every operation.  Ids embed the pid, so spans minted in a
    spawned worker never collide with router-side ids when ingested
    into one tree.
    """

    def __init__(self, max_spans: int = 8192):
        self.enabled = False
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._ambient = threading.local()

    # -- identity ---------------------------------------------------------- #
    def _next(self, prefix: str) -> str:
        return f"{prefix}{os.getpid():x}.{next(self._ids):x}"

    def new_span_id(self) -> str:
        """A fresh span id (preallocated for spans recorded later)."""
        return self._next("s")

    def new_context(self, parent: TraceContext | None = None,
                    ) -> TraceContext:
        """A context for a new span: child of ``parent``, or a new trace."""
        if parent is None:
            return TraceContext(trace_id=self._next("t"),
                                span_id=self.new_span_id())
        return TraceContext(trace_id=parent.trace_id,
                            span_id=self.new_span_id(),
                            parent_id=parent.span_id)

    # -- recording --------------------------------------------------------- #
    def record(self, name: str, start: float, end: float, *,
               ctx: TraceContext | None = None,
               parent: TraceContext | None = None,
               attrs: dict | None = None) -> Span | None:
        """Append one finished span; no-op (returns None) when disabled.

        ``ctx`` records *as* that context (its span id was preallocated
        — the dispatch-span pattern); ``parent`` mints a fresh child id
        under it.  With neither, the ambient context (if any) parents
        the span, else it roots a new trace.
        """
        if not self.enabled:
            return None
        if ctx is None:
            ctx = self.new_context(parent if parent is not None
                                   else self.current())
        span = Span(trace_id=ctx.trace_id, span_id=ctx.span_id,
                    parent_id=ctx.parent_id, name=name,
                    start=start, end=end, attrs=dict(attrs or {}))
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, attrs: dict | None = None):
        """Time a synchronous block as a child of the ambient context.

        Yields the block's :class:`TraceContext` (or ``None`` when
        tracing is disabled) and makes it ambient for the duration, so
        nested :meth:`span` blocks chain into a tree.
        """
        if not self.enabled:
            yield None
            return
        ctx = self.new_context(self.current())
        prev = getattr(self._ambient, "ctx", None)
        self._ambient.ctx = ctx
        start = _now()
        try:
            yield ctx
        finally:
            self._ambient.ctx = prev
            self.record(name, start, _now(), ctx=ctx, attrs=attrs)

    @contextmanager
    def activate(self, ctx: TraceContext | None):
        """Install ``ctx`` as this thread's ambient context for a block.

        The serving layers wrap batch execution in this so deep,
        trace-agnostic code (chunk gathers, compiled replays) attaches
        its spans to the right request.  ``None`` deactivates.
        """
        prev = getattr(self._ambient, "ctx", None)
        self._ambient.ctx = ctx
        try:
            yield ctx
        finally:
            self._ambient.ctx = prev

    def current(self) -> TraceContext | None:
        """This thread's ambient context, or ``None``."""
        return getattr(self._ambient, "ctx", None)

    # -- the buffer -------------------------------------------------------- #
    def spans(self, trace_id: str | None = None) -> list[Span]:
        """A copy of buffered spans (optionally one trace's)."""
        with self._lock:
            out = list(self._spans)
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        return out

    def clear(self) -> None:
        """Drop every buffered span."""
        with self._lock:
            self._spans.clear()

    def take(self, trace_ids) -> list[dict]:
        """Remove and return (as dicts) all spans of the given traces.

        The worker side of boundary crossing: after executing a batch
        of units, the worker takes the spans belonging to those units'
        traces and ships them back on the results.
        """
        wanted = set(trace_ids)
        taken: list[dict] = []
        with self._lock:
            kept = deque(maxlen=self._spans.maxlen)
            for span in self._spans:
                if span.trace_id in wanted:
                    taken.append(span.to_dict())
                else:
                    kept.append(span)
            self._spans = kept
        return taken

    def ingest(self, span_dicts) -> int:
        """Append spans shipped from another process; returns how many.

        No-op when disabled (a late result arriving after ``trace
        off`` must not grow the buffer).
        """
        if not self.enabled or not span_dicts:
            return 0
        spans = [Span.from_dict(d) for d in span_dicts]
        with self._lock:
            self._spans.extend(spans)
        return len(spans)


def spans_to_jsonl(spans) -> str:
    """Render spans as JSON-lines (one span per line, start-ordered)."""
    rows = sorted((s.to_dict() if isinstance(s, Span) else dict(s)
                   for s in spans),
                  key=lambda d: (d["trace_id"], d["start"], d["span_id"]))
    return "\n".join(json.dumps(r, sort_keys=True) for r in rows)


def spans_to_chrome(spans) -> dict:
    """Render spans in Chrome ``chrome://tracing`` / Perfetto format.

    Complete ("X") events with microsecond timestamps; each trace maps
    to its own pid lane so concurrent requests stack side by side.
    Load the JSON via ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    rows = [s.to_dict() if isinstance(s, Span) else dict(s) for s in spans]
    rows.sort(key=lambda d: (d["trace_id"], d["start"], d["span_id"]))
    lanes: dict[str, int] = {}
    events = []
    for row in rows:
        lane = lanes.setdefault(row["trace_id"], len(lanes) + 1)
        events.append({
            "name": row["name"], "cat": "repro", "ph": "X",
            "ts": row["start"] * 1e6,
            "dur": max(row["end"] - row["start"], 0.0) * 1e6,
            "pid": lane, "tid": 1,
            "args": {"trace_id": row["trace_id"],
                     "span_id": row["span_id"],
                     "parent_id": row["parent_id"], **row["attrs"]},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer every subsystem records into."""
    return _tracer


def set_tracing(enabled: bool) -> None:
    """Turn span collection on/off for this process's tracer."""
    _tracer.enabled = bool(enabled)


def tracing_enabled() -> bool:
    """Whether the process-global tracer is collecting."""
    return _tracer.enabled
