"""Exporters: registry snapshots as Prometheus text, JSON, or a table.

Every function here takes the *snapshot shape* —
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` for one process, or
:meth:`~repro.obs.metrics.MetricsRegistry.merge` over per-worker
``state_dict``\\ s for a cluster — so single-process and fleet-wide
exports render through exactly the same code.

The Prometheus renderer emits the text exposition format 0.0.4
(``# HELP`` / ``# TYPE`` headers, ``{label="value"}`` series,
``_bucket``/``_sum``/``_count`` histogram triples with cumulative
``le`` buckets), so the output can be scraped verbatim or pushed
through a gateway without translation.  ``repro stats --format prom``
(see :mod:`repro.cli`) is the command-line face of this module.
"""

from __future__ import annotations

import json

__all__ = ["to_prometheus", "to_json", "metrics_table"]


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(labels: dict, extra: dict | None = None) -> str:
    pairs = dict(labels)
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"'
                     for k, v in sorted(pairs.items()))
    return "{" + inner + "}"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    lines: list[str] = []
    for name, entry in sorted(snapshot.items()):
        if entry["description"]:
            lines.append(f"# HELP {name} {entry['description']}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for series in entry["series"]:
            labels = series["labels"]
            if entry["kind"] == "histogram":
                for bound, cum in series["buckets"]:
                    le = "+Inf" if bound == "+Inf" else repr(float(bound))
                    lines.append(f"{name}_bucket"
                                 f"{_label_str(labels, {'le': le})} {cum}")
                lines.append(f"{name}_sum{_label_str(labels)} "
                             f"{_fmt(series['sum'])}")
                lines.append(f"{name}_count{_label_str(labels)} "
                             f"{series['count']}")
            else:
                lines.append(f"{name}{_label_str(labels)} "
                             f"{_fmt(series['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(snapshot: dict, indent: int | None = 2) -> str:
    """Render a registry snapshot as deterministic JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def metrics_table(snapshot: dict, title: str = "metrics"):
    """Render a registry snapshot as a bench-harness
    :class:`~repro.bench.harness.TableReport` (one row per series;
    histograms show count / mean)."""
    from ..bench.harness import TableReport, fmt_time

    table = TableReport(title=title,
                        columns=["metric", "labels", "kind", "value"])
    for name, entry in sorted(snapshot.items()):
        for series in entry["series"]:
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(series["labels"].items()))
            if entry["kind"] == "histogram":
                count = series["count"]
                mean = series["sum"] / count if count else float("nan")
                shown = (fmt_time(mean) if name.endswith("_seconds")
                         else f"{mean:.2f}")
                value = f"n={count} mean={shown}"
            else:
                value = _fmt(series["value"])
            table.add_row(name, labels or "—", entry["kind"], value)
    return table
