"""repro.obs — metrics, per-request tracing, and profiling hooks.

The observability substrate under the serving stack, in three pieces:

* :mod:`repro.obs.metrics` — one process-global
  :class:`MetricsRegistry` of :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` series that every runtime layer (server, cluster,
  router, pool, chunk store, compiled backend, workspace cache, comm
  log) registers its counters into, with a cross-process
  ``state_dict()`` / ``merge()`` contract for cluster-wide views;
* :mod:`repro.obs.trace` — :class:`Span` / :class:`Tracer` per-request
  tracing with context propagation across threads and worker processes,
  exportable as JSON-lines or Chrome ``chrome://tracing`` format;
* :mod:`repro.obs.hooks` — named profiling callbacks
  (``on_batch_start`` / ``on_batch_end`` / ``on_compile`` /
  ``on_chunk_miss``) for tools that want live objects, used by the
  bench harness's stage-breakdown tables.

Metrics collection is **on** by default (counters are a dict update
under a lock); tracing is **off** by default (spans allocate).  Both
are one-``if`` no-ops when disabled — the overhead budget is enforced
by ``benchmarks/bench_obs_overhead.py``.  Exporters
(:mod:`repro.obs.export`) and the ``repro stats`` CLI render either a
single process's registry or the merged fleet.  See
``docs/observability.md`` for the metric naming scheme and span
taxonomy.
"""

from .export import metrics_table, to_json, to_prometheus
from .hooks import (
    HOOK_POINTS,
    active,
    add_hook,
    clear_hooks,
    fire,
    remove_hook,
)
from .metrics import (
    POW2_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_metrics_enabled,
    set_registry,
)
from .trace import (
    Span,
    TraceContext,
    Tracer,
    get_tracer,
    set_tracing,
    spans_to_chrome,
    spans_to_jsonl,
    tracing_enabled,
)

__all__ = [
    # metrics
    "POW2_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "metrics_enabled",
    "set_metrics_enabled",
    # tracing
    "TraceContext",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracing",
    "tracing_enabled",
    "spans_to_jsonl",
    "spans_to_chrome",
    # hooks
    "HOOK_POINTS",
    "active",
    "add_hook",
    "remove_hook",
    "clear_hooks",
    "fire",
    # exporters
    "to_prometheus",
    "to_json",
    "metrics_table",
]
