"""The unified metrics registry: Counter / Gauge / Histogram, one home.

Every runtime layer of the stack (queue → batcher → pool → router →
worker → compiled backend → chunked store) historically kept its own
ad-hoc stats dataclass.  Those snapshot dicts remain — they are the
tested, human-facing views — but the *counting* now also lands here, in
one process-global :class:`MetricsRegistry`, so a single exporter
(:mod:`repro.obs.export`) can render the whole fleet's state in
Prometheus text format or JSON without knowing about any individual
subsystem.

Design points, in order of importance:

* **Thread-safe**: every series mutation happens under a per-metric
  lock; serving worker threads, router threads and snapshot readers
  never race (the bug class the serve stats audit closed).
* **Near-zero cost when disabled**: each ``inc`` / ``set`` / ``observe``
  starts with one attribute check on the owning registry and returns
  immediately when collection is off.  Hot paths pay an ``if``.
* **Power-of-two histogram buckets**: latency histograms bucket at
  ``2^k`` seconds (default 1 µs … 32 s) — exponential resolution that
  matches how tail latency is actually read, and bucket counts from
  different processes merge by simple elementwise addition.
* **Cross-process merge**: :meth:`MetricsRegistry.state_dict` /
  :meth:`MetricsRegistry.merge` mirror the
  :class:`~repro.serve.server.ServerStats` contract — workers ship raw
  state, the router merges, and a ``source`` id deduplicates inline
  workers that share the router's registry (merging N views of one
  registry must not count it N times).
"""

from __future__ import annotations

import bisect
import os
import threading

__all__ = [
    "POW2_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "metrics_enabled",
    "set_metrics_enabled",
]

#: Default histogram bucket upper bounds: powers of two from 2^-20 s
#: (~1 µs) through 2^5 s (32 s); observations beyond the last bound
#: land in the implicit +Inf bucket.
POW2_BUCKET_BOUNDS = tuple(2.0 ** e for e in range(-20, 6))


class _Metric:
    """Common shape of one named metric: labels, lock, series map.

    Not public API — use :meth:`MetricsRegistry.counter` /
    :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`,
    which construct (or idempotently return) instances.
    """

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 description: str, label_names=()):
        self._registry = registry
        self.name = name
        self.description = description
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[n]) for n in self.label_names)

    def _label_dict(self, key: tuple) -> dict:
        return dict(zip(self.label_names, key))

    def series_count(self) -> int:
        """How many distinct label combinations have been observed."""
        with self._lock:
            return len(self._series)


class Counter(_Metric):
    """A monotonically increasing count (events, requests, bytes)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (>= 0) to the series named by ``labels``."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """The series' current total (0 before any increment)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)

    def _snapshot_series(self) -> list[dict]:
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": self._label_dict(k), "value": v}
                for k, v in items]

    def _state(self) -> dict:
        with self._lock:
            return dict(self._series)


class Gauge(_Metric):
    """A point-in-time level (cache bytes, live sessions, a version)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the series named by ``labels`` to ``value``."""
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def add(self, amount: float, **labels) -> None:
        """Adjust the series by ``amount`` (either sign)."""
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """The series' current level (0 before any set)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)

    _snapshot_series = Counter._snapshot_series
    _state = Counter._state


class Histogram(_Metric):
    """A distribution over power-of-two exponential buckets.

    Bucket bounds are upper edges (``value <= bound``); everything past
    the last bound counts in the implicit +Inf bucket.  Per-series state
    is ``(bucket counts, total count, total sum)`` — merging across
    processes is elementwise addition, and mean latency falls out of
    ``sum / count`` exactly (no bucket-midpoint approximation).
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 description: str, label_names=(),
                 bounds=POW2_BUCKET_BOUNDS):
        super().__init__(registry, name, description, label_names)
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing")

    def observe(self, value: float, **labels) -> None:
        """Record one observation into its bucket."""
        if not self._registry.enabled:
            return
        key = self._key(labels)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = [[0] * (len(self.bounds) + 1), 0, 0.0]
                self._series[key] = state
            state[0][idx] += 1
            state[1] += 1
            state[2] += value

    def count(self, **labels) -> int:
        """Total observations in the series (0 before any)."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            return 0 if state is None else state[1]

    def sum(self, **labels) -> float:
        """Sum of all observed values in the series (0.0 before any)."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            return 0.0 if state is None else state[2]

    def _snapshot_series(self) -> list[dict]:
        with self._lock:
            items = [(k, [list(s[0]), s[1], s[2]])
                     for k, s in sorted(self._series.items())]
        out = []
        for key, (counts, count, total) in items:
            cum, buckets = 0, []
            for bound, c in zip(self.bounds, counts):
                cum += c
                buckets.append([bound, cum])
            buckets.append(["+Inf", cum + counts[-1]])
            out.append({"labels": self._label_dict(key), "count": count,
                        "sum": total, "buckets": buckets})
        return out

    def _state(self) -> dict:
        with self._lock:
            return {k: [list(s[0]), s[1], s[2]]
                    for k, s in self._series.items()}


class MetricsRegistry:
    """All metrics of one process, keyed by name; snapshot + merge.

    Registration is idempotent: asking for an existing name with the
    same kind and label set returns the existing metric (so call sites
    never coordinate), while a conflicting re-registration raises.
    ``enabled`` gates every mutation — flipping it off makes all
    ``inc`` / ``set`` / ``observe`` calls single-``if`` no-ops.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name, description, labels, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if type(metric) is not cls or (metric.label_names
                                               != tuple(labels)):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind} with labels {metric.label_names}")
                return metric
            metric = cls(self, name, description, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, description: str = "",
                labels=()) -> Counter:
        """Get-or-create the :class:`Counter` called ``name``."""
        return self._register(Counter, name, description, labels)

    def gauge(self, name: str, description: str = "", labels=()) -> Gauge:
        """Get-or-create the :class:`Gauge` called ``name``."""
        return self._register(Gauge, name, description, labels)

    def histogram(self, name: str, description: str = "", labels=(),
                  bounds=POW2_BUCKET_BOUNDS) -> Histogram:
        """Get-or-create the :class:`Histogram` called ``name``."""
        return self._register(Histogram, name, description, labels,
                              bounds=bounds)

    def get(self, name: str) -> _Metric | None:
        """The registered metric called ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every series (registrations survive; tests use this)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            with metric._lock:
                metric._series.clear()

    def snapshot(self) -> dict:
        """Exporter-shaped view: ``{name: {kind, description, series}}``.

        The same shape :meth:`merge` returns, so every exporter in
        :mod:`repro.obs.export` renders single-process and merged
        cluster-wide state identically.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: {"kind": m.kind,
                       "description": m.description,
                       "label_names": list(m.label_names),
                       "series": m._snapshot_series()}
                for name, m in metrics}

    def state_dict(self) -> dict:
        """Picklable raw state for cross-process merging.

        ``source`` identifies the live registry object (pid × object
        id): :meth:`merge` deduplicates on it, so a cluster whose
        inline workers all share the router's process-global registry
        reports each count once, not once per worker — the same
        "raw state ships, the merger aggregates" contract as
        :meth:`repro.serve.server.ServerStats.state_dict`.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        state = {}
        for name, m in metrics:
            entry = {"kind": m.kind, "description": m.description,
                     "label_names": list(m.label_names),
                     "series": m._state()}
            if m.kind == "histogram":
                entry["bounds"] = list(m.bounds)
            state[name] = entry
        return {"source": f"{os.getpid()}-{id(self):x}", "metrics": state}

    @staticmethod
    def merge(states) -> dict:
        """Merge :meth:`state_dict` dicts into one snapshot-shaped view.

        Counters and gauges sum per (name, label set); histograms add
        bucket counts elementwise (power-of-two bounds make the buckets
        align by construction).  States with the same ``source`` are
        one registry seen twice and are counted once.
        """
        seen: dict[str, dict] = {}
        for i, state in enumerate(states):
            seen.setdefault(str(state.get("source", f"anon-{i}")), state)
        merged: dict[str, dict] = {}
        for state in seen.values():
            for name, entry in state["metrics"].items():
                out = merged.setdefault(name, {
                    "kind": entry["kind"],
                    "description": entry["description"],
                    "label_names": list(entry["label_names"]),
                    "bounds": entry.get("bounds"),
                    "series": {}})
                if out["kind"] != entry["kind"]:
                    raise ValueError(
                        f"metric {name!r} has conflicting kinds across "
                        f"processes: {out['kind']} vs {entry['kind']}")
                for key, value in entry["series"].items():
                    key = tuple(key)
                    if entry["kind"] == "histogram":
                        slot = out["series"].get(key)
                        if slot is None:
                            out["series"][key] = [list(value[0]),
                                                  value[1], value[2]]
                        else:
                            for b, c in enumerate(value[0]):
                                slot[0][b] += c
                            slot[1] += value[1]
                            slot[2] += value[2]
                    else:
                        out["series"][key] = (out["series"].get(key, 0)
                                              + value)
        return {name: MetricsRegistry._merged_entry(entry)
                for name, entry in sorted(merged.items())}

    @staticmethod
    def _merged_entry(entry: dict) -> dict:
        label_names = entry["label_names"]
        series = []
        for key, value in sorted(entry["series"].items()):
            labels = dict(zip(label_names, key))
            if entry["kind"] == "histogram":
                counts, count, total = value
                bounds = entry["bounds"] or POW2_BUCKET_BOUNDS
                cum, buckets = 0, []
                for bound, c in zip(bounds, counts):
                    cum += c
                    buckets.append([bound, cum])
                buckets.append(["+Inf", cum + counts[-1]])
                series.append({"labels": labels, "count": count,
                               "sum": total, "buckets": buckets})
            else:
                series.append({"labels": labels, "value": value})
        return {"kind": entry["kind"], "description": entry["description"],
                "label_names": label_names, "series": series}


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every subsystem registers into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Test isolation seam: a test installs a fresh registry, constructs
    the servers/caches under test (they bind counters at construction
    time), and restores the old registry afterwards.
    """
    global _registry
    previous = _registry
    _registry = registry
    return previous


def metrics_enabled() -> bool:
    """Whether the process-global registry is collecting."""
    return _registry.enabled


def set_metrics_enabled(enabled: bool) -> None:
    """Turn collection on/off globally (off = single-``if`` no-ops)."""
    _registry.enabled = bool(enabled)
