"""Profiling hooks: named callback points on the serving hot path.

Metrics aggregate and traces sample *per request*; hooks are the third
surface — synchronous callbacks at well-known points, for tools that
want the live objects (the bench harness's stage-breakdown tables, an
ad-hoc profiler, a test asserting cache behaviour) without the
subsystems growing bespoke callback plumbing each time.

Canonical hook points (see :data:`HOOK_POINTS` for the signatures):

* ``on_batch_start(key, size)`` — a micro-batch is about to execute;
* ``on_batch_end(key, size, seconds)`` — it finished (timed);
* ``on_compile(key, outcome, seconds)`` — a backend compile attempt
  resolved (``outcome`` is ``"compiled"`` / ``"fallback"``);
* ``on_chunk_miss(key, nbytes)`` — the store chunk cache loaded a chunk.

Cost model: :func:`fire` is one dict lookup + falsy check when nothing
is registered — the hot paths pay effectively nothing until a profiler
attaches.  A raising hook is counted (``repro_obs_hook_errors_total``)
and dropped for the rest of the call, never allowed to fail the serving
request it observed.
"""

from __future__ import annotations

import threading

from .metrics import get_registry

__all__ = ["HOOK_POINTS", "add_hook", "remove_hook", "clear_hooks",
           "active", "fire"]

#: The canonical hook points and their keyword signatures.
HOOK_POINTS = {
    "on_batch_start": ("key", "size"),
    "on_batch_end": ("key", "size", "seconds"),
    "on_compile": ("key", "outcome", "seconds"),
    "on_chunk_miss": ("key", "nbytes"),
}

_lock = threading.Lock()
_hooks: dict[str, list] = {}


def add_hook(name: str, fn) -> None:
    """Register ``fn`` to run at hook point ``name`` (kwargs call)."""
    with _lock:
        _hooks.setdefault(name, []).append(fn)


def remove_hook(name: str, fn) -> bool:
    """Unregister one previously added hook; returns whether it was set."""
    with _lock:
        fns = _hooks.get(name, [])
        try:
            fns.remove(fn)
        except ValueError:
            return False
        if not fns:
            _hooks.pop(name, None)
        return True


def clear_hooks(name: str | None = None) -> None:
    """Drop every hook at ``name`` (or everywhere with ``None``)."""
    with _lock:
        if name is None:
            _hooks.clear()
        else:
            _hooks.pop(name, None)


def active(name: str) -> bool:
    """Whether any hook is registered at ``name`` (cheap pre-check for
    call sites that would otherwise measure timings just to discard
    them)."""
    return bool(_hooks.get(name))


def fire(name: str, **kwargs) -> None:
    """Invoke every hook registered at ``name`` with ``kwargs``.

    Near-zero cost with nothing registered; hook exceptions are counted
    in ``repro_obs_hook_errors_total`` and suppressed (a profiler must
    never fail the request it is watching).
    """
    fns = _hooks.get(name)
    if not fns:
        return
    for fn in list(fns):
        try:
            fn(**kwargs)
        except Exception:
            get_registry().counter(
                "repro_obs_hook_errors_total",
                "profiling hooks that raised (and were suppressed)",
                labels=("hook",)).inc(hook=name)
