"""Re-export shim: the injectable clock moved to :mod:`repro._clock`.

The serving layer grew the clock first, but the observability layer
(:mod:`repro.obs`) needs the same source without importing
``repro.serve`` (which would be an import cycle: the server imports the
tracer).  The implementation therefore lives at the package root; this
module keeps the historical ``repro.serve._clock`` import path working
— the function objects are *shared*, so ``set_clock`` through either
path drives both.
"""

from .._clock import (  # noqa: F401
    ManualClock,
    clock_override,
    get_clock,
    now,
    set_clock,
)

__all__ = ["now", "get_clock", "set_clock", "clock_override", "ManualClock"]
