"""Request intake for the serving layer: futures, deadlines, backpressure.

A serving request is *asynchronous by contract*: ``InferenceServer.submit``
returns a :class:`ServeFuture` immediately and the answer materializes when
the batcher flushes the batch containing the request.  The queue between
``submit`` and the batcher is where a production system meets overload, so
it is bounded: once ``max_depth`` requests are pending, further submissions
are rejected *with a reason* (:class:`QueueFullError` carries the depth and
the configured bound) instead of growing without limit — callers can shed
load or retry rather than watch latency climb.

Deadlines are absolute timestamps on the serving clock
(:func:`repro.serve._clock.now` — ``time.perf_counter`` unless a test
injects a fake).  An expired
request is never executed: ``drain`` completes its future with
:class:`DeadlineExceededError` and reports it so the server's stats count
it.  All operations are thread-safe — the queue is the hand-off point
between caller threads and the server's worker loop.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from . import _clock

__all__ = [
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "ServeFuture",
    "Request",
    "RequestQueue",
]


class ServeError(RuntimeError):
    """Base class for serving-layer errors."""


class QueueFullError(ServeError):
    """Submission rejected: the request queue is at its bound.

    ``reason`` spells out the rejection (depth vs. bound) so callers and
    logs never see a bare "queue full".
    """

    def __init__(self, depth: int, max_depth: int):
        self.depth = depth
        self.max_depth = max_depth
        self.reason = (f"queue holds {depth} pending requests, "
                       f"bounded at max_depth={max_depth}")
        super().__init__(f"rejected: {self.reason}")


class DeadlineExceededError(ServeError):
    """The request's deadline passed before it could be executed."""


class ServerClosedError(ServeError):
    """Submission rejected: the server has been closed."""


class ServeFuture:
    """Write-once result slot for one request.

    The consumer half of the contract: ``done()`` polls, ``result(timeout)``
    blocks until the server resolves the request (returning the value or
    raising the recorded exception).  The producer half (``set_result`` /
    ``set_exception``) is called exactly once by the serving loop.
    """

    def __init__(self):
        self._event = threading.Event()
        self._value: Any = None
        self._exception: BaseException | None = None
        #: The dataset ``graph_version`` the result was computed at, or
        #: ``None`` (unresolved, failed, or a version-less workload).
        #: Clients compare it against the submit-time version to detect
        #: results computed against stale topology — the streaming
        #: staleness contract (docs/streaming.md).
        self.graph_version: int | None = None
        #: Serving-clock instant the producer resolved this future, or
        #: ``None`` while pending (load generators read it to compute
        #: per-request latency under a virtual clock).
        self.resolved_at: float | None = None

    def done(self) -> bool:
        """True once the request has resolved (result or exception)."""
        return self._event.is_set()

    def set_result(self, value: Any, graph_version: int | None = None) -> None:
        """Resolve with a value (producer side; exactly once).

        ``graph_version`` stamps the result with the dataset version it
        was computed at (readable as ``future.graph_version``).
        """
        if self._event.is_set():
            raise ServeError("future already resolved")
        self._value = value
        self.graph_version = graph_version
        self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        """Resolve with an exception (producer side; exactly once)."""
        if self._event.is_set():
            raise ServeError("future already resolved")
        self._exception = exc
        self._event.set()

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; the recorded exception, or ``None``."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        return self._exception

    def result(self, timeout: float | None = None) -> Any:
        """Block until resolved; the value, or raise what the server set."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still pending")
        if self._exception is not None:
            raise self._exception
        return self._value


@dataclass
class Request:
    """One enqueued inference request.

    ``config_key`` is the :func:`~repro.serve.pool.config_key` hash of the
    request's :class:`~repro.api.RunConfig`; ``graph_key`` identifies the
    graph being queried (the whole dataset graph, or the hash of the
    requested node set) — together they form the micro-batcher's
    coalescing key.  ``kind`` is ``"nodes"`` (node-level logits),
    ``"graphs"`` (per-graph outputs for ``indices``), or ``"mutate"``
    (a :class:`~repro.stream.GraphDelta` application, carried in
    ``delta``).  ``deadline`` is an absolute serving-clock timestamp
    (:func:`repro.serve._clock.now`) or ``None``; expiry is inclusive
    (see :meth:`expired`).

    ``trace`` is the request's root :class:`~repro.obs.TraceContext`
    (``None`` unless tracing was on at submit); the pipeline stamps
    ``drained_at`` when the request leaves the queue so the
    ``queue_wait`` / ``batch`` span boundary is exact.
    """

    id: int
    config: Any  # RunConfig (kept untyped to avoid an api import cycle)
    config_key: str
    kind: str
    nodes: np.ndarray | None = None
    indices: np.ndarray | None = None
    graph_key: str = "full-graph"
    enqueued_at: float = 0.0
    deadline: float | None = None
    future: ServeFuture = field(default_factory=ServeFuture)
    delta: Any = None  # GraphDelta for kind == "mutate"
    expected_version: int | None = None  # mutate exactly-once guard
    strict_version: bool = False  # refuse (not stamp over) version gaps
    min_version: int | None = None  # version-pinned read (replica steering)
    trace: Any = None  # TraceContext when tracing is enabled
    drained_at: float = 0.0  # when the queue handed the request onward

    @property
    def batch_key(self) -> tuple[str, str, str]:
        """The micro-batching coalescing key (config × kind × graph)."""
        return (self.config_key, self.kind, self.graph_key)

    def expired(self, now: float) -> bool:
        """Whether the deadline (if any) has passed at time ``now``.

        The boundary is **inclusive**: at ``now == deadline`` the
        request is expired.  A deadline is the first instant the result
        is no longer useful, and an open-loop virtual clock stepping
        exactly onto it must agree with a wall clock that sailed past —
        the strict ``>`` it once used made that one instant disagree.
        """
        return self.deadline is not None and now >= self.deadline


class RequestQueue:
    """Bounded, thread-safe FIFO of :class:`Request` with deadline culling."""

    def __init__(self, max_depth: int = 256):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._items: deque[Request] = deque()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def push(self, request: Request, now: float | None = None) -> None:
        """Enqueue or reject-with-reason (:class:`QueueFullError`)."""
        now = _clock.now() if now is None else now
        with self._cond:
            if len(self._items) >= self.max_depth:
                raise QueueFullError(len(self._items), self.max_depth)
            request.enqueued_at = now
            self._items.append(request)
            self._cond.notify()

    def drain(self, now: float | None = None,
              max_items: int | None = None,
              on_expired: Callable[[Request], None] | None = None,
              ) -> list[Request]:
        """Pop up to ``max_items`` live requests, resolving expired ones.

        Expired requests get :class:`DeadlineExceededError` set on their
        future and are handed to ``on_expired`` (for stats) instead of
        being returned.
        """
        now = _clock.now() if now is None else now
        out: list[Request] = []
        with self._cond:
            while self._items and (max_items is None or len(out) < max_items):
                req = self._items.popleft()
                if req.expired(now):
                    req.future.set_exception(DeadlineExceededError(
                        f"request {req.id} missed its deadline by "
                        f"{now - req.deadline:.4f}s before execution"))
                    req.future.resolved_at = now
                    if on_expired is not None:
                        on_expired(req)
                    continue
                out.append(req)
        return out

    def wait_nonempty(self, timeout: float | None = None) -> bool:
        """Block until a request is queued (worker-loop idle wait)."""
        with self._cond:
            if self._items:
                return True
            return self._cond.wait(timeout)
