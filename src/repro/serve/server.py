"""The :class:`InferenceServer` — queue → batcher → warm pool → Session.

The serving pipeline in one object::

    submit(config, nodes=…)          # returns a ServeFuture immediately
      └─ RequestQueue                # bounded; rejects-with-reason when full
           └─ MicroBatcher           # coalesce by (config-hash, graph identity)
                └─ SessionPool       # warm Session per config (LRU)
                     └─ Session._predict_nodes / _predict_graphs

Node-level requests with the same config and the same queried graph
(the full dataset graph, or one exact node set) coalesce into a single
forward pass whose result fans out to every waiting future — the
repeated-query workload a serving tier actually sees.  Graph-level
requests are exploded into per-graph work units, deduplicated, and
bucketed by sequence length so one batch never pads small graphs to a
pathological length.

The server runs in two modes: *driven* (call :meth:`step` /
:meth:`run_until_idle` yourself — deterministic, what the tests, the
load generator and the benchmarks use) and *threaded*
(:meth:`start` / :meth:`stop` — a background worker drains the queue
with ``max_wait_s``-bounded sleeps).  Every request's latency and every
batch's occupancy land in :class:`ServerStats`, exposed as a
:meth:`stats` snapshot dict.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..obs import hooks as _hooks
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from . import _clock
from .batcher import BatchPolicy, MicroBatch, MicroBatcher, seq_len_bucket
from .pool import SessionPool, config_key
from .queue import (
    DeadlineExceededError,
    Request,
    RequestQueue,
    ServeFuture,
    ServerClosedError,
)

__all__ = ["latency_summary", "ServerStats", "InferenceServer"]


def latency_summary(latencies) -> dict:
    """Mean/p50/p95 of a latency sample, NaN-safe on empty input.

    Shared by per-server snapshots and the cluster-level merge so both
    report the same fields from the same math.
    """
    lat = np.asarray(latencies, dtype=np.float64)
    return {
        "latency_mean_s": float(lat.mean()) if lat.size else float("nan"),
        "latency_p50_s": (float(np.percentile(lat, 50))
                          if lat.size else float("nan")),
        "latency_p95_s": (float(np.percentile(lat, 95))
                          if lat.size else float("nan")),
    }


#: One-line help strings for the registry-mirrored server counters.
_COUNTER_HELP = {
    "submitted": "requests accepted into the serve queue",
    "completed": "requests resolved with a result",
    "rejected": "submissions refused (backpressure or closed)",
    "expired": "requests that missed their deadline",
    "failed": "requests resolved with an error",
    "batches": "micro-batches executed",
    "batched_requests": "requests executed inside micro-batches",
    "shared_computes": "requests answered from another request's forward",
    "mutations": "GraphDeltas applied",
    "mutations_ignored": "version-guarded duplicate delta deliveries",
}


@dataclass
class ServerStats:
    """Counters + sliding latency window for one server lifetime.

    Counting is dual-homed: the dataclass fields stay the source the
    snapshot dicts and tests read, and every :meth:`bump` also
    increments the matching ``repro_serve_*_total`` counter in the
    process-global :class:`~repro.obs.MetricsRegistry` (latencies land
    in the ``repro_serve_request_latency_seconds`` histogram), so the
    unified exporters see the same numbers without any test churn.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    batches: int = 0
    batched_requests: int = 0  # sum of batch occupancies
    shared_computes: int = 0   # requests answered from another's forward
    mutations: int = 0         # GraphDeltas applied
    mutations_ignored: int = 0  # version-guarded duplicate deliveries
    latencies: deque = field(default_factory=lambda: deque(maxlen=4096))
    # the deque is written by the worker thread and read by snapshot()
    # callers; iteration during append raises, so both sides lock
    _latency_lock: threading.Lock = field(default_factory=threading.Lock,
                                          repr=False)

    #: Counter fields summed when merging per-worker stats.
    COUNTER_FIELDS = ("submitted", "completed", "rejected", "expired",
                      "failed", "batches", "batched_requests",
                      "shared_computes", "mutations", "mutations_ignored")

    def __post_init__(self):
        registry = get_registry()
        self._obs_counters = {
            f: registry.counter(f"repro_serve_{f}_total", _COUNTER_HELP[f])
            for f in self.COUNTER_FIELDS}
        self._obs_latency = registry.histogram(
            "repro_serve_request_latency_seconds",
            "submit-to-complete latency per request")
        self._obs_occupancy = registry.histogram(
            "repro_serve_batch_occupancy",
            "requests per executed micro-batch",
            bounds=tuple(float(2 ** e) for e in range(0, 11)))

    def bump(self, field_name: str, n: int = 1) -> None:
        """Increment one counter field and its registry twin together."""
        setattr(self, field_name, getattr(self, field_name) + n)
        self._obs_counters[field_name].inc(n)

    def record_batch(self, occupancy: int) -> None:
        """Count one executed micro-batch of ``occupancy`` requests."""
        self.bump("batches")
        self.bump("batched_requests", occupancy)
        self._obs_occupancy.observe(occupancy)

    def record_latency(self, seconds: float) -> None:
        """Append one request's submit-to-complete latency sample."""
        with self._latency_lock:
            self.latencies.append(seconds)
        self._obs_latency.observe(seconds)

    @property
    def mean_occupancy(self) -> float:
        """Average requests per executed micro-batch (0.0 before any)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    def state_dict(self) -> dict:
        """Picklable raw state: counters + latency samples.

        What a cluster worker ships to the router for merging — unlike
        :meth:`snapshot` it keeps the raw latency list, because
        percentiles of percentiles are not percentiles.
        """
        with self._latency_lock:
            lat = list(self.latencies)
        state = {f: getattr(self, f) for f in self.COUNTER_FIELDS}
        state["latencies"] = lat
        return state

    @staticmethod
    def merge(states) -> dict:
        """Merge per-worker :meth:`state_dict` dicts into one snapshot.

        Counters sum; occupancy is re-derived from the summed totals;
        latency percentiles are computed over the concatenated samples.
        Returns the same shape as :meth:`snapshot`.
        """
        states = list(states)
        totals = {f: sum(s.get(f, 0) for s in states)
                  for f in ServerStats.COUNTER_FIELDS}
        latencies: list[float] = []
        for s in states:
            latencies.extend(s.get("latencies", ()))
        batches = totals["batches"]
        merged = {f: totals[f] for f in ServerStats.COUNTER_FIELDS
                  if f != "batched_requests"}
        merged["mean_batch_occupancy"] = round(
            totals["batched_requests"] / batches if batches else 0.0, 3)
        merged.update(latency_summary(latencies))
        return merged

    def snapshot(self) -> dict:
        """A plain-dict view (what ``repro serve``'s ``stats`` prints)."""
        with self._latency_lock:
            lat = list(self.latencies)
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "batches": self.batches,
            "mean_batch_occupancy": round(self.mean_occupancy, 3),
            "shared_computes": self.shared_computes,
            "mutations": self.mutations,
            "mutations_ignored": self.mutations_ignored,
            **latency_summary(lat),
        }


class _GraphScatter:
    """Reassembly state for one graph-level request split across batches."""

    def __init__(self, request: Request, num_slots: int):
        self.request = request
        self.outputs: list[np.ndarray | None] = [None] * num_slots
        self.remaining = num_slots

    def fill(self, slot: int, value: np.ndarray) -> bool:
        """Record one per-graph output; True once every slot is filled."""
        self.outputs[slot] = value
        self.remaining -= 1
        return self.remaining == 0


class InferenceServer:
    """Batched inference serving over warm :class:`~repro.api.Session`\\ s."""

    def __init__(self, pool: SessionPool | None = None,
                 policy: BatchPolicy | None = None,
                 max_queue_depth: int = 256, wal=None):
        # explicit None check: an *empty* SessionPool is falsy (len 0),
        # and replacing an injected-but-empty pool would silently drop
        # its seeded datasets and checkpoint registrations
        self.pool = pool if pool is not None else SessionPool()
        # optional MutationLog: every applied delta is appended (write-
        # ahead) and snapshotted at the log's cadence.  Skipped when the
        # session or its dataset already self-logs through the same log.
        self.wal = wal
        self.policy = policy or BatchPolicy()
        self.queue = RequestQueue(max_depth=max_queue_depth)
        self.batcher = MicroBatcher(self.policy)
        self.stats = ServerStats()
        self._next_id = 0
        self._closed = False
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._submit_lock = threading.Lock()

    # -- intake ----------------------------------------------------------- #
    def submit(self, config, nodes: np.ndarray | None = None,
               indices: np.ndarray | None = None,
               timeout: float | None = None,
               now: float | None = None, trace=None,
               min_version: int | None = None) -> ServeFuture:
        """Enqueue one inference request; returns its future immediately.

        Node-level configs take ``nodes`` (a node-id array; ``None`` =
        full-graph logits), graph-level configs take ``indices`` (graph
        ids; ``None`` = every graph) — the same contract as
        :meth:`repro.api.Session.predict`.  ``timeout`` (seconds from
        submission) sets the request deadline: a request still queued
        past it resolves with :class:`DeadlineExceededError` instead of
        executing.  Raises :class:`~repro.serve.queue.QueueFullError`
        (backpressure) or :class:`ServerClosedError` synchronously.

        ``trace`` optionally parents the request's trace under an
        upstream :class:`~repro.obs.TraceContext` (the cluster router's
        dispatch span, when the request crossed a process boundary).

        ``min_version`` pins the read to a graph version: the request
        is rejected synchronously (``ValueError``) if the served
        dataset has not reached it — a single server always serves the
        newest version, so a satisfiable pin is a no-op here; the
        cluster tier uses the same field to steer reads to replicas.
        """
        now = _clock.now() if now is None else now
        kind = "nodes" if config.data.task_kind == "node" else "graphs"
        if min_version is not None:
            min_version = int(min_version)
            if min_version < 0:
                raise ValueError(
                    f"min_version must be non-negative, got {min_version}")
            current = self.graph_version(config)
            if min_version > current:
                raise ValueError(
                    f"min_version {min_version} is ahead of the served "
                    f"graph_version {current}")
        if kind == "nodes" and indices is not None:
            raise ValueError("indices= applies to graph-level configs; "
                             "use nodes= for node-level configs")
        if kind == "graphs" and nodes is not None:
            raise ValueError("nodes= applies to node-level configs; "
                             "use indices= for graph-level configs")
        if nodes is not None:
            nodes = np.asarray(nodes, dtype=np.int64)
        if indices is not None:
            indices = np.asarray(indices, dtype=np.int64)
        # the closed check and the push are one atomic step: close() sets
        # _closed under this lock and then drains, so a request can never
        # slip into the queue after the final drain and hang its future
        with self._submit_lock:
            if self._closed:
                raise ServerClosedError(
                    "server is closed; submissions rejected")
            request = Request(
                id=self._next_id, config=config,
                config_key=config_key(config),
                kind=kind, nodes=nodes, indices=indices,
                graph_key=self._graph_key(nodes),
                deadline=None if timeout is None else now + timeout,
                min_version=min_version,
            )
            tracer = get_tracer()
            if tracer.enabled:
                request.trace = tracer.new_context(parent=trace)
            self._next_id += 1
            try:
                self.queue.push(request, now=now)
            except Exception:
                self.stats.bump("rejected")
                raise
        self.stats.bump("submitted")
        return request.future

    def submit_delta(self, config, delta, timeout: float | None = None,
                     now: float | None = None,
                     expected_version: int | None = None,
                     trace=None, strict_version: bool = False) -> ServeFuture:
        """Enqueue a :class:`~repro.stream.GraphDelta` mutation request.

        The delta shares the request queue with inference submissions,
        so it is **serialized against in-flight batches**: every batch
        drained before it executes against the pre-delta graph, every
        request after it sees the post-delta graph — a mutation never
        lands inside a half-executed batch.  The returned future
        resolves with the new ``graph_version`` (also stamped on
        ``future.graph_version``).

        ``expected_version`` is the exactly-once guard for cluster
        redelivery: the version this delta is expected to produce.  A
        worker whose dataset already reached it treats the delivery as
        a duplicate and acks without re-applying (node additions are
        not idempotent, so re-application must be impossible).

        ``strict_version`` tightens the guard for WAL-tailing replicas:
        a delta whose ``expected_version`` is more than one ahead of
        the dataset fails instead of being applied and stamped across
        the gap — a replica missing history must report its true
        version, never claim the head while serving a partial graph.
        """
        now = _clock.now() if now is None else now
        if config.data.task_kind != "node":
            raise ValueError(
                "submit_delta supports node-level configs; graph-level "
                "datasets are collections of independent frozen graphs")
        with self._submit_lock:
            if self._closed:
                raise ServerClosedError(
                    "server is closed; submissions rejected")
            request = Request(
                id=self._next_id, config=config,
                config_key=config_key(config),
                kind="mutate", delta=delta,
                expected_version=expected_version,
                strict_version=strict_version,
                deadline=None if timeout is None else now + timeout,
            )
            tracer = get_tracer()
            if tracer.enabled:
                request.trace = tracer.new_context(parent=trace)
            self._next_id += 1
            try:
                self.queue.push(request, now=now)
            except Exception:
                self.stats.bump("rejected")
                raise
        self.stats.bump("submitted")
        return request.future

    def graph_version(self, config) -> int:
        """The served dataset's current mutation version for ``config``.

        Acquires (and warms, on a cold pool) the config's session — the
        version is a property of the live dataset, not of the server.
        """
        return self.pool.acquire(config).graph_version

    @staticmethod
    def _graph_key(nodes: np.ndarray | None) -> str:
        """Identity of the queried graph: full graph, or this node set.

        The exact array (values *and* order) is hashed — requests
        coalesce only when their answers are bitwise interchangeable.
        """
        if nodes is None:
            return "full-graph"
        return hashlib.sha1(nodes.tobytes()).hexdigest()[:16]

    # -- scheduling ------------------------------------------------------- #
    def step(self, now: float | None = None, force_flush: bool = False) -> int:
        """One scheduling round: drain → coalesce → execute ready batches.

        Returns the number of requests completed (including failures).
        ``now`` threads a virtual clock through for deterministic
        open-loop simulation; default is the serving clock.

        Mutations are serialization points: when the drain hits a
        ``"mutate"`` request, everything batched so far is force-flushed
        and executed against the pre-delta graph, then the delta
        applies, then draining resumes — so no micro-batch ever spans a
        topology change, and per-round memoized forwards never leak
        across a mutation.
        """
        now = _clock.now() if now is None else now
        done = 0
        # a node group larger than max_batch_size flushes as several
        # chunks, but its items are identical queries by construction —
        # memoize the forward within this round so each key computes once
        node_results: dict = {}
        for request in self.queue.drain(now=now, on_expired=self._on_expired):
            request.drained_at = now
            if request.kind == "mutate":
                done += self._run_ready(now, True, node_results)
                node_results.clear()  # pre-delta forwards are stale now
                done += self._execute_mutation(request, now)
            elif request.kind == "nodes":
                self.batcher.add(request.batch_key, request,
                                 enqueued_at=request.enqueued_at,
                                 deadline=request.deadline)
            else:
                self._expand_graph_request(request)
        done += self._run_ready(now, force_flush, node_results)
        return done

    def _run_ready(self, now: float, force: bool, node_results: dict) -> int:
        """Execute every batch the batcher considers ready."""
        done = 0
        for batch in self.batcher.ready(now=now, force=force):
            done += self._execute(batch, now, node_results)
        return done

    def run_until_idle(self, now: float | None = None) -> int:
        """Drain and execute everything pending; returns completions."""
        done = 0
        while len(self.queue) or len(self.batcher):
            done += self.step(now=now, force_flush=True)
        return done

    def _on_expired(self, request: Request) -> None:
        self.stats.bump("expired")

    def _expand_graph_request(self, request: Request) -> None:
        """Split a graph-level request into bucketed per-graph work units."""
        try:
            session = self.pool.acquire(request.config, key=request.config_key)
            ds = session.dataset
            idx = (np.arange(ds.num_graphs, dtype=np.int64)
                   if request.indices is None else request.indices)
            sizes = [ds.graphs[int(i)].num_nodes for i in idx]
        except Exception as exc:  # bad indices, dataset mismatch, …
            request.future.set_exception(exc)
            self.stats.bump("failed")
            return
        scatter = _GraphScatter(request, num_slots=len(idx))
        if not len(idx):
            request.future.set_result(
                np.empty((0, 0), dtype=np.float64))
            self.stats.bump("completed")
            return
        for slot, (i, size) in enumerate(zip(idx, sizes)):
            key = (request.config_key, "graphs", seq_len_bucket(size))
            self.batcher.add(key, (scatter, slot, int(i)),
                             enqueued_at=request.enqueued_at,
                             deadline=request.deadline)

    # -- execution -------------------------------------------------------- #
    def _execute(self, batch: MicroBatch, now: float,
                 node_results: dict | None = None) -> int:
        if batch.key[1] == "nodes":
            return self._execute_nodes(batch, now,
                                       {} if node_results is None
                                       else node_results)
        return self._execute_graphs(batch, now)

    def _execute_nodes(self, batch: MicroBatch, now: float,
                       node_results: dict) -> int:
        """One forward for the whole group, fanned out to every future."""
        requests: list[Request] = batch.items
        self.stats.record_batch(len(requests))
        first = requests[0]
        tracer = get_tracer()
        tracing = tracer.enabled and first.trace is not None
        timed = tracing or _hooks.active("on_batch_end")
        _hooks.fire("on_batch_start", key=batch.key, size=len(requests))
        shared = batch.key in node_results
        t0 = _clock.now() if timed else 0.0
        if shared:
            logits, version = node_results[batch.key]
        else:
            try:
                session = self.pool.acquire(first.config,
                                            key=first.config_key)
                # activate the first request's context so spans recorded
                # deeper in the stack (chunk fetches, compiled replay)
                # nest under this request's trace
                with (tracer.activate(first.trace) if tracing
                      else nullcontext()):
                    logits = session.predict(nodes=first.nodes)
                version = session.graph_version
            except Exception as exc:
                return self._fail_all(requests, exc)
            node_results[batch.key] = (logits, version)
        t1 = _clock.now() if timed else 0.0
        _hooks.fire("on_batch_end", key=batch.key, size=len(requests),
                    seconds=t1 - t0)
        if tracing:
            for request in requests:
                if request.trace is None:
                    continue
                tracer.record("batch", request.drained_at, batch.flushed_at,
                              parent=request.trace,
                              attrs={"size": len(requests)})
                tracer.record("compute", t0, t1, parent=request.trace,
                              attrs={"shared": shared})
        done = 0
        for request in requests:
            # fan-out: every future owns its own copy — the pristine
            # original stays in the memo, immune to client mutation
            done += self._complete(request, logits.copy(), now,
                                   version=version)
        self.stats.bump("shared_computes", len(requests) - (0 if shared else 1))
        return done

    def _execute_graphs(self, batch: MicroBatch, now: float) -> int:
        """Dedup graph indices, run one predict, scatter to requests."""
        items: list[tuple[_GraphScatter, int, int]] = batch.items
        self.stats.record_batch(len(items))
        first = items[0][0].request
        unique = sorted({i for _, _, i in items})
        tracer = get_tracer()
        roots: list[Request] = []
        if tracer.enabled:
            seen_scatters: set[int] = set()
            for scatter, _, _ in items:
                if (id(scatter) in seen_scatters
                        or scatter.request.trace is None):
                    continue
                seen_scatters.add(id(scatter))
                roots.append(scatter.request)
        tracing = bool(roots)
        timed = tracing or _hooks.active("on_batch_end")
        _hooks.fire("on_batch_start", key=batch.key, size=len(items))
        t0 = _clock.now() if timed else 0.0
        try:
            session = self.pool.acquire(first.config, key=first.config_key)
            with (tracer.activate(first.trace) if tracing
                  and first.trace is not None else nullcontext()):
                outs = session.predict(
                    indices=np.asarray(unique, dtype=np.int64))
            version = session.graph_version
        except Exception as exc:
            seen: set[int] = set()
            failed = 0
            for scatter, _, _ in items:
                if id(scatter) in seen:
                    continue
                seen.add(id(scatter))
                if not scatter.request.future.done():
                    scatter.request.future.set_exception(exc)
                    self.stats.bump("failed")
                    failed += 1
            return failed
        t1 = _clock.now() if timed else 0.0
        _hooks.fire("on_batch_end", key=batch.key, size=len(items),
                    seconds=t1 - t0)
        for request in roots:
            tracer.record("batch", request.drained_at, batch.flushed_at,
                          parent=request.trace,
                          attrs={"size": len(items)})
            tracer.record("compute", t0, t1, parent=request.trace,
                          attrs={"graphs": len(unique)})
        by_index = {i: outs[pos] for pos, i in enumerate(unique)}
        self.stats.bump("shared_computes", len(items) - len(unique))
        done = 0
        for scatter, slot, i in items:
            if scatter.fill(slot, by_index[i].copy()):
                done += self._complete(
                    scatter.request, np.stack(scatter.outputs), now,
                    version=version)
        return done

    def _execute_mutation(self, request: Request, now: float) -> int:
        """Apply one GraphDelta through the config's warm session.

        Every pooled session sharing the dataset object observes the
        change via the bumped ``graph_version`` (their cached contexts
        miss lazily).  With ``expected_version`` set, a dataset already
        at (or past) it means this is a redelivered duplicate — acked
        with the current version, never re-applied.
        """
        try:
            session = self.pool.acquire(request.config,
                                        key=request.config_key)
            expected = request.expected_version
            log = self.wal
            if log is not None and (
                    getattr(session, "_wal", None) is log
                    or getattr(session.dataset, "wal", None) is log):
                log = None  # the session/dataset self-logs; no double append
            if expected is not None and session.graph_version >= expected:
                self.stats.bump("mutations_ignored")
            else:
                if (request.strict_version and expected is not None
                        and int(session.graph_version) != expected - 1):
                    from ..stream.wal import WalError

                    raise WalError(
                        f"version gap: dataset at "
                        f"{session.graph_version}, delta produces "
                        f"{expected} — refusing to apply across "
                        f"missing versions")
                if log is not None:
                    # refuse an unapplyable delta before the durable
                    # append — a poisoned record would wedge every
                    # later append and replay of this log
                    request.delta.validate(session.dataset)
                    log.append(request.delta,
                               expected if expected is not None
                               else int(session.graph_version) + 1)
                session.apply_delta(request.delta)
                if (expected is not None
                        and session.graph_version < expected):
                    # a previously failed apply left this replica behind;
                    # snap to the authority's version so later redelivery
                    # guards stay aligned (without this, a requeued delta
                    # could be applied twice — node additions are not
                    # idempotent)
                    session.dataset.graph_version = expected
                if log is not None:
                    log.maybe_snapshot(session.dataset)
                self.stats.bump("mutations")
            version = session.graph_version
        except Exception as exc:
            if not request.future.done():
                request.future.set_exception(exc)
                self.stats.bump("failed")
            return 1
        return self._complete(request, version, now, version=version)

    def _complete(self, request: Request, value, now: float,
                  version: int | None = None) -> int:
        if request.future.done():  # e.g. already expired elsewhere
            return 0
        if request.expired(now):
            request.future.set_exception(DeadlineExceededError(
                f"request {request.id} completed after its deadline; "
                "result dropped"))
            request.future.resolved_at = now
            self.stats.bump("expired")
            return 1
        request.future.set_result(value, graph_version=version)
        request.future.resolved_at = now
        self.stats.bump("completed")
        self.stats.record_latency(now - request.enqueued_at)
        tracer = get_tracer()
        if tracer.enabled and request.trace is not None:
            drained = request.drained_at or request.enqueued_at
            tracer.record("queue_wait", request.enqueued_at, drained,
                          parent=request.trace)
            tracer.record("request", request.enqueued_at, now,
                          ctx=request.trace,
                          attrs={"id": request.id, "kind": request.kind})
        return 1

    def _fail_all(self, requests: list[Request], exc: Exception) -> int:
        for request in requests:
            if not request.future.done():
                request.future.set_exception(exc)
                self.stats.bump("failed")
        return len(requests)

    # -- threaded mode ---------------------------------------------------- #
    def start(self) -> "InferenceServer":
        """Run the scheduling loop on a background worker thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._worker_loop,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def _worker_loop(self) -> None:
        while not self._stop_event.is_set():
            self.step()
            due = self.batcher.next_flush_due()
            if due is not None:
                if due > 0:
                    self._stop_event.wait(min(due, 0.05))
            else:
                self.queue.wait_nonempty(timeout=0.05)
        self.run_until_idle()

    def stop(self) -> None:
        """Stop the worker thread, draining everything still pending."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None

    def close(self) -> None:
        """Reject new submissions, drain pending work, stop the worker."""
        with self._submit_lock:
            self._closed = True
        if self._thread is not None:
            self.stop()
        # catch anything enqueued between the worker's final drain and
        # the _closed flag taking effect
        self.run_until_idle()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection ---------------------------------------------------- #
    def stats_snapshot(self) -> dict:
        """Counters + occupancy + latency percentiles + pool stats."""
        snap = self.stats.snapshot()
        snap["pool_sessions"] = len(self.pool)
        snap["pool_hit_rate"] = round(self.pool.stats.hit_rate, 4)
        snap["pool_evictions"] = self.pool.stats.evictions
        if self.wal is not None:
            snap["wal_records"] = self.wal.record_count
            snap["wal_last_version"] = self.wal.last_version
        return snap
