"""Worker side of the serving cluster: the process that runs inference.

Each cluster worker owns one :class:`~repro.serve.InferenceServer` over a
warm :class:`~repro.serve.SessionPool` and speaks a small message
protocol with the router over a duplex pipe:

* ``("work", WorkUnit)`` — one inference request (arrays framed with
  :func:`repro.distributed.pack_array`, configs as their canonical JSON);
* ``("ping", seq)`` → ``("pong", seq, worker_id)`` — heartbeat;
* ``("stats", seq)`` → ``("stats", seq, worker_id, state)`` — raw
  :meth:`~repro.serve.server.ServerStats.state_dict` + pool counters +
  the worker's :meth:`~repro.obs.MetricsRegistry.state_dict` for
  cluster-level merging;
* ``("trace", enabled)`` — toggle span collection in the worker (the
  router broadcasts it so ``trace on`` reaches the whole fleet);
* ``("shutdown",)`` → drain, ``("bye", worker_id)``, exit.

The wire format is versioned (:data:`WIRE_PROTOCOL_VERSION`): the
router stamps the version it speaks into each :class:`WorkerInit` and
the worker refuses to start on a mismatch — a stale worker binary
silently dropping the trace field would be worse than a loud error.

The loop batches naturally: it keeps draining the pipe while messages
are available and only executes once the pipe goes momentarily quiet,
so every request that arrived in one burst coalesces inside the
worker's micro-batcher exactly as it would in a single-process server.

Two :class:`WorkerHandle` implementations wrap the protocol for the
cluster: :class:`ProcessWorker` runs :func:`worker_main` in a real
``multiprocessing`` child (spawn-safe: the entry point is a top-level
function and everything shipped to it is picklable), and
:class:`InlineWorker` runs the identical :class:`WorkerRuntime` in
process — deterministic for tests, with explicit failure injection
(``fail()``) for death/requeue scenarios.
"""

from __future__ import annotations

import multiprocessing
import pickle
from collections import deque
from dataclasses import dataclass, field

from ..distributed.comm import pack_array, unpack_array
from ..obs.metrics import get_registry
from ..obs.trace import TraceContext, get_tracer, set_tracing
from .batcher import BatchPolicy
from .pool import SessionPool
from .server import InferenceServer

__all__ = [
    "WIRE_PROTOCOL_VERSION",
    "WorkUnit",
    "WorkResult",
    "WorkerInit",
    "WorkerRuntime",
    "worker_main",
    "ProcessWorker",
    "InlineWorker",
]

#: Version of the router↔worker pipe protocol.  v2 added the optional
#: ``trace`` field on :class:`WorkUnit`, ``spans`` on
#: :class:`WorkResult`, the ``("trace", enabled)`` message, and the
#: ``"obs"`` key in the stats reply.  v3 added ``wal_tails`` on
#: :class:`WorkerInit` (read-replica workers tailing a
#: :class:`~repro.stream.MutationLog`) and a fourth ``versions``
#: element on pong replies — ``{config_json: graph_version}`` for every
#: tailed config — which the router folds into its replica-lag view.
WIRE_PROTOCOL_VERSION = 3


@dataclass(frozen=True)
class WorkUnit:
    """One routed request, in wire form (picklable, process-agnostic).

    ``config_json`` is the request's canonical
    :meth:`~repro.api.RunConfig.to_json` string (the worker caches the
    parse per distinct config); ``payload`` is the node-id / graph-index
    array framed by :func:`repro.distributed.pack_array` (``None`` for
    the full node / graph set) — or, for ``kind == "mutate"``, a
    :meth:`~repro.stream.GraphDelta.to_payload` byte string.
    ``expected_version`` is the mutation exactly-once guard: the
    ``graph_version`` the delta produces; a worker already at (or past)
    it acks a redelivery without re-applying.

    ``trace`` (protocol v2) is the router's preallocated dispatch-span
    context in :meth:`~repro.obs.TraceContext.to_wire` form — the
    worker parents its request spans under it, stitching one span tree
    across the process boundary.  ``None`` when tracing is off.
    """

    id: int
    config_json: str
    kind: str  # "nodes" | "graphs" | "mutate"
    payload: bytes | None = None
    expected_version: int | None = None
    trace: tuple | None = None  # (trace_id, span_id) wire context


@dataclass(frozen=True)
class WorkResult:
    """One unit's outcome: framed logits on success, an error otherwise.

    ``graph_version`` carries the dataset version the result was
    computed at (stamped by the worker's server) back across the pipe,
    so the router can re-stamp the caller's future — the cluster end of
    the streaming staleness contract.  ``spans`` (protocol v2) carries
    the worker-side trace spans of this unit's trace as
    :meth:`~repro.obs.Span.to_dict` rows, for the router to
    :meth:`~repro.obs.Tracer.ingest` — empty when tracing is off.
    """

    id: int
    worker_id: str
    ok: bool
    payload: bytes | None = None
    error: str | None = None
    graph_version: int | None = None
    spans: tuple = ()

    def value(self):
        """Decode the framed logits array (success results only)."""
        if not self.ok:
            raise ValueError(f"result {self.id} is an error: {self.error}")
        return unpack_array(self.payload)


@dataclass(frozen=True)
class WorkerInit:
    """Everything a worker needs at startup, shipped once per worker.

    ``datasets`` holds ``(config_json, pickled_dataset)`` pairs — the
    cluster serializes each distinct dataset **once** and broadcasts the
    same bytes to every worker, which installs them into its pool via
    :meth:`~repro.serve.SessionPool.put_dataset` so admission never
    re-synthesizes broadcast data.  ``stores`` holds
    ``(config_json, store_path)`` pairs instead of pickled bytes: each
    worker opens the shared :mod:`repro.store` directory itself
    (read-only — deltas overlay in worker RAM, the shared files stay
    pristine), so startup ships O(manifest) bytes per worker no matter
    how large the dataset is.  ``checkpoints`` maps configs (by JSON)
    to checkpoint paths loaded on admission.

    ``protocol`` stamps the wire version the router speaks
    (:data:`WIRE_PROTOCOL_VERSION`); the runtime refuses a mismatch.
    ``trace_enabled`` makes a worker spawned while tracing is already
    on start collecting immediately (later toggles arrive as
    ``("trace", enabled)`` messages).

    ``wal_tails`` (protocol v3) makes the worker a **read replica**:
    ``(config_json, wal_path)`` pairs, each opened as a follower-mode
    :class:`~repro.stream.MutationLog` and polled whenever the worker
    goes idle — new records are applied through the exact mutate path
    (version-guarded, exactly once), so the replica converges on the
    primary's ``graph_version`` at a lag bounded by its poll interval.
    """

    worker_id: str
    pool_size: int = 4
    max_batch_size: int = 32
    max_wait_s: float = 0.0
    queue_depth: int = 4096
    datasets: tuple = ()      # ((config_json, dataset_blob), ...)
    stores: tuple = ()        # ((config_json, store_path), ...)
    checkpoints: tuple = ()   # ((config_json, path), ...)
    protocol: int = WIRE_PROTOCOL_VERSION
    trace_enabled: bool = False
    wal_tails: tuple = ()     # ((config_json, wal_path), ...)


class WorkerRuntime:
    """The inference state a worker drives: pool + server + config cache.

    Shared verbatim by the process worker loop and the inline handle so
    both execute requests through exactly the same code path.
    """

    def __init__(self, init: WorkerInit):
        from ..api import RunConfig

        if init.protocol != WIRE_PROTOCOL_VERSION:
            raise ValueError(
                f"worker {init.worker_id}: wire protocol mismatch — "
                f"router speaks v{init.protocol}, this worker speaks "
                f"v{WIRE_PROTOCOL_VERSION}")
        self.worker_id = init.worker_id
        self.pool = SessionPool(max_sessions=init.pool_size)
        for cfg_json, blob in init.datasets:
            self.pool.put_dataset(RunConfig.from_json(cfg_json),
                                  pickle.loads(blob))
        for cfg_json, store_path in init.stores:
            from ..store import open_store

            self.pool.put_dataset(RunConfig.from_json(cfg_json),
                                  open_store(store_path))
        for cfg_json, path in init.checkpoints:
            self.pool.add_checkpoint(RunConfig.from_json(cfg_json), path)
        self.server = InferenceServer(
            pool=self.pool,
            policy=BatchPolicy(max_batch_size=init.max_batch_size,
                               max_wait_s=init.max_wait_s),
            max_queue_depth=init.queue_depth)
        self._configs: dict[str, object] = {}  # config_json -> RunConfig
        self._tails: list = []
        for cfg_json, wal_path in init.wal_tails:
            from ..stream import MutationLog

            # prime=False: the cursor starts at byte 0, so the boot
            # poll below applies the log's entire existing backlog —
            # a replica joining a long-lived WAL must replay history,
            # not just watch new records arrive
            self._tails.append(
                (cfg_json, MutationLog(wal_path, mode="r", prime=False)))
        if self._tails:
            self.poll_wal()  # catch up to the log head before serving

    def _config_for(self, cfg_json: str):
        from ..api import RunConfig

        config = self._configs.get(cfg_json)
        if config is None:
            config = RunConfig.from_json(cfg_json)
            self._configs[cfg_json] = config
        return config

    def poll_wal(self) -> int:
        """Apply any WAL records appended since the last poll (replicas).

        Each new record goes through the server's version-guarded
        mutate path, so a record the replica somehow already holds is
        acked without re-application.  Returns the number of records
        applied; 0 for non-replica workers.
        """
        applied = 0
        for cfg_json, log in self._tails:
            config = self._config_for(cfg_json)
            for version, delta in log.tail():
                # strict: a replica must never be stamped across a
                # version gap — a record it cannot apply in sequence
                # fails loudly and the replica's reported version
                # (and therefore its lag) stays honest
                self.server.submit_delta(config, delta,
                                         expected_version=version,
                                         strict_version=True)
                applied += 1
        if applied:
            self.server.run_until_idle()
        return applied

    def versions(self) -> dict:
        """``{config_json: graph_version}`` for every tailed config.

        What a replica's pong carries (protocol v3) so the router can
        measure replica lag; empty for primary workers — the router
        already knows the authoritative version it assigned them.
        """
        return {cfg_json: self.server.graph_version(
                    self._config_for(cfg_json))
                for cfg_json, _ in self._tails}

    def submit(self, unit: WorkUnit):
        """Enqueue one unit; returns ``(unit, future_or_error_result)``.

        Submission errors (bad payloads, unknown configs) resolve to an
        error :class:`WorkResult` immediately instead of killing the
        worker loop.
        """
        try:
            config = self._config_for(unit.config_json)
            # the router's preallocated dispatch span parents this
            # worker's request spans — one tree, two processes
            parent = TraceContext.from_wire(unit.trace)
            if unit.kind == "mutate":
                from ..stream import GraphDelta

                future = self.server.submit_delta(
                    config, GraphDelta.from_payload(unit.payload),
                    expected_version=unit.expected_version,
                    trace=parent)
            else:
                payload = (None if unit.payload is None
                           else unpack_array(unit.payload))
                kwargs = ({"nodes": payload} if unit.kind == "nodes"
                          else {"indices": payload})
                future = self.server.submit(config, trace=parent, **kwargs)
        except Exception as exc:
            return unit, WorkResult(id=unit.id, worker_id=self.worker_id,
                                    ok=False, error=repr(exc))
        return unit, future

    def execute(self, pending) -> list[WorkResult]:
        """Run everything submitted so far; one result per pending unit.

        With tracing on, the spans each unit's trace produced here are
        removed from the worker's buffer and shipped back on its
        result (:attr:`WorkResult.spans`) for the router to ingest.
        """
        self.server.run_until_idle()
        tracer = get_tracer()
        span_map: dict[str, list] = {}
        if tracer.enabled:
            wanted = {unit.trace[0] for unit, _ in pending
                      if unit.trace is not None}
            for row in tracer.take(wanted):
                span_map.setdefault(row["trace_id"], []).append(row)
        results = []
        for unit, fut in pending:
            spans = (() if unit.trace is None
                     else tuple(span_map.get(unit.trace[0], ())))
            if isinstance(fut, WorkResult):  # submission already failed
                results.append(fut)
                continue
            exc = fut.exception(timeout=0)
            if exc is not None:
                results.append(WorkResult(id=unit.id,
                                          worker_id=self.worker_id,
                                          ok=False, error=repr(exc),
                                          spans=spans))
            else:
                results.append(WorkResult(id=unit.id,
                                          worker_id=self.worker_id, ok=True,
                                          payload=pack_array(fut.result()),
                                          graph_version=fut.graph_version,
                                          spans=spans))
        return results

    def state(self) -> dict:
        """Raw stats for cluster merging: server state_dict + pool view.

        ``"obs"`` carries this process's whole
        :meth:`~repro.obs.MetricsRegistry.state_dict`; its ``source``
        id lets the router's merge count an inline worker (sharing the
        router's registry) exactly once.
        """
        return {
            "worker_id": self.worker_id,
            "server": self.server.stats.state_dict(),
            "obs": get_registry().state_dict(),
            "pool": {
                "sessions": len(self.pool),
                "hits": self.pool.stats.hits,
                "misses": self.pool.stats.misses,
                "evictions": self.pool.stats.evictions,
                "checkpoint_loads": self.pool.stats.checkpoint_loads,
            },
        }


def worker_main(init: WorkerInit, conn) -> None:
    """Entry point of one worker process (top-level, spawn-safe).

    Drains the pipe while messages are available, executes the batch
    when it goes quiet, and answers heartbeats/stats in between.  Exits
    on ``("shutdown",)`` or when the router end of the pipe closes.
    """
    runtime = WorkerRuntime(init)
    if init.trace_enabled:
        set_tracing(True)
    pending: list = []
    running = True
    while running:
        try:
            ready = conn.poll(0.0 if pending else 0.2)
        except (EOFError, OSError):
            break
        if ready:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "work":
                pending.append(runtime.submit(msg[1]))
            elif kind == "ping":
                conn.send(("pong", msg[1], init.worker_id,
                           runtime.versions()))
            elif kind == "stats":
                conn.send(("stats", msg[1], init.worker_id, runtime.state()))
            elif kind == "trace":
                set_tracing(msg[1])
            elif kind == "shutdown":
                running = False
            continue  # keep draining so bursts coalesce into one batch
        if pending:
            for result in runtime.execute(pending):
                conn.send(("result", result))
            pending = []
        elif runtime._tails:
            runtime.poll_wal()  # idle replica: catch up on the log
    if pending:  # answer work accepted before the shutdown message
        for result in runtime.execute(pending):
            try:
                conn.send(("result", result))
            except (BrokenPipeError, OSError):
                break
    try:
        conn.send(("bye", init.worker_id))
    except (BrokenPipeError, OSError):
        pass
    conn.close()


class ProcessWorker:
    """A worker running :func:`worker_main` in a spawned child process."""

    def __init__(self, init: WorkerInit, start_method: str = "spawn"):
        self.id = init.worker_id
        ctx = multiprocessing.get_context(start_method)
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=worker_main, args=(init, child),
                                   name=f"repro-serve-{init.worker_id}",
                                   daemon=True)
        self.process.start()
        child.close()  # our copy; the child owns its end now

    def send(self, msg) -> None:
        """Ship one protocol message (raises if the pipe is broken)."""
        self.conn.send(msg)

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a message (or EOF) is readable within ``timeout``."""
        try:
            return self.conn.poll(timeout)
        except (EOFError, OSError):
            return False

    def recv(self):
        """Read one protocol message (raises EOFError on a closed pipe)."""
        return self.conn.recv()

    def alive(self) -> bool:
        """Whether the child process is still running."""
        return self.process.is_alive()

    def terminate(self) -> None:
        """Hard-kill the child and reap it."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        self.conn.close()

    def join(self, timeout: float | None = None) -> None:
        """Wait for a clean exit."""
        self.process.join(timeout)


class InlineWorker:
    """An in-process worker speaking the same protocol, for determinism.

    ``auto=True`` (the default, what ``backend="inline"`` clusters use)
    executes buffered work lazily whenever the cluster polls.  With
    ``auto=False`` a test drives :meth:`step_worker` explicitly, which
    makes death/requeue interleavings exact: :meth:`fail` simulates a
    crash, optionally *holding* already-computed results
    (``hold_results=True``) to model a pipe whose data arrives after the
    death was detected — the duplicate-delivery scenario.
    """

    def __init__(self, init: WorkerInit, auto: bool = True):
        self.id = init.worker_id
        self.auto = auto
        self.runtime = WorkerRuntime(init)
        self._inbox: deque = deque()
        self._outbox: deque = deque()
        self._held: deque = deque()
        self._pending: list = []
        self._dead = False
        self._stopped = False
        self.units_routed: list[WorkUnit] = []  # every unit sent here
        self.units_seen: list[WorkUnit] = []    # every unit executed here

    def send(self, msg) -> None:
        """Buffer one protocol message (raises once the worker died)."""
        if self._dead:
            raise BrokenPipeError(f"worker {self.id} is dead")
        if msg[0] == "work":
            self.units_routed.append(msg[1])
        self._inbox.append(msg)

    def step_worker(self) -> None:
        """Process buffered messages, then execute the accumulated batch."""
        if self._dead:
            return
        while self._inbox:
            msg = self._inbox.popleft()
            kind = msg[0]
            if kind == "work":
                self.units_seen.append(msg[1])
                self._pending.append(self.runtime.submit(msg[1]))
            elif kind == "ping":
                self._outbox.append(("pong", msg[1], self.id,
                                     self.runtime.versions()))
            elif kind == "stats":
                self._outbox.append(("stats", msg[1], self.id,
                                     self.runtime.state()))
            elif kind == "trace":
                set_tracing(msg[1])  # shares the process-global tracer
            elif kind == "shutdown":
                self._stopped = True
        if self._pending:
            for result in self.runtime.execute(self._pending):
                self._outbox.append(("result", result))
            self._pending = []
        elif self.runtime._tails:
            self.runtime.poll_wal()  # idle replica: catch up on the log
        if self._stopped:
            self._outbox.append(("bye", self.id))
            self._dead = True

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a reply is readable (auto mode executes lazily)."""
        if self.auto and not self._dead:
            self.step_worker()
        return bool(self._outbox)

    def recv(self):
        """Read one buffered reply."""
        return self._outbox.popleft()

    def alive(self) -> bool:
        """False once the worker failed or shut down."""
        return not self._dead

    def fail(self, deliver_pending: bool = False,
             hold_results: bool = False) -> None:
        """Simulate a crash.

        ``deliver_pending`` executes buffered work first (its results sit
        in the outbox, like pipe data flushed before death);
        ``hold_results`` additionally hides the outbox until
        :meth:`release` — the late-arrival duplicate scenario.
        """
        if deliver_pending:
            self.step_worker()
        else:
            self._inbox.clear()
            self._pending = []
        if hold_results:
            self._held.extend(self._outbox)
            self._outbox.clear()
        self._dead = True

    def release(self) -> None:
        """Make held results readable (the late pipe flush arriving)."""
        self._outbox.extend(self._held)
        self._held.clear()

    def terminate(self) -> None:
        """Mark the worker dead (protocol parity with ProcessWorker)."""
        self._dead = True

    def join(self, timeout: float | None = None) -> None:
        """No-op (inline workers have no process to reap)."""
