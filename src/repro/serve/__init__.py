"""Batched inference serving: queue → micro-batcher → warm pool → Session.

The request layer over :mod:`repro.api`: an :class:`InferenceServer`
accepts asynchronous per-request submissions (futures, deadlines,
bounded-queue backpressure), coalesces them into micro-batches keyed by
(config hash, graph identity), and executes them on warm
:class:`~repro.api.Session` objects cached in an LRU
:class:`SessionPool` — so a stream of requests pays engine planning,
pattern construction and dataset synthesis once per config instead of
once per call.  :mod:`repro.serve.loadgen` drives it with seeded
closed-/open-loop load for benchmarking (``repro bench-serve``).

Above the single server sits the sharded tier
(:mod:`repro.serve.cluster`): a :class:`ServingCluster` routes requests
to N worker processes by consistent hash of the config key
(:mod:`repro.serve.router`), each worker running its own server over a
warm pool (:mod:`repro.serve.worker`), with heartbeat death detection
and exactly-once requeue of in-flight work — ``repro serve --workers N``
and ``repro bench-serve --workers N`` on the CLI.

Both tiers accept **online graph mutations** (:mod:`repro.stream`):
``submit_delta`` serializes a :class:`~repro.stream.GraphDelta` against
in-flight micro-batches (single server) or broadcasts it version-guarded
to every worker (cluster), and every result future carries the
``graph_version`` it was computed at so clients can detect staleness.
All serve-layer timestamps flow through one injectable clock source
(:mod:`repro.serve._clock`): deadlines, heartbeat aging and latency
accounting advance together, on the wall clock or a test's
:class:`ManualClock`.
"""

from ._clock import ManualClock, clock_override
from .batcher import BatchPolicy, MicroBatch, MicroBatcher, seq_len_bucket
from .cluster import ClusterStats, ServingCluster
from .elastic import ElasticController, ElasticPolicy, ElasticStats
from .loadgen import (
    LoadReport,
    TenantSpec,
    compare_cluster_scaling,
    compare_with_naive,
    make_churn_workload,
    make_graph_workload,
    make_mixed_config_workload,
    make_node_workload,
    make_tenant_arrivals,
    run_churn_loop,
    run_closed_loop,
    run_cluster_closed_loop,
    run_multitenant_loop,
    run_open_loop,
)
from .pool import PoolStats, SessionPool, config_key, dataset_identity
from .router import HashRing, NoWorkersError, Router, RouterStats
from .queue import (
    DeadlineExceededError,
    QueueFullError,
    Request,
    RequestQueue,
    ServeError,
    ServeFuture,
    ServerClosedError,
)
from .server import InferenceServer, ServerStats, latency_summary
from .worker import (
    InlineWorker,
    ProcessWorker,
    WorkerInit,
    WorkerRuntime,
    WorkResult,
    WorkUnit,
)

__all__ = [
    "ManualClock",
    "clock_override",
    "BatchPolicy",
    "MicroBatch",
    "MicroBatcher",
    "seq_len_bucket",
    "SessionPool",
    "PoolStats",
    "config_key",
    "dataset_identity",
    "RequestQueue",
    "Request",
    "ServeFuture",
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "InferenceServer",
    "ServerStats",
    "latency_summary",
    "HashRing",
    "Router",
    "RouterStats",
    "NoWorkersError",
    "ServingCluster",
    "ClusterStats",
    "ElasticPolicy",
    "ElasticStats",
    "ElasticController",
    "WorkUnit",
    "WorkResult",
    "WorkerInit",
    "WorkerRuntime",
    "InlineWorker",
    "ProcessWorker",
    "LoadReport",
    "TenantSpec",
    "make_node_workload",
    "make_graph_workload",
    "make_mixed_config_workload",
    "make_churn_workload",
    "make_tenant_arrivals",
    "run_churn_loop",
    "run_closed_loop",
    "run_open_loop",
    "run_multitenant_loop",
    "run_cluster_closed_loop",
    "compare_with_naive",
    "compare_cluster_scaling",
]
