"""Batched inference serving: queue → micro-batcher → warm pool → Session.

The request layer over :mod:`repro.api`: an :class:`InferenceServer`
accepts asynchronous per-request submissions (futures, deadlines,
bounded-queue backpressure), coalesces them into micro-batches keyed by
(config hash, graph identity), and executes them on warm
:class:`~repro.api.Session` objects cached in an LRU
:class:`SessionPool` — so a stream of requests pays engine planning,
pattern construction and dataset synthesis once per config instead of
once per call.  :mod:`repro.serve.loadgen` drives it with seeded
closed-/open-loop load for benchmarking (``repro bench-serve``).
"""

from .batcher import BatchPolicy, MicroBatch, MicroBatcher, seq_len_bucket
from .loadgen import (
    LoadReport,
    compare_with_naive,
    make_graph_workload,
    make_node_workload,
    run_closed_loop,
    run_open_loop,
)
from .pool import PoolStats, SessionPool, config_key
from .queue import (
    DeadlineExceededError,
    QueueFullError,
    Request,
    RequestQueue,
    ServeError,
    ServeFuture,
    ServerClosedError,
)
from .server import InferenceServer, ServerStats

__all__ = [
    "BatchPolicy",
    "MicroBatch",
    "MicroBatcher",
    "seq_len_bucket",
    "SessionPool",
    "PoolStats",
    "config_key",
    "RequestQueue",
    "Request",
    "ServeFuture",
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "InferenceServer",
    "ServerStats",
    "LoadReport",
    "make_node_workload",
    "make_graph_workload",
    "run_closed_loop",
    "run_open_loop",
    "compare_with_naive",
]
