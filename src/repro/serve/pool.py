"""Warm session pool: cached, inference-ready Sessions keyed by config hash.

Cold inference pays for everything a :class:`~repro.api.Session` builds
lazily — dataset synthesis, model construction, engine planning — plus
the first-call cluster reordering / pattern / encodings that the
session's inference cache then memoizes.  A serving process answering a
stream of requests for a handful of configs should pay those costs once
per config, not once per request: the pool keeps the ``max_sessions``
most recently used Sessions warm and evicts least-recently-used beyond
that.

Datasets are shared *across* pool entries: two configs that describe the
same data (name × scale × effective seed) get the same loaded dataset
object, so a model or engine sweep over one graph does not re-synthesize
it per config.  On admission (a pool miss), an optional checkpoint is
loaded into the fresh session's model — the serving path for weights
trained elsewhere (``Session.save_checkpoint`` or the trainers'
``checkpoint_path`` files).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping

from ..obs.metrics import get_registry

__all__ = ["config_key", "dataset_identity", "PoolStats", "SessionPool"]


def config_key(config) -> str:
    """Stable content hash of a :class:`~repro.api.RunConfig`.

    Two config objects with equal JSON serializations share sessions,
    warm caches and batches; any differing field (seed, engine knob,
    scale, …) separates them.
    """
    return hashlib.sha256(config.to_json().encode()).hexdigest()[:16]


def dataset_identity(config) -> tuple:
    """What makes two configs share one loaded dataset.

    Name × scale × effective seed (the data seed, falling back to the
    run seed) — the key the pool's cross-config dataset cache and the
    cluster's startup broadcast dedupe on.
    """
    data = config.data
    seed = data.seed if data.seed is not None else config.seed
    return (data.name, data.scale, seed)


@dataclass
class PoolStats:
    """Admission/eviction counters for one pool lifetime.

    Every :meth:`bump` also increments the matching
    ``repro_pool_*_total`` counter in the process-global metrics
    registry; the fields remain the snapshot source of truth.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    checkpoint_loads: int = 0

    #: Counter fields mirrored into the metrics registry.
    COUNTER_FIELDS = ("hits", "misses", "evictions", "checkpoint_loads")

    def __post_init__(self):
        registry = get_registry()
        help_text = {
            "hits": "acquisitions served by a warm pooled session",
            "misses": "acquisitions that built a fresh session",
            "evictions": "sessions evicted by the pool LRU",
            "checkpoint_loads": "checkpoints loaded on pool admission",
        }
        self._obs_counters = {
            f: registry.counter(f"repro_pool_{f}_total", help_text[f])
            for f in self.COUNTER_FIELDS}

    def bump(self, field_name: str, n: int = 1) -> None:
        """Increment one counter field and its registry twin together."""
        setattr(self, field_name, getattr(self, field_name) + n)
        self._obs_counters[field_name].inc(n)

    @property
    def hit_rate(self) -> float:
        """Warm-session hits over all acquisitions (0.0 before any)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SessionPool:
    """LRU cache of warm Sessions, keyed by :func:`config_key`.

    ``checkpoints`` maps a config key (or a config object, hashed on the
    spot) to a checkpoint path loaded into the model when that config is
    first admitted.  ``session_factory`` is an injection seam for tests;
    it defaults to :class:`repro.api.Session`.
    """

    def __init__(self, max_sessions: int = 4,
                 checkpoints: Mapping | None = None,
                 session_factory: Callable | None = None):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self.stats = PoolStats()
        self._sessions: OrderedDict[str, object] = OrderedDict()
        self._datasets: dict[tuple, object] = {}
        self._pinned: set[tuple] = set()
        self._checkpoints: dict[str, str] = {}
        if session_factory is None:
            from ..api import Session as session_factory
        self._session_factory = session_factory
        for cfg, path in (checkpoints or {}).items():
            self.add_checkpoint(cfg, path)

    # -- checkpoint admission ------------------------------------------- #
    def add_checkpoint(self, config_or_key, path: str) -> str:
        """Register a checkpoint to load when this config is admitted."""
        key = (config_or_key if isinstance(config_or_key, str)
               else config_key(config_or_key))
        self._checkpoints[key] = path
        return key

    # -- the cache ------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, config) -> bool:
        key = config if isinstance(config, str) else config_key(config)
        return key in self._sessions

    def keys(self) -> list[str]:
        """Config keys, least- to most-recently used."""
        return list(self._sessions)

    def _dataset_identity(self, config) -> tuple:
        return dataset_identity(config)

    def put_dataset(self, config, dataset, pin: bool = True) -> tuple:
        """Seed the shared-dataset cache with an already-loaded dataset.

        Sessions later admitted for any config with the same dataset
        identity (name × scale × effective seed) reuse ``dataset``
        instead of re-synthesizing it — this is how a cluster worker
        installs the dataset broadcast it received at startup.  ``pin``
        (default) keeps the dataset cached even while no warm session
        references it, so LRU churn never forces a re-synthesis of
        broadcast data.  Returns the identity key.
        """
        if dataset.name != config.data.name:
            raise ValueError(
                f"dataset {dataset.name!r} does not match config "
                f"dataset {config.data.name!r}")
        ds_id = self._dataset_identity(config)
        self._datasets[ds_id] = dataset
        if pin:
            self._pinned.add(ds_id)
        return ds_id

    def acquire(self, config, key: str | None = None):
        """The warm session for ``config`` (building + admitting on miss)."""
        key = config_key(config) if key is None else key
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            self.stats.bump("hits")
            return session
        self.stats.bump("misses")
        session = self._admit(config, key)
        return session

    def _admit(self, config, key: str):
        ds_id = self._dataset_identity(config)
        session = self._session_factory(config,
                                        dataset=self._datasets.get(ds_id))
        path = self._checkpoints.get(key)
        if path is not None:
            # weights only, via the session's audited mutation point so
            # any inference cache built before the load is dropped
            self._load_weights(session, path)
            self.stats.bump("checkpoint_loads")
        self._datasets.setdefault(ds_id, session.dataset)
        self._sessions[key] = session
        self._evict_over_capacity()
        return session

    @staticmethod
    def _load_weights(session, path: str) -> None:
        """Load checkpoint weights through the session's invalidation hook.

        Falls back to a raw :func:`~repro.train.checkpointing.load_checkpoint`
        for injected session doubles that don't expose ``load_weights``
        (the test seam), so admission semantics stay identical.
        """
        loader = getattr(session, "load_weights", None)
        if loader is not None:
            loader(path)
            return
        from ..train.checkpointing import load_checkpoint

        load_checkpoint(path, session.model)

    def put(self, session, key: str | None = None) -> str:
        """Seed the pool with an existing (e.g. freshly fitted) session."""
        key = config_key(session.config) if key is None else key
        self._sessions[key] = session
        self._sessions.move_to_end(key)
        ds_id = self._dataset_identity(session.config)
        self._datasets.setdefault(ds_id, session.dataset)
        self._evict_over_capacity()
        return key

    def _evict_over_capacity(self) -> None:
        evicted = False
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
            self.stats.bump("evictions")
            evicted = True
        if evicted:
            # drop shared datasets no warm session references anymore —
            # otherwise a long-lived pool rotating through many configs
            # retains every dataset it ever loaded
            live = {self._dataset_identity(s.config)
                    for s in self._sessions.values()}
            live |= self._pinned  # broadcast datasets survive LRU churn
            for ds_id in [d for d in self._datasets if d not in live]:
                del self._datasets[ds_id]

    def clear(self) -> None:
        """Drop every warm session and cached dataset (pinned included)."""
        self._sessions.clear()
        self._datasets.clear()
        self._pinned.clear()
