"""Dynamic micro-batching: coalesce pending requests, flush on size or age.

The scheduler at the heart of the serving layer.  Work items accumulate
in *groups* (one per coalescing key); a group flushes when it reaches
``max_batch_size`` items or when its oldest item has waited
``max_wait_s`` — the classic dynamic-batching trade between occupancy
and tail latency.  The batcher is deliberately agnostic about what an
item *is*: node-level requests group whole (a group of requests for the
same ``(config-hash, graph identity)`` executes one forward and fans the
result out), while graph-level requests are exploded by the server into
per-graph work units first.

Graph-level units carry wildly different sequence lengths (one graph =
one attention sequence), so batching arbitrary graphs together would pad
every sequence in the batch to the longest one.  :func:`seq_len_bucket`
quantizes sequence length to the next power of two and the bucket id
joins the coalescing key, bounding padding waste per batch to <2×
(amortized ~1.5×) regardless of the size mix in the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from . import _clock

__all__ = ["BatchPolicy", "MicroBatch", "MicroBatcher", "seq_len_bucket"]


def seq_len_bucket(seq_len: int, min_bucket: int = 32) -> int:
    """The padded sequence length a graph of ``seq_len`` nodes batches at.

    Buckets are powers of two with a floor of ``min_bucket``: batching
    only within a bucket bounds per-sequence padding waste below 2×.
    """
    if seq_len < 1:
        raise ValueError(f"seq_len must be >= 1, got {seq_len}")
    bucket = min_bucket
    while bucket < seq_len:
        bucket *= 2
    return bucket


@dataclass(frozen=True)
class BatchPolicy:
    """The two knobs of dynamic micro-batching.

    ``max_batch_size``: flush a group as soon as it holds this many
    items (occupancy bound).  ``max_wait_s``: flush a group once its
    oldest item has waited this long, full or not (latency bound).
    ``max_wait_s=0`` degenerates to flush-on-every-step — no added
    latency, batching only among requests that arrived together.
    """

    max_batch_size: int = 32
    max_wait_s: float = 0.002

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass
class MicroBatch:
    """One flushed group: the coalescing key and its work items.

    ``flushed_at`` is the serving-clock instant the batcher released
    the group — the boundary between a request's ``batch`` (waiting for
    companions) and ``compute`` trace spans.
    """

    key: Hashable
    items: list[Any]
    oldest_enqueued_at: float
    flushed_at: float = 0.0
    #: Earliest absolute deadline among the group's items (``inf`` when
    #: none carried one) — the EDF flush-ordering key.
    earliest_deadline: float = float("inf")

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class _Group:
    items: list[Any] = field(default_factory=list)
    oldest: float = float("inf")
    deadline: float = float("inf")


class MicroBatcher:
    """Accumulate keyed work items; emit :class:`MicroBatch` on flush.

    Single-owner object: only the server's scheduling loop touches it,
    so it carries no locks (the thread-safe boundary is the
    :class:`~repro.serve.queue.RequestQueue` in front of it).
    """

    def __init__(self, policy: BatchPolicy | None = None):
        self.policy = policy or BatchPolicy()
        self._groups: dict[Hashable, _Group] = {}

    def __len__(self) -> int:
        return sum(len(g.items) for g in self._groups.values())

    def pending_groups(self) -> int:
        """How many distinct coalescing keys currently hold items."""
        return len(self._groups)

    def add(self, key: Hashable, item: Any,
            enqueued_at: float | None = None,
            deadline: float | None = None) -> None:
        """Append one work item to its key's group (tracking its age).

        ``deadline`` (absolute serving-clock seconds, optional) feeds
        earliest-deadline-first flush ordering: the group remembers the
        tightest deadline among its items and flushed batches execute in
        that order.  Deadline-less items sort last (``inf``).
        """
        enqueued_at = _clock.now() if enqueued_at is None else enqueued_at
        group = self._groups.setdefault(key, _Group())
        group.items.append(item)
        group.oldest = min(group.oldest, enqueued_at)
        if deadline is not None:
            group.deadline = min(group.deadline, deadline)

    def ready(self, now: float | None = None, force: bool = False,
              ) -> list[MicroBatch]:
        """Flush every group that is full or has aged out (or all, forced).

        A group over ``max_batch_size`` splits into several full batches;
        the remainder flushes too (its oldest item is what aged out).
        """
        now = _clock.now() if now is None else now
        size, wait = self.policy.max_batch_size, self.policy.max_wait_s
        out: list[MicroBatch] = []
        for key in list(self._groups):
            group = self._groups[key]
            if not (force or len(group.items) >= size
                    or now - group.oldest >= wait):
                continue
            del self._groups[key]
            items = group.items
            for lo in range(0, len(items), size):
                out.append(MicroBatch(key=key, items=items[lo:lo + size],
                                      oldest_enqueued_at=group.oldest,
                                      flushed_at=now,
                                      earliest_deadline=group.deadline))
        # earliest-deadline-first across groups (ties: oldest-first) —
        # priority classes map to deadline offsets, so gold-class work
        # executes ahead of batch-class work flushed in the same round
        out.sort(key=lambda b: (b.earliest_deadline, b.oldest_enqueued_at))
        return out

    def flush(self) -> list[MicroBatch]:
        """Unconditionally flush everything (drain on close / step end)."""
        return self.ready(force=True)

    def next_flush_due(self, now: float | None = None) -> float | None:
        """Seconds until the earliest age-out, or ``None`` when empty.

        The worker loop's sleep bound: waiting longer than this would
        hold an aged-out group past its latency budget.
        """
        if not self._groups:
            return None
        now = _clock.now() if now is None else now
        oldest = min(g.oldest for g in self._groups.values())
        return max(0.0, self.policy.max_wait_s - (now - oldest))
