"""Elastic worker scaling: spawn on sustained depth, retire when idle.

A small control loop over :class:`~repro.serve.ServingCluster`'s
membership primitives (:meth:`~repro.serve.ServingCluster.spawn_worker` /
:meth:`~repro.serve.ServingCluster.retire_worker`).  Call
:meth:`ElasticController.tick` from the serving loop (the network
front-end does this every poll); each tick compares queue depth against
the policy and acts at most once.

Scaling is deliberately sluggish — three forms of hysteresis guard
against flapping on bursty arrivals:

- **sustain**: depth must stay above the spawn threshold for
  ``sustain_s`` *continuous* seconds before a spawn (a single burst that
  drains within the window never scales).
- **idle**: the cluster must be completely idle for ``idle_s``
  continuous seconds before a retire.
- **cooldown**: after any action, no further action for ``cooldown_s``
  (a freshly spawned worker gets time to absorb load before the signal
  is re-read).

Bounds are hard: the fleet never leaves ``[min_workers, max_workers]``,
and the last worker is never retired regardless of policy.  Retiring
reuses the cluster's death/requeue machinery, so scale-down racing an
in-flight dispatch keeps exactly-once delivery (the fault-injection
suite holds this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import get_registry
from . import _clock

__all__ = ["ElasticPolicy", "ElasticStats", "ElasticController"]


@dataclass(frozen=True)
class ElasticPolicy:
    """The elastic tier's knobs: bounds, thresholds, hysteresis.

    ``scale_up_depth`` is *per live worker*: a fleet of 4 with depth 80
    and ``scale_up_depth=16`` is over threshold (20 > 16).
    """

    min_workers: int = 1
    max_workers: int = 4
    scale_up_depth: int = 16
    sustain_s: float = 0.5
    idle_s: float = 2.0
    cooldown_s: float = 1.0

    def __post_init__(self):
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.scale_up_depth < 1:
            raise ValueError("scale_up_depth must be >= 1")
        for name in ("sustain_s", "idle_s", "cooldown_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass
class ElasticStats:
    """Scaling actions taken over one controller lifetime."""

    spawned: int = 0
    retired: int = 0

    def __post_init__(self):
        self._obs_actions = get_registry().counter(
            "repro_elastic_actions_total",
            "elastic scaling actions taken, by direction",
            labels=("action",))

    def count(self, action: str) -> None:
        """Record one scaling action (and its registry twin)."""
        if action == "spawn":
            self.spawned += 1
        else:
            self.retired += 1
        self._obs_actions.inc(action=action)

    def snapshot(self) -> dict:
        """Plain-dict view of the action counters."""
        return {"spawned": self.spawned, "retired": self.retired}


class ElasticController:
    """Depth-driven scaling loop over one cluster's membership.

    Single-owner object (like the batcher): tick it from one scheduling
    loop only.  The cluster's own locks make the spawn/retire calls
    safe against its router thread.
    """

    def __init__(self, cluster, policy: ElasticPolicy | None = None):
        self.cluster = cluster
        self.policy = policy or ElasticPolicy()
        self.stats = ElasticStats()
        self._over_since: float | None = None
        self._idle_since: float | None = None
        self._last_action: float | None = None
        self._obs_workers = get_registry().gauge(
            "repro_elastic_workers", "live routed workers under elastic "
            "control (sampled at each tick)")

    def _in_cooldown(self, now: float) -> bool:
        return (self._last_action is not None
                and now - self._last_action < self.policy.cooldown_s)

    def tick(self, now: float | None = None) -> str | None:
        """Read the depth signal and act at most once.

        Returns ``"spawn"``, ``"retire"``, or ``None`` (no action this
        tick).  ``now`` threads a virtual clock through for
        deterministic tests; default is the serving clock.
        """
        now = _clock.now() if now is None else now
        policy = self.policy
        depth = self.cluster.pending()
        alive = len(self.cluster.router.workers())
        self._obs_workers.set(alive)
        if depth >= policy.scale_up_depth * max(1, alive):
            self._idle_since = None
            if self._over_since is None:
                self._over_since = now
            if (now - self._over_since >= policy.sustain_s
                    and alive < policy.max_workers
                    and not self._in_cooldown(now)):
                self.cluster.spawn_worker()
                self.stats.count("spawn")
                self._last_action = now
                self._over_since = None
                return "spawn"
            return None
        self._over_since = None
        if depth == 0:
            if self._idle_since is None:
                self._idle_since = now
            if (now - self._idle_since >= policy.idle_s
                    and alive > policy.min_workers
                    and not self._in_cooldown(now)):
                victim = self._newest_worker()
                if victim is not None and self.cluster.retire_worker(victim):
                    self.stats.count("retire")
                    self._last_action = now
                    self._idle_since = None
                    return "retire"
        else:
            self._idle_since = None
        return None

    def _newest_worker(self) -> str | None:
        """The most recently spawned still-routed worker (retire LIFO)."""
        routed = set(self.cluster.router.workers())
        for wid in reversed(list(self.cluster.workers)):
            if wid in routed:
                return wid
        return None
