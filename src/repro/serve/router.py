"""Consistent-hash request routing for the serving cluster.

A cluster's value over a single server comes from *stickiness*: every
config's requests should land on the same worker so that worker's warm
:class:`~repro.serve.pool.SessionPool` keeps serving them from cache,
and the aggregate warm capacity of the fleet scales with the worker
count.  :class:`HashRing` implements the classic consistent-hash ring
(virtual nodes, clockwise lookup): each worker owns a stable arc of the
key space, and removing a dead worker remaps *only its own* keys — every
other config stays exactly where its sessions are warm.

:class:`Router` layers load awareness on top: the ring's sticky choice
wins unless that worker already has ``spill_threshold`` work units in
flight, in which case the request *spills* to the least-loaded live
worker (trading session warmth for queueing delay — the spill is counted
so operators can see it happening).  Routing never picks a worker in a
request's ``excluded`` set, which is how a requeued request avoids the
worker that just died holding it.

All hashing is :mod:`hashlib`-based (never Python's salted ``hash()``),
so placement is deterministic across processes, runs and machines —
a requirement for the cluster's bitwise-replay guarantees.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

from ..obs.metrics import get_registry
from .queue import ServeError

__all__ = ["NoWorkersError", "HashRing", "RouterStats", "Router"]


class NoWorkersError(ServeError):
    """Routing failed: no live, non-excluded worker is available."""


def _ring_hash(key: str) -> int:
    """64-bit position of ``key`` on the ring (stable across processes)."""
    return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over worker ids, with virtual nodes.

    ``replicas`` virtual nodes per member smooth the arc sizes so keys
    spread roughly evenly even with few workers.  ``lookup`` walks
    clockwise from the key's position to the first member not in
    ``excluded`` — so exclusion (dead or overloaded workers) degrades
    placement minimally instead of reshuffling everything.
    """

    def __init__(self, members=(), replicas: int = 96):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._members: set[str] = set()
        self._positions: list[int] = []   # sorted virtual-node positions
        self._owners: list[str] = []      # owner of each position
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def members(self) -> list[str]:
        """Current members, sorted for deterministic iteration."""
        return sorted(self._members)

    def add(self, member: str) -> None:
        """Insert a member's virtual nodes (idempotent)."""
        if member in self._members:
            return
        self._members.add(member)
        for r in range(self.replicas):
            pos = _ring_hash(f"{member}#{r}")
            i = bisect.bisect_left(self._positions, pos)
            self._positions.insert(i, pos)
            self._owners.insert(i, member)

    def remove(self, member: str) -> None:
        """Drop a member; only its own keys remap (idempotent)."""
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [(p, o) for p, o in zip(self._positions, self._owners)
                if o != member]
        self._positions = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def lookup(self, key: str, excluded=frozenset()) -> str | None:
        """The sticky owner of ``key``: first non-excluded member clockwise.

        Returns ``None`` when every member is excluded (or the ring is
        empty) — the caller decides how to degrade.
        """
        if not self._positions:
            return None
        start = bisect.bisect_right(self._positions, _ring_hash(key))
        n = len(self._positions)
        seen: set[str] = set()
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner in seen:
                continue
            if owner not in excluded:
                return owner
            seen.add(owner)
            if len(seen) == len(self._members):
                break
        return None


@dataclass
class RouterStats:
    """Routing decisions for one router lifetime.

    Each decision also increments
    ``repro_router_decisions_total{decision=sticky|spill|reroute}`` in
    the process-global metrics registry (the fields stay the snapshot's
    source of truth).
    """

    routed: int = 0
    sticky: int = 0   # sent to the consistent-hash owner
    spills: int = 0   # diverted to least-loaded on overload
    reroutes: int = 0  # sticky owner excluded (e.g. dead), fell through

    def __post_init__(self):
        self._obs_decisions = get_registry().counter(
            "repro_router_decisions_total",
            "routing decisions by kind (sticky / spill / reroute)",
            labels=("decision",))

    def count(self, decision: str) -> None:
        """Record one routing decision (``sticky``/``spill``/``reroute``)."""
        self.routed += 1
        field_name = {"sticky": "sticky", "spill": "spills",
                      "reroute": "reroutes"}[decision]
        setattr(self, field_name, getattr(self, field_name) + 1)
        self._obs_decisions.inc(decision=decision)

    def snapshot(self) -> dict:
        """Plain-dict view of the routing counters."""
        return {"routed": self.routed, "sticky": self.sticky,
                "spills": self.spills, "reroutes": self.reroutes}


class Router:
    """Sticky consistent-hash placement with least-loaded spill.

    Tracks in-flight work per worker (``assign`` / ``complete``) and
    routes each config key to its ring owner unless that owner is
    excluded or holds ``spill_threshold``\\ + in-flight units, in which
    case the least-loaded live worker (deterministic tie-break by id)
    takes it.
    """

    def __init__(self, workers, spill_threshold: int = 32,
                 replicas: int = 96):
        workers = list(workers)
        if not workers:
            raise ValueError("Router needs at least one worker")
        if spill_threshold < 1:
            raise ValueError(
                f"spill_threshold must be >= 1, got {spill_threshold}")
        self.spill_threshold = spill_threshold
        self.ring = HashRing(workers, replicas=replicas)
        self.in_flight: dict[str, int] = {w: 0 for w in workers}
        self.stats = RouterStats()

    def workers(self) -> list[str]:
        """Live worker ids, sorted."""
        return self.ring.members()

    def add_worker(self, worker: str) -> None:
        """Insert a new live worker into the ring (idempotent).

        The elastic scale-up path: only the keys that consistent-hash
        onto the newcomer's ring points remap — everything else keeps
        its sticky worker and warm sessions.
        """
        if worker in self.in_flight:
            return
        self.ring.add(worker)
        self.in_flight[worker] = 0

    def mark_dead(self, worker: str) -> None:
        """Remove a worker from routing (its keys remap clockwise)."""
        self.ring.remove(worker)
        self.in_flight.pop(worker, None)

    def _least_loaded(self, excluded) -> str | None:
        candidates = [w for w in self.ring.members() if w not in excluded]
        if not candidates:
            return None
        return min(candidates, key=lambda w: (self.in_flight[w], w))

    def route(self, config_key: str, excluded=frozenset()) -> str:
        """Pick the worker for one request; bumps its in-flight count.

        Raises :class:`NoWorkersError` when no live worker remains
        outside ``excluded``.
        """
        sticky = self.ring.lookup(config_key, excluded=excluded)
        if sticky is None:
            raise NoWorkersError(
                f"no live worker available for config {config_key} "
                f"(excluded: {sorted(excluded) or 'none'})")
        chosen = sticky
        hash_owner = self.ring.lookup(config_key)
        spilled = False
        if self.in_flight[sticky] >= self.spill_threshold:
            least = self._least_loaded(excluded)
            if least is not None and (self.in_flight[least]
                                      < self.in_flight[sticky]):
                chosen = least
                spilled = True
        if spilled:
            self.stats.count("spill")
        elif chosen == hash_owner:
            self.stats.count("sticky")
        else:
            # the true owner was excluded; this is a fallback, not a spill
            self.stats.count("reroute")
        self.in_flight[chosen] += 1
        return chosen

    def assign(self, worker: str) -> None:
        """Count one externally-placed unit against ``worker``."""
        self.in_flight[worker] += 1

    def complete(self, worker: str) -> None:
        """Return one in-flight slot to ``worker`` (no-op if removed)."""
        if worker in self.in_flight and self.in_flight[worker] > 0:
            self.in_flight[worker] -= 1
