"""Multi-worker sharded serving: one router, N inference workers.

The scale-out tier above :class:`~repro.serve.InferenceServer`.  A
:class:`ServingCluster` owns N workers (separate processes by default,
``backend="inline"`` for deterministic in-process twins), routes every
request to a worker by **consistent hash of its config key** — so a
given config's warm sessions stay sticky to one worker and the fleet's
aggregate warm-session capacity scales with the worker count — and
spills to the least-loaded worker when the sticky one is overloaded
(:mod:`repro.serve.router`).

Lifecycle of one request::

    submit(config, nodes=…)           # ServeFuture, same contract as the server
      └─ RequestQueue                 # bounded; deadline culling *before* dispatch
           └─ Router                  # consistent-hash sticky, spill on overload
                └─ WorkerHandle pipe  # WorkUnit out, WorkResult back
                     └─ worker's InferenceServer (batching, warm pool)

Fault model: workers are expected to die.  Each worker answers
heartbeat pings and is additionally watched via its process handle;
when one is declared dead, its in-flight requests are **requeued** to
surviving workers with the dead worker in their ``excluded`` set, and
late results that still trickle out of a dead worker's pipe are
delivered at most once (a request's future resolves exactly once — any
second copy is counted as ``duplicates_ignored``, never re-delivered).

Determinism: a worker's answer is a pure function of (config, dataset,
payload) — sessions rebuilt after eviction or on another worker after a
requeue produce bitwise-identical logits, so cluster placement, spills,
deaths and retries never change the bytes a client receives (asserted
end-to-end by ``benchmarks/bench_serve_cluster.py``).

At startup, each **distinct dataset** among ``warm_configs`` is loaded
and pickled once, and the same bytes are broadcast to every worker's
init payload — workers install them via
:meth:`~repro.serve.SessionPool.put_dataset` (pinned, so LRU churn never
re-synthesizes broadcast data).
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.trace import get_tracer
from ..obs.trace import set_tracing as _set_process_tracing
from . import _clock
from .batcher import BatchPolicy
from .pool import config_key, dataset_identity
from .queue import (
    DeadlineExceededError,
    Request,
    RequestQueue,
    ServeError,
    ServeFuture,
    ServerClosedError,
)
from .router import NoWorkersError, Router
from .server import ServerStats, latency_summary
from .worker import (
    InlineWorker,
    ProcessWorker,
    WorkerInit,
    WorkResult,
    WorkUnit,
)

__all__ = ["ClusterStats", "ServingCluster"]


#: One-line help strings for the registry-mirrored cluster counters.
_COUNTER_HELP = {
    "submitted": "requests accepted into the router queue",
    "completed": "requests resolved with a worker result",
    "rejected": "submissions refused (backpressure or closed)",
    "expired": "requests that missed their deadline router-side",
    "failed": "requests resolved with an error",
    "dispatched": "work units shipped to a worker pipe",
    "requeued": "units re-dispatched after a worker death",
    "worker_deaths": "workers declared dead",
    "duplicates_ignored": "late results dropped by at-most-once delivery",
    "mutations": "GraphDelta broadcasts submitted",
    "mutations_applied": "broadcasts acked by every live worker",
    "workers_spawned": "workers added after startup (elastic scale-up)",
    "workers_retired": "workers drained and removed (elastic scale-down)",
    "replica_reads": "version-pinned reads steered to a read replica",
}


@dataclass
class ClusterStats:
    """Router-side counters + end-to-end latency for one cluster lifetime.

    ``requeued`` counts units re-dispatched after a worker death;
    ``duplicates_ignored`` counts late results for already-completed
    requests (the at-most-once delivery guard firing).

    Like :class:`~repro.serve.server.ServerStats`, counting is
    dual-homed: the fields feed :meth:`snapshot`, and every
    :meth:`bump` mirrors into the matching ``repro_cluster_*_total``
    registry counter (latencies into
    ``repro_cluster_request_latency_seconds``).
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    dispatched: int = 0
    requeued: int = 0
    worker_deaths: int = 0
    duplicates_ignored: int = 0
    mutations: int = 0           # GraphDelta broadcasts submitted
    mutations_applied: int = 0   # broadcasts acked by every live worker
    workers_spawned: int = 0     # elastic scale-up events
    workers_retired: int = 0     # elastic scale-down events
    replica_reads: int = 0       # version-pinned reads served by replicas
    latencies: deque = field(default_factory=lambda: deque(maxlen=4096))
    # appended by the router loop, iterated by stats_snapshot() callers
    # on other threads — same race ServerStats locks against
    _latency_lock: threading.Lock = field(default_factory=threading.Lock,
                                          repr=False)

    #: Counter fields mirrored into the metrics registry.
    COUNTER_FIELDS = ("submitted", "completed", "rejected", "expired",
                      "failed", "dispatched", "requeued", "worker_deaths",
                      "duplicates_ignored", "mutations", "mutations_applied",
                      "workers_spawned", "workers_retired", "replica_reads")

    def __post_init__(self):
        registry = get_registry()
        self._obs_counters = {
            f: registry.counter(f"repro_cluster_{f}_total", _COUNTER_HELP[f])
            for f in self.COUNTER_FIELDS}
        self._obs_latency = registry.histogram(
            "repro_cluster_request_latency_seconds",
            "submit-to-complete latency per request, router side")

    def bump(self, field_name: str, n: int = 1) -> None:
        """Increment one counter field and its registry twin together."""
        setattr(self, field_name, getattr(self, field_name) + n)
        self._obs_counters[field_name].inc(n)

    def record_latency(self, seconds: float) -> None:
        """Append one request's end-to-end latency sample (thread-safe)."""
        with self._latency_lock:
            self.latencies.append(seconds)
        self._obs_latency.observe(seconds)

    def snapshot(self) -> dict:
        """Plain-dict view of the cluster-level counters."""
        with self._latency_lock:
            lat = list(self.latencies)
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "dispatched": self.dispatched,
            "requeued": self.requeued,
            "worker_deaths": self.worker_deaths,
            "duplicates_ignored": self.duplicates_ignored,
            "mutations": self.mutations,
            "mutations_applied": self.mutations_applied,
            "workers_spawned": self.workers_spawned,
            "workers_retired": self.workers_retired,
            "replica_reads": self.replica_reads,
            **latency_summary(lat),
        }


@dataclass
class _Dispatch:
    """Router-side tracking for one in-flight unit.

    ``trace`` is the preallocated dispatch-span context (its wire form
    rides on the unit); ``sent_at`` is when the unit first hit a worker
    pipe, so the span covers ship-to-result including any requeues.
    """

    request: Request
    unit: WorkUnit
    worker_id: str
    attempts: int = 1
    excluded: set = field(default_factory=set)
    trace: object = None
    sent_at: float = 0.0


@dataclass
class _Mutation:
    """Router-side tracking for one delta broadcast.

    A mutation fans out as one ``"mutate"`` unit per live worker;
    ``pending`` holds the unit ids still awaiting an ack.  The caller's
    future resolves with the new ``graph_version`` once every ack
    lands (or with the first worker error once none are pending).
    """

    future: "ServeFuture"
    version: int
    pending: set = field(default_factory=set)
    error: BaseException | None = None


class ServingCluster:
    """N sharded inference workers behind one submit/step facade.

    ``warm_configs`` declares the configs the cluster expects to serve:
    their datasets are loaded and serialized once, broadcast to every
    worker at startup, and their checkpoints (``checkpoints``: a
    sequence of ``(config, path)`` pairs) registered for pool
    admission.  ``datasets`` (``(config, dataset)`` pairs) injects
    already-loaded datasets into the broadcast.  ``stores``
    (``(config, store_path)`` pairs) switches those configs to
    shared-store mode: workers receive only the :mod:`repro.store`
    directory path and mmap-open it themselves, so startup transfers
    O(manifest) bytes per worker instead of the pickled dataset, and
    the router's version authority resumes from the store's persisted
    ``graph_version``.  ``pool_size``,
    ``policy`` and ``worker_queue_depth`` configure each worker's
    server; ``max_queue_depth`` bounds the router's own intake queue
    (backpressure happens here, before any dispatch).

    ``backend="process"`` spawns real worker processes;
    ``backend="inline"`` runs protocol-identical in-process workers
    (deterministic tests, single-process debugging).  The cluster runs
    *driven* (call :meth:`step` / :meth:`run_until_idle`) or *threaded*
    (:meth:`start` / :meth:`stop`), mirroring the single server.

    ``wal_dir`` turns on durable streaming: one
    :class:`~repro.stream.MutationLog` per served node dataset, with
    the router as the log writer (append-then-broadcast; a restarted
    router re-broadcasts records past the store's persisted version).
    ``snapshot_every`` cuts a :mod:`repro.store` snapshot from a
    router-side mirror every N appended deltas.  ``replicas`` spawns
    that many **read replicas** outside the routing ring: they tail
    the WAL at a bounded lag and serve only version-pinned reads
    (``submit(..., min_version=N)``) the router steers to them.
    """

    def __init__(self, num_workers: int = 2, *,
                 warm_configs=(),
                 checkpoints=None,
                 pool_size: int = 4,
                 policy: BatchPolicy | None = None,
                 max_queue_depth: int = 1024,
                 worker_queue_depth: int = 4096,
                 backend: str = "process",
                 start_method: str = "spawn",
                 spill_threshold: int | None = None,
                 heartbeat_interval_s: float = 1.0,
                 heartbeat_timeout_s: float = 10.0,
                 datasets=None,
                 stores=None,
                 auto_inline: bool = True,
                 wal_dir=None,
                 replicas: int = 0,
                 snapshot_every: int = 0):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if backend not in ("process", "inline"):
            raise ValueError(f"backend must be 'process' or 'inline', "
                             f"got {backend!r}")
        if replicas and wal_dir is None:
            raise ValueError("read replicas tail the WAL; replicas > 0 "
                             "requires wal_dir")
        self.policy = policy or BatchPolicy()
        self.queue = RequestQueue(max_depth=max_queue_depth)
        self.stats = ClusterStats()
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._inflight: dict[int, _Dispatch] = {}
        self._mutations: dict[int, _Mutation] = {}  # unit id → broadcast
        self._dataset_versions: dict[tuple, int] = {}  # dataset id → version
        self._config_json: dict[str, str] = {}
        self._stats_replies: dict[int, dict[str, dict]] = {}
        self._next_id = 0
        self._next_seq = 0
        self._closed = False
        self._submit_lock = threading.Lock()
        # serializes pipe reads + _inflight/router mutation between the
        # start() router thread and direct callers (stats_snapshot, a
        # driven step from another thread); reentrant because close()
        # and run_until_idle() nest through step()
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

        # shared-store mode: configs covered by a store ship only the
        # directory path (O(manifest) bytes per worker); each worker
        # mmap-opens the store itself.  The router's version authority
        # resumes from the store's persisted graph_version so the
        # exactly-once guard keeps working across a store reopen.
        store_pairs = []
        store_ids = set()
        for cfg, store_path in (stores or ()):
            from ..store import load_manifest

            store_pairs.append((cfg.to_json(), str(store_path)))
            ds_id = dataset_identity(cfg)
            store_ids.add(ds_id)
            self._dataset_versions[ds_id] = int(
                load_manifest(store_path).graph_version)
        dataset_blobs = self._broadcast_payload(warm_configs, datasets or (),
                                                skip=store_ids)
        checkpoint_pairs = tuple(
            (cfg.to_json(), path) for cfg, path in (checkpoints or ()))

        # durable streaming: with a wal_dir, the router is the log
        # writer — every delta broadcast is appended to a per-dataset
        # MutationLog *before* it ships, so a restarted router replays
        # unacked deltas and the version authority survives the crash.
        # With snapshot_every > 0, a router-side mirror dataset tracks
        # the log head so periodic repro.store snapshots can be cut.
        self._wals: dict[tuple, object] = {}           # ds_id → MutationLog
        self._wal_configs: dict[tuple, object] = {}    # ds_id → RunConfig
        self._wal_mirrors: dict[tuple, object] = {}    # ds_id → dataset
        self._json_ds_id: dict[str, tuple] = {}        # config_json → ds_id
        self.replica_ids: list[str] = []
        self._replica_load: dict[str, int] = {}
        self._replica_versions: dict[tuple, int] = {}  # (wid, ds_id) → v
        self.wal_dir = None if wal_dir is None else str(wal_dir)
        if wal_dir is not None:
            import os

            from ..stream import MutationLog

            node_cfgs: dict[tuple, object] = {}
            for cfg, _path in (stores or ()):
                node_cfgs.setdefault(dataset_identity(cfg), cfg)
            for cfg, _ds in (datasets or ()):
                if cfg.data.task_kind == "node":
                    node_cfgs.setdefault(dataset_identity(cfg), cfg)
            for cfg in warm_configs:
                if cfg.data.task_kind == "node":
                    node_cfgs.setdefault(dataset_identity(cfg), cfg)
            store_by_id = {dataset_identity(cfg): str(path)
                           for cfg, path in (stores or ())}
            blob_by_json = dict(dataset_blobs)
            for ds_id, cfg in node_cfgs.items():
                log = MutationLog(
                    os.path.join(str(wal_dir), self._wal_slug(ds_id)),
                    snapshot_every=snapshot_every)
                self._wals[ds_id] = log
                self._wal_configs[ds_id] = cfg
                self._json_ds_id[cfg.to_json()] = ds_id
                if snapshot_every > 0:
                    mirror = self._open_mirror(ds_id, cfg, store_by_id,
                                               blob_by_json, log)
                    if mirror is not None:
                        log.replay(mirror)  # catch up to the log head
                        self._wal_mirrors[ds_id] = mirror
        # everything a worker needs at birth, kept so spawn_worker() can
        # mint protocol-identical workers after startup (elastic tier)
        self._worker_template = dict(
            pool_size=pool_size,
            max_batch_size=self.policy.max_batch_size,
            max_wait_s=self.policy.max_wait_s,
            queue_depth=worker_queue_depth,
            datasets=dataset_blobs,
            stores=tuple(store_pairs),
            checkpoints=checkpoint_pairs)
        self._backend = backend
        self._start_method = start_method
        self._auto_inline = auto_inline
        self._next_worker_idx = num_workers
        worker_ids = [f"w{i}" for i in range(num_workers)]
        self.workers: dict[str, object] = {}
        for wid in worker_ids:
            self.workers[wid] = self._make_worker(wid)
        self.router = Router(
            worker_ids,
            spill_threshold=(spill_threshold if spill_threshold is not None
                             else 4 * self.policy.max_batch_size))
        self._dead: set[str] = set()
        # heartbeat = outstanding-ping age, never wall-clock idleness: a
        # driven cluster may legitimately not step for minutes (REPL at
        # a prompt), and workers must not be declared dead for it
        self._ping_outstanding: dict[str, float | None] = {
            wid: None for wid in worker_ids}
        self._last_ping = _clock.now()

        # read replicas: extra workers OUTSIDE the routing ring that
        # tail the WAL (follower mode) and serve only version-pinned
        # reads the router steers to them explicitly
        if replicas:
            tails = tuple((cfg.to_json(), self._wals[ds_id].path)
                          for ds_id, cfg in self._wal_configs.items())
            for i in range(replicas):
                rid = f"r{i}"
                self.workers[rid] = self._make_worker(rid, wal_tails=tails)
                self.replica_ids.append(rid)
                self._replica_load[rid] = 0
                self._ping_outstanding[rid] = None

        # a restarted router replays deltas the previous incarnation
        # appended but whose broadcast may not have reached the fleet:
        # workers boot at the store/broadcast base version, so every
        # record past it is re-broadcast (the expected_version guard
        # turns any already-applied one into a no-op ack)
        self._replay_wal_pending()

    def _wal_slug(self, ds_id: tuple) -> str:
        """Filesystem-safe per-dataset WAL directory name."""
        return "-".join(str(part) for part in ds_id).replace("/", "_")

    def _open_mirror(self, ds_id, cfg, store_by_id, blob_by_json, log):
        """Open the router-side mirror dataset backing WAL snapshots."""
        if ds_id in store_by_id:
            from ..store import open_store

            return open_store(store_by_id[ds_id])  # read-only; overlays
        blob = blob_by_json.get(cfg.to_json())
        if blob is not None:
            return pickle.loads(blob)
        base = log.latest_snapshot()
        if base is not None:
            return log.recover()
        return None

    def _replay_wal_pending(self) -> None:
        """Re-broadcast WAL records past each dataset's base version."""
        replayed = False
        for ds_id, log in self._wals.items():
            base = self._dataset_versions.get(ds_id, 0)
            pending = log.records(after_version=base)
            if not pending:
                self._dataset_versions[ds_id] = max(base, log.last_version)
                continue
            config = self._wal_configs[ds_id]
            with self._lock:
                for version, delta in pending:
                    self._broadcast_delta(config, delta, version)
                    self._dataset_versions[ds_id] = version
            replayed = True
        if replayed:
            self.run_until_idle()

    def _make_worker(self, wid: str, wal_tails: tuple = ()):
        """Build one worker handle from the stored birth template."""
        init = WorkerInit(worker_id=wid,
                          trace_enabled=get_tracer().enabled,
                          wal_tails=wal_tails,
                          **self._worker_template)
        if self._backend == "process":
            return ProcessWorker(init, start_method=self._start_method)
        return InlineWorker(init, auto=self._auto_inline)

    # -- elastic membership ------------------------------------------------ #
    def spawn_worker(self) -> str:
        """Add one worker to the fleet after startup; returns its id.

        The newcomer is built from the same init payload as the startup
        fleet (same datasets/stores/checkpoints, same batch policy), is
        inserted into the consistent-hash ring, and starts receiving
        routed work on the next dispatch round.  Used by
        :class:`~repro.serve.elastic.ElasticController` on sustained
        queue depth.
        """
        if self._closed:
            raise ServerClosedError("cluster is closed; cannot spawn")
        with self._lock:
            wid = f"w{self._next_worker_idx}"
            self._next_worker_idx += 1
            self.workers[wid] = self._make_worker(wid)
            self.router.add_worker(wid)
            self._ping_outstanding[wid] = None
            self.stats.bump("workers_spawned")
        return wid

    def retire_worker(self, wid: str) -> bool:
        """Gracefully remove one worker from the fleet.

        The worker leaves the routing ring immediately; any unit still
        in flight on it is requeued to a survivor with the retiree in
        its ``excluded`` set — the same exactly-once path a worker
        *death* takes, so a retire racing an in-flight dispatch never
        drops or double-delivers a request (late results from the
        retiree hit the at-most-once guard).  Returns ``False`` when
        ``wid`` is not a live routed worker or is the last one.
        """
        with self._lock:
            if wid in self._dead or wid not in self.router.workers():
                return False
            if len(self.router.workers()) <= 1:
                return False  # never retire the last worker
            self.router.mark_dead(wid)
            self.stats.bump("workers_retired")
            orphans = [d for d in self._inflight.values()
                       if d.worker_id == wid]
            for dispatch in orphans:
                dispatch.excluded.add(wid)
                dispatch.attempts += 1
                if self._send_unit(dispatch):
                    self.stats.bump("requeued")
                else:
                    self._inflight.pop(dispatch.request.id, None)
            self._ping_outstanding.pop(wid, None)
            try:
                self.workers[wid].send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        return True

    def pending(self) -> int:
        """Requests queued or in flight — the elastic tier's depth signal."""
        with self._lock:
            return len(self.queue) + len(self._inflight)

    @staticmethod
    def _broadcast_payload(warm_configs, datasets, skip=frozenset()) -> tuple:
        """Serialize each distinct dataset once: ((config_json, blob), …).

        ``datasets`` is a sequence of ``(config, dataset)`` pairs naming
        already-loaded dataset objects (skipping the load); any other
        warm config's dataset is loaded here.  Deduplication is by
        :func:`~repro.serve.pool.dataset_identity` so a sweep of many
        configs over one graph broadcasts one blob.  Identities in
        ``skip`` (covered by a shared store path) are excluded entirely
        — their data never crosses the pipe.
        """
        from ..graph import load_graph_dataset, load_node_dataset

        loaded = {dataset_identity(cfg): (cfg, ds)
                  for cfg, ds in datasets
                  if dataset_identity(cfg) not in skip}
        for cfg in warm_configs:
            ds_id = dataset_identity(cfg)
            if ds_id in loaded or ds_id in skip:
                continue
            loader = (load_node_dataset if cfg.data.task_kind == "node"
                      else load_graph_dataset)
            loaded[ds_id] = (cfg, loader(cfg.data.name, scale=cfg.data.scale,
                                         seed=ds_id[2]))
        return tuple((cfg.to_json(), pickle.dumps(ds))
                     for cfg, ds in loaded.values())

    # -- intake ----------------------------------------------------------- #
    def submit(self, config, nodes: np.ndarray | None = None,
               indices: np.ndarray | None = None,
               timeout: float | None = None,
               now: float | None = None,
               trace=None,
               min_version: int | None = None):
        """Enqueue one request; returns its future (server-identical API).

        Deadlines (``timeout`` seconds from submission) are enforced on
        the router side: an expired request is rejected at dispatch time
        and never crosses a worker pipe.  Raises
        :class:`~repro.serve.queue.QueueFullError` (backpressure) or
        :class:`~repro.serve.queue.ServerClosedError` synchronously.
        ``trace`` parents the request's span under an existing context
        (e.g. a network front-end's per-request span).

        ``min_version`` pins the read to a graph version: rejected
        synchronously (``ValueError``) when it is ahead of the version
        authority, otherwise eligible for **replica steering** — a read
        replica whose last-reported version satisfies the pin serves
        it; with no caught-up replica the ring primary (always at the
        authority version) does.
        """
        now = _clock.now() if now is None else now
        kind = "nodes" if config.data.task_kind == "node" else "graphs"
        if min_version is not None:
            min_version = int(min_version)
            if min_version < 0:
                raise ValueError(
                    f"min_version must be non-negative, got {min_version}")
            if kind != "nodes":
                raise ValueError(
                    "min_version applies to node-level configs (graph-"
                    "level datasets are frozen)")
            authority = self.graph_version(config)
            if min_version > authority:
                raise ValueError(
                    f"min_version {min_version} is ahead of the version "
                    f"authority {authority}")
        if kind == "nodes" and indices is not None:
            raise ValueError("indices= applies to graph-level configs; "
                             "use nodes= for node-level configs")
        if kind == "graphs" and nodes is not None:
            raise ValueError("nodes= applies to node-level configs; "
                             "use indices= for graph-level configs")
        if nodes is not None:
            nodes = np.asarray(nodes, dtype=np.int64)
        if indices is not None:
            indices = np.asarray(indices, dtype=np.int64)
        key = config_key(config)
        if key not in self._config_json:
            self._config_json[key] = config.to_json()
        with self._submit_lock:
            if self._closed:
                raise ServerClosedError(
                    "cluster is closed; submissions rejected")
            request = Request(
                id=self._next_id, config=config, config_key=key,
                kind=kind, nodes=nodes, indices=indices,
                deadline=None if timeout is None else now + timeout,
                min_version=min_version,
            )
            tracer = get_tracer()
            if tracer.enabled:
                request.trace = tracer.new_context(parent=trace)
            self._next_id += 1
            try:
                self.queue.push(request, now=now)
            except Exception:
                self.stats.bump("rejected")
                raise
        self.stats.bump("submitted")
        return request.future

    def submit_delta(self, config, delta):
        """Broadcast a :class:`~repro.stream.GraphDelta` to the fleet.

        The router is the version authority: it assigns the delta the
        next ``graph_version`` for the config's dataset and ships one
        ``"mutate"`` unit to **every** live worker (each worker holds
        its own replica of the broadcast dataset) over the
        :func:`repro.distributed.pack_arrays` wire framing.  Everything
        already queued is dispatched first, so per-pipe FIFO order
        serializes the mutation after all previously-submitted requests;
        worker-side, each server force-flushes its in-flight batches at
        the mutation boundary.

        The returned future resolves with the new version once every
        live worker acks.  A worker dying with the delta pending has
        its unit requeued (exactly once, like any in-flight unit) to a
        survivor, where the ``expected_version`` guard turns the
        redelivery into a no-op ack — a delta is never applied twice.
        Mutations carry no deadline (a half-expired broadcast would
        leave replicas disagreeing); bound the *wait* with
        ``future.result(timeout=…)`` instead.

        With a ``wal_dir`` configured the router is also the **log
        writer**: the delta is fsynced into the dataset's
        :class:`~repro.stream.MutationLog` *before* any worker sees it
        (append-then-broadcast), so a router crash after the append
        re-broadcasts the delta on restart instead of losing it.
        """
        if config.data.task_kind != "node":
            raise ValueError(
                "submit_delta supports node-level configs; graph-level "
                "datasets are collections of independent frozen graphs")
        now = _clock.now()
        with self._submit_lock:
            if self._closed:
                raise ServerClosedError(
                    "cluster is closed; submissions rejected")
        with self._lock:
            # ship the queue first: the mutation must land after every
            # request submitted before it, on every worker pipe
            self._dispatch(now)
            ds_id = dataset_identity(config)
            version = self._dataset_versions.get(ds_id, 0) + 1
            log = self._wals.get(ds_id)
            mirror = (self._wal_mirrors.get(ds_id) if log is not None
                      else None)
            if mirror is not None:
                # refuse an unapplyable delta *before* it becomes
                # durable — a poisoned record would fail on every
                # worker and on every replay of this log
                delta.validate(mirror)
            if log is not None:
                # append-then-broadcast: once the record is fsynced,
                # the delta survives a router crash even if no worker
                # saw it — the restart replays it from here
                log.append(delta, version)
            # the version authority advances with the append no matter
            # what happens downstream, so the counter and the log stay
            # contiguous and later submissions keep flowing
            self._dataset_versions[ds_id] = version
            if mirror is not None:
                from ..stream.apply import apply_delta as _apply

                try:
                    _apply(mirror, delta)
                    log.maybe_snapshot(mirror)
                except Exception:
                    # the record is durable and will re-broadcast on
                    # restart; a mirror that failed mid-apply can no
                    # longer cut trustworthy snapshots — retire it
                    self._wal_mirrors.pop(ds_id, None)
            return self._broadcast_delta(config, delta, version, now=now)

    def _broadcast_delta(self, config, delta, version: int,
                         now: float | None = None) -> ServeFuture:
        """Fan one versioned delta out to every ring worker (hold _lock)."""
        key = config_key(config)
        if key not in self._config_json:
            self._config_json[key] = config.to_json()
        outer = ServeFuture()
        payload = delta.to_payload()
        now = _clock.now() if now is None else now
        mutation = _Mutation(future=outer, version=version)
        for wid in list(self.router.workers()):
            with self._submit_lock:
                uid = self._next_id
                self._next_id += 1
            unit = WorkUnit(id=uid, config_json=self._config_json[key],
                            kind="mutate", payload=payload,
                            expected_version=version)
            request = Request(
                id=uid, config=config, config_key=key, kind="mutate",
                delta=delta, expected_version=version)
            request.enqueued_at = now
            try:
                self.workers[wid].send(("work", unit))
            except (BrokenPipeError, OSError):
                self._declare_dead(wid)
                continue
            self.router.assign(wid)
            dispatch = _Dispatch(request=request, unit=unit,
                                 worker_id=wid)
            self._inflight[uid] = dispatch
            self._mutations[uid] = mutation
            mutation.pending.add(uid)
        self.stats.bump("mutations")
        if not mutation.pending:
            outer.set_exception(NoWorkersError(
                "no live worker received the delta broadcast"))
            self.stats.bump("failed")
        return outer

    def graph_version(self, config) -> int:
        """The router-side version of the config's dataset (0 = as loaded)."""
        return self._dataset_versions.get(dataset_identity(config), 0)

    def _settle_mutation(self, unit_id: int,
                         error: BaseException | None = None) -> None:
        """Record one mutate-unit outcome; resolve the broadcast when done."""
        mutation = self._mutations.pop(unit_id, None)
        if mutation is None:
            return
        mutation.pending.discard(unit_id)
        if error is not None and mutation.error is None:
            mutation.error = error
        if mutation.pending or mutation.future.done():
            return
        if mutation.error is not None:
            mutation.future.set_exception(mutation.error)
            self.stats.bump("failed")
        else:
            mutation.future.set_result(mutation.version,
                                       graph_version=mutation.version)
            self.stats.bump("mutations_applied")

    # -- scheduling ------------------------------------------------------- #
    def step(self, now: float | None = None) -> int:
        """One router round: receive results → police workers → dispatch.

        Returns the number of requests completed this round.  ``now``
        threads a virtual clock into deadline culling; heartbeat aging
        reads the same serving clock (:mod:`repro.serve._clock`), so an
        injected fake clock drives both domains together.
        """
        with self._lock:
            done = self._receive(now)
            self._check_workers()
            self._dispatch(now)
        return done

    def run_until_idle(self, now: float | None = None,
                       timeout_s: float = 300.0) -> int:
        """Step until nothing is queued or in flight; returns completions.

        The ``timeout_s`` watchdog is a real-time liveness bound, so it
        stays on the wall clock even when a fake serving clock is
        injected — a frozen :class:`~repro.serve.ManualClock` must not
        turn a hung worker into an infinite spin.
        """
        deadline = time.monotonic() + timeout_s
        done = 0
        while len(self.queue) or self._inflight:
            progressed = self.step(now=now)
            done += progressed
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"cluster not idle after {timeout_s}s "
                    f"({len(self._inflight)} in flight, "
                    f"{len(self.queue)} queued)")
            if not progressed and self._inflight:
                time.sleep(0.001)  # waiting on worker pipes
        return done

    def _dispatch(self, now: float | None) -> None:
        self._maybe_ping()
        now = _clock.now() if now is None else now
        tracer = get_tracer()
        for request in self.queue.drain(now=now, on_expired=self._on_expired):
            request.drained_at = now
            dispatch_ctx = None
            if tracer.enabled and request.trace is not None:
                # preallocate the dispatch span's id so the worker can
                # parent its spans under it before the span is recorded
                dispatch_ctx = tracer.new_context(parent=request.trace)
            unit = WorkUnit(
                id=request.id,
                config_json=self._config_json[request.config_key],
                kind=request.kind,
                payload=self._pack_payload(request),
                trace=(None if dispatch_ctx is None
                       else dispatch_ctx.to_wire()))
            dispatch = _Dispatch(request=request, unit=unit, worker_id="",
                                 trace=dispatch_ctx, sent_at=now)
            if self._steer_to_replica(dispatch) or self._send_unit(dispatch):
                self._inflight[request.id] = dispatch
                self.stats.bump("dispatched")

    def _steer_to_replica(self, dispatch: _Dispatch) -> bool:
        """Ship a version-pinned read to a caught-up read replica.

        Eligible when the request carries ``min_version`` and some live
        replica's last-reported version satisfies it (versions only
        grow, so the report can only be stale in the safe direction).
        Least-loaded caught-up replica wins.  Returns False — fall back
        to normal ring routing — when no replica qualifies.
        """
        request = dispatch.request
        if request.min_version is None or not self.replica_ids:
            return False
        ds_id = dataset_identity(request.config)
        candidates = [
            rid for rid in self.replica_ids
            if rid not in self._dead and rid not in dispatch.excluded
            and self._replica_versions.get((rid, ds_id), -1)
            >= request.min_version]
        while candidates:
            rid = min(candidates, key=lambda r: self._replica_load.get(r, 0))
            try:
                self.workers[rid].send(("work", dispatch.unit))
            except (BrokenPipeError, OSError):
                self._declare_dead(rid)
                dispatch.excluded.add(rid)
                candidates.remove(rid)
                continue
            dispatch.worker_id = rid
            self._replica_load[rid] = self._replica_load.get(rid, 0) + 1
            self.stats.bump("replica_reads")
            return True
        return False

    @staticmethod
    def _pack_payload(request: Request) -> bytes | None:
        from ..distributed.comm import pack_array

        arr = request.nodes if request.kind == "nodes" else request.indices
        return None if arr is None else pack_array(arr)

    def _send_unit(self, dispatch: _Dispatch) -> bool:
        """Route + ship one unit, failing over past broken workers.

        Returns False (future failed) when no live worker remains.
        """
        while True:
            try:
                wid = self.router.route(dispatch.request.config_key,
                                        excluded=dispatch.excluded)
            except NoWorkersError as exc:
                if not dispatch.request.future.done():
                    dispatch.request.future.set_exception(exc)
                if dispatch.request.kind == "mutate":
                    # the broadcast's failure is counted once, when the
                    # outer future settles — not once per dead unit
                    self._settle_mutation(dispatch.request.id, error=exc)
                else:
                    self.stats.bump("failed")
                return False
            try:
                self.workers[wid].send(("work", dispatch.unit))
            except (BrokenPipeError, OSError):
                self.router.complete(wid)  # undo the route's assignment
                self._declare_dead(wid)
                dispatch.excluded.add(wid)
                continue
            dispatch.worker_id = wid
            return True

    def _on_expired(self, request: Request) -> None:
        # fired by queue.drain: the deadline passed while still queued,
        # so the request is rejected before any worker sees it
        self.stats.bump("expired")

    # -- receive side ----------------------------------------------------- #
    def _receive(self, now: float | None = None) -> int:
        done = 0
        for wid, handle in list(self.workers.items()):
            while handle.poll(0.0):
                try:
                    msg = handle.recv()
                except (EOFError, OSError):
                    # the pipe is done; a retired (or dead) worker's
                    # handle must not be polled forever — reap it so a
                    # long-lived elastic fleet doesn't leak processes
                    if wid not in self.router.workers():
                        self._reap_worker(wid)
                    break
                kind = msg[0]
                if kind == "result":
                    done += self._on_result(msg[1], now)
                elif kind == "pong":
                    self._ping_outstanding[msg[2]] = None
                    if len(msg) > 3 and msg[3]:
                        # protocol v3: a replica's pong reports the
                        # graph_version of every config it tails
                        self._ingest_replica_versions(msg[2], msg[3])
                elif kind == "stats":
                    self._ping_outstanding[msg[2]] = None
                    # only seqs a live stats_snapshot() registered are
                    # kept — a reply landing after its caller timed out
                    # must not accumulate forever
                    bucket = self._stats_replies.get(msg[1])
                    if bucket is not None:
                        bucket[msg[2]] = msg[3]
                elif kind == "bye":
                    # a clean shutdown goodbye: everything the worker had
                    # to say came before it, so an unrouted sender can be
                    # reaped immediately (inline pipes never EOF)
                    if wid not in self.router.workers():
                        self._reap_worker(wid)
                    break
        return done

    def _reap_worker(self, wid: str) -> None:
        """Drop a retired/dead worker's handle once its pipe is exhausted."""
        handle = self.workers.pop(wid, None)
        if handle is None:
            return
        self._ping_outstanding.pop(wid, None)
        handle.join(timeout=1.0)
        handle.terminate()  # no-op on a clean exit; also closes the pipe

    def _on_result(self, result: WorkResult, now: float | None) -> int:
        tracer = get_tracer()
        if result.spans:
            # worker-side spans for this unit's trace (no-op when
            # tracing was switched off while the unit was in flight)
            tracer.ingest(result.spans)
        dispatch = self._inflight.pop(result.id, None)
        if dispatch is None:
            # the request was already answered (e.g. a late result from a
            # worker declared dead after its requeue completed) — deliver
            # at most once, count the duplicate
            self.stats.bump("duplicates_ignored")
            return 0
        if dispatch.worker_id in self._replica_load:
            self._replica_load[dispatch.worker_id] = max(
                0, self._replica_load[dispatch.worker_id] - 1)
        self.router.complete(dispatch.worker_id)
        request = dispatch.request
        if request.kind == "mutate":
            # one worker's ack (or error) for a delta broadcast: settle
            # the inner future, advance the broadcast's pending set
            error = (None if result.ok else ServeError(
                f"worker {result.worker_id} failed to apply delta "
                f"{request.id}: {result.error}"))
            if not request.future.done():
                if error is None:
                    request.future.set_result(
                        int(result.value()),
                        graph_version=request.expected_version)
                else:
                    request.future.set_exception(error)
            self._settle_mutation(request.id, error=error)
            return 0
        if request.future.done():
            return 0
        now = _clock.now() if now is None else now
        if request.expired(now):
            request.future.set_exception(DeadlineExceededError(
                f"request {request.id} completed after its deadline; "
                "result dropped"))
            request.future.resolved_at = now
            self.stats.bump("expired")
            return 1
        if not result.ok:
            request.future.set_exception(
                ServeError(f"worker {result.worker_id} failed request "
                           f"{result.id}: {result.error}"))
            request.future.resolved_at = now
            self.stats.bump("failed")
            return 1
        request.future.set_result(result.value(),
                                  graph_version=result.graph_version)
        request.future.resolved_at = now
        self.stats.bump("completed")
        self.stats.record_latency(now - request.enqueued_at)
        if tracer.enabled and request.trace is not None:
            if dispatch.trace is not None:
                tracer.record("dispatch", dispatch.sent_at, now,
                              ctx=dispatch.trace,
                              attrs={"worker": result.worker_id,
                                     "attempts": dispatch.attempts})
            tracer.record("queue_wait", request.enqueued_at,
                          request.drained_at or request.enqueued_at,
                          parent=request.trace)
            tracer.record("request", request.enqueued_at, now,
                          ctx=request.trace,
                          attrs={"id": request.id, "kind": request.kind})
        return 1

    def _ingest_replica_versions(self, wid: str, versions: dict) -> None:
        """Fold a replica pong's per-config versions into the lag view."""
        from ..api import RunConfig

        for cfg_json, version in versions.items():
            ds_id = self._json_ds_id.get(cfg_json)
            if ds_id is None:
                ds_id = dataset_identity(RunConfig.from_json(cfg_json))
                self._json_ds_id[cfg_json] = ds_id
            self._replica_versions[(wid, ds_id)] = int(version)
        # one fleet-wide gauge: the worst lag across *every* tracked
        # dataset, not whichever dataset this pong happened to list last
        lags = [self._dataset_versions.get(d, 0) - v
                for (rid, d), v in self._replica_versions.items()
                if rid not in self._dead]
        if lags:
            get_registry().gauge(
                "repro_wal_replica_lag",
                "versions the slowest caught-up read replica trails "
                "the version authority").set(max(0, max(lags)))

    def replica_lag(self, config) -> int | None:
        """Worst replica lag (versions) for ``config``; None = no reports."""
        ds_id = dataset_identity(config)
        authority = self._dataset_versions.get(ds_id, 0)
        lags = [authority - v
                for (rid, d), v in self._replica_versions.items()
                if d == ds_id and rid not in self._dead]
        return max(0, max(lags)) if lags else None

    def wal_for(self, config):
        """The :class:`~repro.stream.MutationLog` backing ``config``.

        ``None`` when the cluster has no ``wal_dir`` or the config's
        dataset is not logged.  The CLI uses it to surface log depth
        and cut on-demand snapshots.
        """
        return self._wals.get(dataset_identity(config))

    # -- worker health ---------------------------------------------------- #
    def _heartbeat_targets(self) -> list:
        return list(self.router.workers()) + [
            rid for rid in self.replica_ids if rid not in self._dead]

    def _maybe_ping(self) -> None:
        wall = _clock.now()
        if wall - self._last_ping < self.heartbeat_interval_s:
            return
        self._last_ping = wall
        seq = self._bump_seq()
        for wid in self._heartbeat_targets():
            try:
                self.workers[wid].send(("ping", seq))
            except (BrokenPipeError, OSError):
                self._declare_dead(wid)
                continue
            if self._ping_outstanding.get(wid) is None:
                self._ping_outstanding[wid] = wall

    def _bump_seq(self) -> int:
        self._next_seq += 1
        return self._next_seq

    def _check_workers(self) -> None:
        wall = _clock.now()
        for wid in self._heartbeat_targets():
            handle = self.workers[wid]
            sent = self._ping_outstanding.get(wid)
            hung = (sent is not None
                    and wall - sent > self.heartbeat_timeout_s)
            if not handle.alive() or hung:
                self._declare_dead(wid)

    def _declare_dead(self, wid: str) -> None:
        """Remove a worker from routing and requeue its in-flight units."""
        if wid in self._dead:
            return
        self._dead.add(wid)
        self.stats.bump("worker_deaths")
        self.router.mark_dead(wid)
        orphans = [d for d in self._inflight.values() if d.worker_id == wid]
        for dispatch in orphans:
            dispatch.excluded.add(wid)
            dispatch.attempts += 1
            if self._send_unit(dispatch):
                self.stats.bump("requeued")
            else:
                self._inflight.pop(dispatch.request.id, None)

    # -- threaded mode ---------------------------------------------------- #
    def start(self) -> "ServingCluster":
        """Run the routing loop on a background thread."""
        if self._thread is not None:
            raise RuntimeError("cluster already started")
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._router_loop,
                                        name="repro-serve-router", daemon=True)
        self._thread.start()
        return self

    def _router_loop(self) -> None:
        while not self._stop_event.is_set():
            self.step()
            if not len(self.queue) and not self._inflight:
                self.queue.wait_nonempty(timeout=0.05)
        self.run_until_idle()

    def stop(self) -> None:
        """Stop the router thread, draining everything pending."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None

    # -- observability ---------------------------------------------------- #
    def set_tracing(self, enabled: bool) -> None:
        """Toggle span collection router-side and on every live worker.

        Process workers receive a ``("trace", enabled)`` message over
        their pipe (FIFO with work, so the toggle lands between
        batches); inline workers share this process's tracer and are
        covered by the local switch alone.
        """
        _set_process_tracing(enabled)
        with self._lock:
            for wid in list(self.router.workers()):
                try:
                    self.workers[wid].send(("trace", bool(enabled)))
                except (BrokenPipeError, OSError):
                    self._declare_dead(wid)

    def trace_spans(self, trace_id: str | None = None):
        """Buffered spans router-side (see :meth:`~repro.obs.Tracer.spans`)."""
        return get_tracer().spans(trace_id)

    # -- stats ------------------------------------------------------------ #
    def stats_snapshot(self, timeout_s: float = 5.0) -> dict:
        """Cluster counters + merged per-worker server/pool statistics.

        Round-trips a stats request to every live worker (late workers
        are reported as missing rather than blocking forever), merges
        their :meth:`~repro.serve.server.ServerStats.state_dict` via
        :meth:`~repro.serve.server.ServerStats.merge`, and sums pool
        counters.  ``"obs"`` is the fleet-wide
        :meth:`~repro.obs.MetricsRegistry.merge` of every worker's
        registry state plus the router's own (inline workers share the
        router's registry and its merge dedups by source, so they are
        never double-counted).  Shape::

            {"cluster": {...}, "router": {...}, "workers": {merged...},
             "pool": {...}, "per_worker": {wid: {...}},
             "workers_alive": N, "obs": {merged registry...}}
        """
        with self._lock:
            seq = self._bump_seq()
            live = self._heartbeat_targets()
            replies = self._stats_replies.setdefault(seq, {})
            for wid in live:
                try:
                    self.workers[wid].send(("stats", seq))
                except (BrokenPipeError, OSError):
                    self._declare_dead(wid)
        # real-time liveness bound: stays on the wall clock even under
        # an injected fake serving clock (see run_until_idle)
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                self._receive()
                self._check_workers()
                expected = [w for w in live
                            if w in self.router.workers()
                            or (w in self.replica_ids
                                and w not in self._dead)]
                if all(w in replies for w in expected):
                    break
            time.sleep(0.001)
        with self._lock:
            states = self._stats_replies.pop(seq, {})
        pool_totals = {"sessions": 0, "hits": 0, "misses": 0,
                       "evictions": 0, "checkpoint_loads": 0}
        for state in states.values():
            for key in pool_totals:
                pool_totals[key] += state["pool"][key]
        obs_states = [s["obs"] for s in states.values() if "obs" in s]
        obs_states.append(get_registry().state_dict())
        snap = {
            "obs": MetricsRegistry.merge(obs_states),
            "cluster": self.stats.snapshot(),
            "router": self.router.stats.snapshot(),
            "workers": ServerStats.merge(
                [s["server"] for s in states.values()]),
            "pool": pool_totals,
            "per_worker": {wid: {"server": s["server"], "pool": s["pool"]}
                           for wid, s in sorted(states.items())},
            "workers_alive": len(self.router.workers()),
            "replicas_alive": len([r for r in self.replica_ids
                                   if r not in self._dead]),
        }
        if self._wals:
            wal = {}
            for ds_id, log in self._wals.items():
                cfg = self._wal_configs[ds_id]
                wal[self._wal_slug(ds_id)] = {
                    "records": log.record_count,
                    "last_version": log.last_version,
                    "graph_version": self._dataset_versions.get(ds_id, 0),
                    "replica_lag": self.replica_lag(cfg),
                    "replica_versions": {
                        rid: v
                        for (rid, d), v in sorted(
                            self._replica_versions.items())
                        if d == ds_id},
                }
            snap["wal"] = wal
        return snap

    # -- lifecycle -------------------------------------------------------- #
    def close(self) -> None:
        """Drain pending work, shut every worker down, reap processes."""
        with self._submit_lock:
            self._closed = True
        if self._thread is not None:
            self.stop()
        try:
            self.run_until_idle(timeout_s=60.0)
        except TimeoutError:
            pass  # dead workers already failed their futures
        for wid, handle in self.workers.items():
            if wid in self._dead:
                continue
            try:
                handle.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for wid, handle in self.workers.items():
            handle.join(timeout=5.0)
            if handle.alive():
                handle.terminate()
        for log in self._wals.values():
            log.close()

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
