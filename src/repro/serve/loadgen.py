"""Deterministic load generation for the serving layer.

Two canonical load shapes, both fully seeded:

* **closed loop** — a fixed window of in-flight requests; the next
  window is submitted when the previous one resolves.  Measures
  sustainable throughput (requests/sec) under a concurrency bound, on
  the real clock.
* **open loop** — requests arrive on a Poisson schedule at a target
  rate, independent of completions.  Driven on a *virtual* clock
  (``now`` is threaded through ``submit``/``step``), so queue growth,
  deadline expiry and backpressure behavior replay identically for a
  given seed — the mode that exercises overload.

Workload payloads model what a serving tier actually sees: a small set
of *distinct* queries, each requested many times (``distinct`` node sets
spread over ``num_requests`` requests).  That repetition is what
micro-batching converts into shared forward passes.

:func:`compare_with_naive` is the benchmark core shared by
``repro bench-serve`` and ``benchmarks/bench_serve_throughput.py``:
the same workload through the batched server and through naive
per-request ``Session.predict`` (batch size 1, no coalescing), with a
bitwise identity check on every per-request result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import _clock
from .batcher import BatchPolicy
from .pool import SessionPool
from .queue import DeadlineExceededError, QueueFullError
from .server import InferenceServer, latency_summary

__all__ = [
    "make_node_workload",
    "make_graph_workload",
    "make_mixed_config_workload",
    "make_churn_workload",
    "LoadReport",
    "TenantSpec",
    "make_tenant_arrivals",
    "run_closed_loop",
    "run_open_loop",
    "run_multitenant_loop",
    "run_cluster_closed_loop",
    "run_churn_loop",
    "compare_with_naive",
    "compare_cluster_scaling",
]


def make_node_workload(dataset, num_requests: int, distinct: int = 4,
                       nodes_per_request: int = 48,
                       seed: int = 0) -> list[np.ndarray]:
    """``num_requests`` node-set queries drawn from ``distinct`` hot sets.

    Each distinct set is a sorted sample of the dataset's nodes; the
    request sequence cycles through them pseudo-randomly (seeded), so
    repeats are spread in time the way hot queries are.
    """
    if distinct < 1:
        raise ValueError("distinct must be >= 1")
    rng = np.random.default_rng(seed)
    size = min(nodes_per_request, dataset.num_nodes)
    sets = [np.sort(rng.choice(dataset.num_nodes, size=size, replace=False))
            for _ in range(distinct)]
    picks = rng.integers(0, distinct, size=num_requests)
    return [sets[i] for i in picks]


def make_graph_workload(dataset, num_requests: int, distinct: int = 4,
                        graphs_per_request: int = 4,
                        seed: int = 0) -> list[np.ndarray]:
    """Graph-index queries from ``distinct`` hot index tuples."""
    rng = np.random.default_rng(seed)
    size = min(graphs_per_request, dataset.num_graphs)
    sets = [np.sort(rng.choice(dataset.num_graphs, size=size, replace=False))
            for _ in range(distinct)]
    picks = rng.integers(0, distinct, size=num_requests)
    return [sets[i] for i in picks]


def make_mixed_config_workload(num_configs: int, num_requests: int,
                               seed: int = 0) -> np.ndarray:
    """A seeded request stream rotating over ``num_configs`` configs.

    Returns the config index of each request (uniform, seeded) — the
    load profile that stresses warm-session *capacity*: a single worker
    whose pool is smaller than the config set keeps evicting and
    re-admitting sessions, while a sharded cluster pins each config to
    one worker and serves every request warm.
    """
    if num_configs < 1:
        raise ValueError("num_configs must be >= 1")
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, num_configs, size=num_requests)
    # guarantee every config appears so identity checks cover them all
    picks[:num_configs] = np.arange(num_configs)
    return picks


def make_churn_workload(dataset, num_deltas: int, edges_per_delta: int = 8,
                        feature_updates_per_delta: int = 0,
                        add_node_every: int = 0, seed: int = 0):
    """Seeded topology-churn deltas for online-serving mutation load.

    The serving-shaped face of :func:`repro.stream.make_churn_deltas`:
    every delta is valid against the graph as mutated by its
    predecessors (removals name live edges, additions absent ones), so
    a replayed sequence exercises the full mutation path
    deterministically.  The caller's ``dataset`` is not mutated.
    """
    from ..stream import make_churn_deltas

    return make_churn_deltas(
        dataset, num_deltas, edges_per_delta=edges_per_delta,
        feature_updates_per_delta=feature_updates_per_delta,
        add_node_every=add_node_every, seed=seed)


@dataclass
class LoadReport:
    """What one load run produced and how fast."""

    mode: str
    num_requests: int
    duration_s: float
    completed: int
    rejected: int = 0
    expired: int = 0
    failed: int = 0  # non-deadline errors (bad indices, admission, …)
    results: list = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per (wall or virtual) second."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0


def _payload_kwargs(config, payload) -> dict:
    """Route a workload payload to the submit() argument its config takes."""
    if config.data.task_kind == "node":
        return {"nodes": payload}
    return {"indices": payload}


def run_closed_loop(server: InferenceServer, config, payloads,
                    concurrency: int = 8) -> LoadReport:
    """Windows of ``concurrency`` in-flight requests, wall-clock timed."""
    results = []
    t0 = _clock.now()
    for lo in range(0, len(payloads), concurrency):
        futures = [server.submit(config, **_payload_kwargs(config, p))
                   for p in payloads[lo:lo + concurrency]]
        server.run_until_idle()
        results.extend(f.result(timeout=60.0) for f in futures)
    duration = _clock.now() - t0
    return LoadReport(mode="closed", num_requests=len(payloads),
                      duration_s=duration, completed=len(results),
                      results=results)


def run_open_loop(server: InferenceServer, config, payloads,
                  rate_rps: float, seed: int = 0,
                  timeout: float | None = None) -> LoadReport:
    """Poisson arrivals at ``rate_rps`` on a virtual clock (deterministic).

    Arrival times come from a seeded exponential stream; the server is
    stepped at each arrival instant, so batch composition, deadline
    expiry and queue rejections are a pure function of (seed, rate,
    policy).  ``timeout`` is the per-request deadline in virtual
    seconds.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    rng = np.random.default_rng(seed)
    now = 0.0
    futures = []
    rejected = 0
    for payload in payloads:
        now += float(rng.exponential(1.0 / rate_rps))
        try:
            futures.append(server.submit(config, timeout=timeout, now=now,
                                         **_payload_kwargs(config, payload)))
        except QueueFullError:
            rejected += 1
        server.step(now=now)
    server.run_until_idle(now=now)
    results, expired, failed = [], 0, 0
    for f in futures:
        exc = f.exception(timeout=60.0)
        if exc is None:
            results.append(f.result())
        elif isinstance(exc, DeadlineExceededError):
            expired += 1
        else:
            failed += 1
    return LoadReport(mode="open", num_requests=len(payloads),
                      duration_s=now, completed=len(results),
                      rejected=rejected, expired=expired, failed=failed,
                      results=results)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's arrival process in a multi-tenant open-loop run.

    ``rate_rps`` drives a seeded Poisson arrival stream of its own (each
    tenant gets an independent RNG, so adding a tenant never perturbs
    another tenant's arrival times — the fix over the old single-stream
    generator).  ``deadline_s`` is the per-request deadline in virtual
    seconds (``None`` = the admission controller's class default, or no
    deadline without a controller).
    """

    name: str
    rate_rps: float
    priority: str = "standard"
    deadline_s: float | None = None
    nodes_per_request: int = 32
    distinct: int = 4

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")


def make_tenant_arrivals(tenants, duration_s: float,
                         seed: int = 0) -> list[tuple[float, int]]:
    """Merge per-tenant Poisson streams into one sorted arrival list.

    Returns ``(virtual_time, tenant_index)`` pairs.  Each tenant's
    stream is seeded by ``(seed, index)``, so a tenant's arrivals are a
    pure function of (seed, its own rate) — deterministic and
    composition-independent.  Ties break by tenant index, so the merged
    order is stable too.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    arrivals: list[tuple[float, int]] = []
    for idx, spec in enumerate(tenants):
        rng = np.random.default_rng((seed, idx))
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / spec.rate_rps))
            if t > duration_s:
                break
            arrivals.append((t, idx))
    arrivals.sort()
    return arrivals


def run_multitenant_loop(server, config, tenants, duration_s: float,
                         dataset=None, admission=None,
                         seed: int = 0) -> dict:
    """Mixed-tenant open-loop load on a virtual clock (deterministic).

    The multi-tenant face of :func:`run_open_loop`: every tenant in
    ``tenants`` (a sequence of :class:`TenantSpec`) submits on its own
    seeded Poisson schedule; arrivals are merged, the server is stepped
    at each arrival instant, and an optional
    :class:`~repro.net.AdmissionController` meters each submission
    (quota + priority-class shedding against live queue depth) and
    assigns class-default deadlines — which the batcher's EDF flush
    ordering then acts on.

    Returns per-tenant accounting (offered/admitted/completed/
    rejections/latency percentiles) plus totals.  Replays are stable: a
    given ``(tenants, duration_s, seed)`` produces identical counters
    and latencies (the determinism regression in
    ``tests/net/test_loadgen_multitenant.py``).
    """
    tenants = list(tenants)
    if not tenants:
        raise ValueError("need at least one TenantSpec")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError("tenant names must be unique")
    if dataset is None:
        raise ValueError("pass the loaded dataset (payload source)")
    arrivals = make_tenant_arrivals(tenants, duration_s, seed=seed)
    counts = [sum(1 for _, i in arrivals if i == idx)
              for idx in range(len(tenants))]
    payloads = [
        iter(make_node_workload(dataset, counts[idx],
                                distinct=spec.distinct,
                                nodes_per_request=spec.nodes_per_request,
                                seed=(seed, idx)))
        for idx, spec in enumerate(tenants)]

    per = {spec.name: {"offered": 0, "quota_rejected": 0, "shed": 0,
                       "queue_rejected": 0, "completed": 0, "expired": 0,
                       "failed": 0, "priority": spec.priority}
           for spec in tenants}
    futures: list[tuple[int, float, object]] = []
    from ..net.admission import AdmissionError, QuotaExceededError

    for now, idx in arrivals:
        spec = tenants[idx]
        acct = per[spec.name]
        acct["offered"] += 1
        explicit = (None if spec.deadline_s is None
                    else now + spec.deadline_s)
        if admission is not None:
            depth_fraction = len(server.queue) / server.queue.max_depth
            try:
                admission.admit(spec.name, now=now,
                                depth_fraction=depth_fraction)
            except QuotaExceededError:
                acct["quota_rejected"] += 1
                server.step(now=now)
                continue
            except AdmissionError:
                acct["shed"] += 1
                server.step(now=now)
                continue
            deadline = admission.deadline_for(spec.name, now,
                                              explicit=explicit)
            timeout = deadline - now
        else:
            timeout = spec.deadline_s
        try:
            fut = server.submit(config, timeout=timeout, now=now,
                                **_payload_kwargs(config, next(payloads[idx])))
        except QueueFullError:
            acct["queue_rejected"] += 1
            server.step(now=now)
            continue
        futures.append((idx, now, fut))
        server.step(now=now)
    server.run_until_idle(now=duration_s)

    latencies: dict[str, list[float]] = {spec.name: [] for spec in tenants}
    for idx, submitted_at, fut in futures:
        spec = tenants[idx]
        acct = per[spec.name]
        exc = fut.exception(timeout=60.0)
        if exc is None:
            acct["completed"] += 1
            resolved = fut.resolved_at
            if resolved is not None:
                latencies[spec.name].append(resolved - submitted_at)
        elif isinstance(exc, DeadlineExceededError):
            acct["expired"] += 1
        else:
            acct["failed"] += 1
    for spec in tenants:
        per[spec.name].update(latency_summary(latencies[spec.name]))
    totals = {key: sum(per[n][key] for n in names)
              for key in ("offered", "quota_rejected", "shed",
                          "queue_rejected", "completed", "expired",
                          "failed")}
    return {"tenants": per, "total": totals, "duration_s": duration_s,
            "num_arrivals": len(arrivals), "seed": seed}


def run_cluster_closed_loop(cluster, configs, picks,
                            concurrency: int = 16) -> LoadReport:
    """Drive a :class:`~repro.serve.ServingCluster` in closed loop.

    ``picks`` (from :func:`make_mixed_config_workload`) names the config
    of each request; every request asks for full-graph logits, which is
    the workload where warm-session capacity — the thing sharding
    scales — dominates.  Wall-clock timed.
    """
    results = []
    t0 = _clock.now()
    for lo in range(0, len(picks), concurrency):
        futures = [cluster.submit(configs[int(i)])
                   for i in picks[lo:lo + concurrency]]
        cluster.run_until_idle()
        results.extend(f.result(timeout=60.0) for f in futures)
    duration = _clock.now() - t0
    return LoadReport(mode="cluster-closed", num_requests=len(picks),
                      duration_s=duration, completed=len(results),
                      results=results)


def run_churn_loop(backend, config, deltas,
                   reads_per_delta: int = 1) -> LoadReport:
    """Interleave full-graph reads with delta applications (driven mode).

    For each delta: ``reads_per_delta`` predicts are submitted, then the
    delta, then ``reads_per_delta`` more — all before one drain.  The
    mutation serialization contract means the pre-reads execute against
    the old topology and the post-reads against the new, and every
    result future is stamped with the ``graph_version`` it saw.  Works
    against an :class:`InferenceServer` or a
    :class:`~repro.serve.cluster.ServingCluster` (identical submit
    surface).  ``results`` holds ``(graph_version, logits)`` pairs in
    submission order.
    """
    results = []
    failed = 0
    t0 = _clock.now()
    for delta in deltas:
        pre = [backend.submit(config) for _ in range(reads_per_delta)]
        mutation = backend.submit_delta(config, delta)
        post = [backend.submit(config) for _ in range(reads_per_delta)]
        backend.run_until_idle()
        mutation.result(timeout=60.0)
        for future in pre + post:
            exc = future.exception(timeout=60.0)
            if exc is not None:
                failed += 1
            else:
                results.append((future.graph_version, future.result()))
    duration = _clock.now() - t0
    return LoadReport(mode="churn", num_requests=2 * reads_per_delta
                      * len(deltas), duration_s=duration,
                      completed=len(results), failed=failed,
                      results=results)


def compare_cluster_scaling(configs, num_workers: int = 2,
                            num_requests: int = 48, concurrency: int = 16,
                            pool_size: int | None = None,
                            policy: BatchPolicy | None = None,
                            backend: str = "process", seed: int = 0,
                            datasets=None) -> dict:
    """N-worker cluster vs single-worker cluster on mixed-config load.

    The scaling claim of the sharded tier: with more configs in rotation
    than one worker's pool holds, consistent-hash stickiness lets N
    workers keep every config warm while the single worker thrashes its
    LRU pool — so throughput scales even before process parallelism is
    counted.  Per-worker resources (pool size, batch policy) are held
    fixed; only the worker count changes.

    Per-request logits are checked **bitwise** three ways: every cluster
    result against a naive single-``Session`` reference, and the
    N-worker run against the single-worker run.  Both clusters are
    warmed (one request per config) before timing so spawn and import
    costs stay out of the measurement.
    """
    from ..api import Session
    from .cluster import ServingCluster
    from .pool import dataset_identity

    configs = list(configs)
    if pool_size is None:
        # smaller than the config set: the capacity pressure under test
        pool_size = max(1, len(configs) - 1)
    policy = policy or BatchPolicy(max_batch_size=concurrency,
                                   max_wait_s=0.0)
    picks = make_mixed_config_workload(len(configs), num_requests, seed=seed)

    datasets = list(datasets or ())  # (config, dataset) pairs
    ds_by_id = {dataset_identity(cfg): ds for cfg, ds in datasets}
    reference = [Session(cfg,
                         dataset=ds_by_id.get(dataset_identity(cfg))).predict()
                 for cfg in configs]

    def timed_run(workers: int):
        with ServingCluster(num_workers=workers, warm_configs=configs,
                            datasets=datasets, pool_size=pool_size,
                            policy=policy, backend=backend) as cluster:
            warm = [cluster.submit(cfg) for cfg in configs]
            cluster.run_until_idle()
            for f in warm:
                f.result(timeout=60.0)
            report = run_cluster_closed_loop(cluster, configs, picks,
                                             concurrency=concurrency)
            snap = cluster.stats_snapshot()
        return report, snap

    single_report, single_snap = timed_run(1)
    multi_report, multi_snap = timed_run(num_workers)

    def matches_reference(report):
        return all(np.array_equal(out, reference[int(i)])
                   for out, i in zip(report.results, picks))

    identical_single = (len(single_report.results) == len(picks)
                        and matches_reference(single_report))
    identical_multi = (len(multi_report.results) == len(picks)
                       and matches_reference(multi_report))
    identical_across = all(
        np.array_equal(a, b)
        for a, b in zip(single_report.results, multi_report.results))
    return {
        "num_workers": num_workers,
        "num_configs": len(configs),
        "num_requests": num_requests,
        "concurrency": concurrency,
        "pool_size": pool_size,
        "single_worker_s": single_report.duration_s,
        "multi_worker_s": multi_report.duration_s,
        "single_worker_rps": single_report.throughput_rps,
        "multi_worker_rps": multi_report.throughput_rps,
        "scaling": (single_report.duration_s / multi_report.duration_s
                    if multi_report.duration_s > 0 else float("inf")),
        "identical_single": identical_single,
        "identical_multi": identical_multi,
        "identical_across": identical_across,
        "identical": (identical_single and identical_multi
                      and identical_across),
        "single_worker_stats": single_snap,
        "multi_worker_stats": multi_snap,
    }


def compare_with_naive(config, num_requests: int = 64, distinct: int = 4,
                       nodes_per_request: int = 48, concurrency: int = 16,
                       policy: BatchPolicy | None = None, seed: int = 0,
                       dataset=None) -> dict:
    """Batched serving vs naive per-request prediction, same workload.

    *Naive* is the strongest sequential baseline: one persistent
    ``Session`` (model/engine already built) answering each request with
    its own ``predict(nodes=…)`` call — serving batch size 1.  *Batched*
    pushes the identical request stream through an
    :class:`InferenceServer` in closed loop.  Both sides share one
    loaded dataset and build identically-seeded weights, so per-request
    results must be — and are asserted upstream to be — bitwise equal.
    """
    from ..api import Session

    if config.data.task_kind != "node":
        raise ValueError(
            "compare_with_naive measures the node-level serving path; "
            f"dataset {config.data.name!r} is graph-level (drive graph "
            "configs with make_graph_workload + run_closed_loop instead)")
    naive_session = Session(config, dataset=dataset)
    ds = naive_session.dataset
    payloads = make_node_workload(ds, num_requests, distinct=distinct,
                                  nodes_per_request=nodes_per_request,
                                  seed=seed)

    t0 = _clock.now()
    naive_results = [naive_session.predict(nodes=p) for p in payloads]
    naive_s = _clock.now() - t0

    pool = SessionPool(max_sessions=2)
    pool.put(Session(config, dataset=ds))
    server = InferenceServer(pool=pool, policy=policy
                             or BatchPolicy(max_batch_size=concurrency))
    report = run_closed_loop(server, config, payloads,
                             concurrency=concurrency)

    identical = (len(report.results) == len(naive_results)
                 and all(np.array_equal(a, b) for a, b in
                         zip(naive_results, report.results)))
    return {
        "num_requests": num_requests,
        "distinct_queries": distinct,
        "nodes_per_request": int(min(nodes_per_request, ds.num_nodes)),
        "concurrency": concurrency,
        "naive_s": naive_s,
        "batched_s": report.duration_s,
        "naive_rps": num_requests / naive_s if naive_s > 0 else 0.0,
        "batched_rps": report.throughput_rps,
        "speedup": (naive_s / report.duration_s
                    if report.duration_s > 0 else float("inf")),
        "identical": identical,
        "mean_batch_occupancy": server.stats.mean_occupancy,
        "shared_computes": server.stats.shared_computes,
        "stats": server.stats_snapshot(),
    }
