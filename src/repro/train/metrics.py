"""Evaluation metrics used across the paper's tasks."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "mae", "macro_f1", "running_average", "EarlyStopping"]


def accuracy(logits: np.ndarray, labels: np.ndarray,
             mask: np.ndarray | None = None) -> float:
    """Top-1 accuracy of row-wise logits vs integer labels, optionally masked."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    pred = logits.argmax(axis=-1)
    correct = pred == labels
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.sum() == 0:
            return 0.0
        return float(correct[mask].mean())
    return float(correct.mean())


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error (ZINC / PCQM4M metric)."""
    return float(np.abs(np.asarray(pred) - np.asarray(target)).mean())


def running_average(values: list[float], decay: float = 0.9) -> list[float]:
    """EMA curve F_t = decay·F_{t−1} + (1−decay)·x_t (Auto Tuner's tracker)."""
    out: list[float] = []
    cur: float | None = None
    for v in values:
        cur = v if cur is None else decay * cur + (1 - decay) * v
        out.append(cur)
    return out


def macro_f1(logits: np.ndarray, labels: np.ndarray,
             mask: np.ndarray | None = None) -> float:
    """Macro-averaged F1 over the classes present in ``labels``.

    The class-imbalance-robust companion to accuracy — on skewed label
    distributions (Amazon's 107 classes, MalNet's 5) accuracy can hide a
    collapsed minority class that macro-F1 exposes.  Classes absent from
    the (masked) labels are excluded from the average; a class predicted
    never/always contributes its honest 0.
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    pred = logits.argmax(axis=-1)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        pred, labels = pred[mask], labels[mask]
    if len(labels) == 0:
        return 0.0
    scores = []
    for cls in np.unique(labels):
        tp = float(((pred == cls) & (labels == cls)).sum())
        fp = float(((pred == cls) & (labels != cls)).sum())
        fn = float(((pred != cls) & (labels == cls)).sum())
        denom = 2 * tp + fp + fn
        scores.append(2 * tp / denom if denom else 0.0)
    return float(np.mean(scores))


class EarlyStopping:
    """Patience-based stopper on a validation metric.

    ``mode="max"`` for accuracy-like metrics, ``"min"`` for losses/MAE.
    Call :meth:`update` once per epoch; it returns True when training
    should stop (no improvement beyond ``min_delta`` for ``patience``
    consecutive epochs).  ``best`` and ``best_epoch`` record the
    checkpoint worth keeping.
    """

    def __init__(self, patience: int = 10, mode: str = "max",
                 min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.best: float | None = None
        self.best_epoch = -1
        self._bad_epochs = 0
        self._epoch = -1

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "max":
            return value > self.best + self.min_delta
        return value < self.best - self.min_delta

    def update(self, value: float) -> bool:
        """Record an epoch's metric; returns True when patience ran out."""
        self._epoch += 1
        if np.isnan(value):
            # a NaN metric is never an improvement, but counts against
            # patience — a diverged run should stop, not spin
            self._bad_epochs += 1
            return self._bad_epochs >= self.patience
        if self._improved(value):
            self.best = value
            self.best_epoch = self._epoch
            self._bad_epochs = 0
            return False
        self._bad_epochs += 1
        return self._bad_epochs >= self.patience
