"""Training-state persistence: save and resume a full training run.

A checkpoint bundles everything a resumed run needs to continue
*bit-compatibly* with the uninterrupted one:

* model parameters (:meth:`~repro.tensor.module.Module.state_dict`),
* optimizer buffers (Adam moments, momentum, step count),
* learning-rate schedule position,
* the positions of the model's stochastic streams (dropout, gumbel
  noise generators), so a resumed run draws the *same* noise the
  uninterrupted run would have drawn from that epoch on,
* the epoch counter and any user metadata (dataset name, engine config).

Storage is a single compressed ``.npz``: arrays are stored natively and
the nesting structure is flattened with ``/``-separated keys, so loading
never unpickles arbitrary objects (``allow_pickle`` stays off — a
checkpoint from an untrusted source cannot execute code).
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..tensor.module import Module
from ..tensor.optim import Optimizer
from ..tensor.schedulers import LRSchedule

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT = "repro-train-checkpoint-v1"


def _flatten_optimizer(state: dict, out: dict) -> None:
    out["opt/lr"] = np.float64(state["lr"])
    for name, values in state["buffers"].items():
        if isinstance(values, list):
            for i, arr in enumerate(values):
                out[f"opt/buf/{name}/{i}"] = arr
        else:
            out[f"opt/scalar/{name}"] = np.asarray(values)


def _capture_rng(model: Module) -> str:
    """JSON-encode the bit-generator state of every stochastic module.

    Keyed by (module traversal index, kind) — the same addressing
    :func:`~repro.train.trainer.seed_stochastic_modules` uses, so the
    states land back on the modules they came from.
    """
    from ..tensor import Dropout

    states = []
    for i, m in enumerate(model.modules()):
        if isinstance(m, Dropout):
            states.append([i, "dropout", m.rng.bit_generator.state])
        if hasattr(m, "_gumbel_rng"):
            states.append([i, "gumbel", m._gumbel_rng.bit_generator.state])
    return json.dumps(states)


def _restore_rng(model: Module, payload: str) -> None:
    from ..tensor import Dropout

    states = {(int(i), kind): st for i, kind, st in json.loads(payload)}
    for i, m in enumerate(model.modules()):
        if isinstance(m, Dropout) and (i, "dropout") in states:
            rng = np.random.default_rng()
            rng.bit_generator.state = states[(i, "dropout")]
            m.rng = rng
        if hasattr(m, "_gumbel_rng") and (i, "gumbel") in states:
            rng = np.random.default_rng()
            rng.bit_generator.state = states[(i, "gumbel")]
            m._gumbel_rng = rng


def _unflatten_optimizer(z) -> dict:
    buffers: dict = {}
    lists: dict[str, dict[int, np.ndarray]] = {}
    for key in z.files:
        if key.startswith("opt/buf/"):
            _, _, name, idx = key.split("/")
            lists.setdefault(name, {})[int(idx)] = z[key]
        elif key.startswith("opt/scalar/"):
            name = key.split("/", 2)[2]
            val = z[key]
            buffers[name] = val.item() if val.ndim == 0 else val
    for name, items in lists.items():
        buffers[name] = [items[i] for i in sorted(items)]
    return {"lr": float(z["opt/lr"]), "buffers": buffers}


def save_checkpoint(path: str | os.PathLike, model: Module,
                    optimizer: Optimizer | None = None,
                    schedule: LRSchedule | None = None,
                    epoch: int = 0,
                    metadata: dict | None = None) -> None:
    """Write model (+ optimizer + schedule) state to one npz archive."""
    arrays: dict[str, np.ndarray] = {"format": np.str_(_FORMAT),
                                     "epoch": np.int64(epoch)}
    for key, arr in model.state_dict().items():
        arrays[f"model/{key}"] = arr
    if optimizer is not None:
        _flatten_optimizer(optimizer.state_dict(), arrays)
    if schedule is not None:
        sched = schedule.state_dict()
        arrays["sched/step"] = np.int64(sched["step"])
        arrays["sched/base_lr"] = np.float64(sched["base_lr"])
    if metadata:
        arrays["metadata"] = np.str_(json.dumps(metadata))
    arrays["rng"] = np.str_(_capture_rng(model))
    np.savez_compressed(path, **arrays)


def load_checkpoint(path: str | os.PathLike, model: Module,
                    optimizer: Optimizer | None = None,
                    schedule: LRSchedule | None = None) -> dict:
    """Restore state in place; returns ``{"epoch": int, "metadata": dict}``.

    Components passed as ``None`` are skipped, so an inference-only
    consumer can load just the model from a full training checkpoint.
    """
    with np.load(path, allow_pickle=False) as z:
        if str(z["format"]) != _FORMAT:
            raise ValueError(f"not a {_FORMAT} archive: {path}")
        model_state = {key.split("/", 1)[1]: z[key]
                       for key in z.files if key.startswith("model/")}
        model.load_state_dict(model_state)
        if "rng" in z.files:  # absent in pre-v1.2 archives
            _restore_rng(model, str(z["rng"]))
        if optimizer is not None:
            if "opt/lr" not in z.files:
                raise ValueError("checkpoint holds no optimizer state")
            optimizer.load_state_dict(_unflatten_optimizer(z))
        if schedule is not None:
            if "sched/step" not in z.files:
                raise ValueError("checkpoint holds no schedule state")
            schedule.load_state_dict({"step": int(z["sched/step"]),
                                      "base_lr": float(z["sched/base_lr"])})
        meta = (json.loads(str(z["metadata"]))
                if "metadata" in z.files else {})
        return {"epoch": int(z["epoch"]), "metadata": meta}
