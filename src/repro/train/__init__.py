"""Training loops, metrics, callbacks and convergence recording."""

from .metrics import EarlyStopping, accuracy, macro_f1, mae, running_average
from .callbacks import (
    Callback,
    CallbackList,
    EarlyStoppingCallback,
    EpochLogger,
)
from .trainer import (
    TrainingRecord,
    planned_forward,
    seed_stochastic_modules,
    train_graph_task,
    train_node_classification,
)
from .batching import batched_node_predictions, train_node_classification_batched
from .checkpointing import load_checkpoint, save_checkpoint

__all__ = [
    "accuracy",
    "mae",
    "macro_f1",
    "EarlyStopping",
    "running_average",
    "Callback",
    "CallbackList",
    "EarlyStoppingCallback",
    "EpochLogger",
    "TrainingRecord",
    "planned_forward",
    "seed_stochastic_modules",
    "train_node_classification",
    "train_graph_task",
    "train_node_classification_batched",
    "batched_node_predictions",
    "save_checkpoint",
    "load_checkpoint",
]
