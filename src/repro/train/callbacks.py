"""Training callbacks — the hook protocol the trainers fire during a run.

A callback observes one training run: the trainer calls ``on_fit_start``
once, ``on_epoch_end`` after every optimizer epoch (returning a truthy
value stops training), ``on_reform`` whenever the engine's runtime
feedback actually re-reformed the attention pattern (the TorchGT Auto
Tuner moving β_thre), and ``on_fit_end`` after the loop.  The
:class:`~repro.train.trainer.TrainingRecord` being built is passed to
every hook, so callbacks read metrics without private state.

Early stopping is implemented as a callback
(:class:`EarlyStoppingCallback`) rather than trainer-internal logic; the
legacy ``patience=`` trainer argument now just installs one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from .metrics import EarlyStopping

if TYPE_CHECKING:  # pragma: no cover
    from .trainer import TrainingRecord

__all__ = ["Callback", "CallbackList", "EarlyStoppingCallback",
           "EpochLogger"]


class Callback:
    """Base class: every hook is a no-op; override what you need."""

    def on_fit_start(self, record: "TrainingRecord") -> None:
        """Called once before the first epoch."""

    def on_epoch_end(self, epoch: int, record: "TrainingRecord") -> bool | None:
        """Called after each epoch; return truthy to stop training."""

    def on_reform(self, epoch: int, record: "TrainingRecord") -> None:
        """Called when the engine re-reformed its attention pattern."""

    def on_fit_end(self, record: "TrainingRecord") -> None:
        """Called once after the final epoch (even on early stop)."""


class CallbackList(Callback):
    """Fan a hook call out to several callbacks (stop if any asks)."""

    def __init__(self, callbacks: Iterable[Callback] | None = None):
        self.callbacks: list[Callback] = list(callbacks or ())

    def append(self, cb: Callback) -> None:
        """Add one callback to the fan-out list."""
        self.callbacks.append(cb)

    def on_fit_start(self, record) -> None:
        for cb in self.callbacks:
            cb.on_fit_start(record)

    def on_epoch_end(self, epoch, record) -> bool:
        stop = False
        for cb in self.callbacks:
            stop = bool(cb.on_epoch_end(epoch, record)) or stop
        return stop

    def on_reform(self, epoch, record) -> None:
        for cb in self.callbacks:
            cb.on_reform(epoch, record)

    def on_fit_end(self, record) -> None:
        for cb in self.callbacks:
            cb.on_fit_end(record)


class EarlyStoppingCallback(Callback):
    """Stop after ``patience`` epochs without validation improvement.

    Wraps :class:`~repro.train.metrics.EarlyStopping`; only consumes
    *new* validation points, so trainers with ``eval_every > 1`` (epochs
    without an eval) don't count against patience.
    """

    def __init__(self, patience: int, mode: str = "max",
                 min_delta: float = 0.0):
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.stopper = EarlyStopping(patience, mode=mode, min_delta=min_delta)
        self._seen = 0
        self.stopped_epoch: int | None = None

    def on_fit_start(self, record) -> None:
        # fresh stopper per run: a reused callback instance must not
        # judge the new run against the previous run's best metric
        self.stopper = EarlyStopping(self.patience, mode=self.mode,
                                     min_delta=self.min_delta)
        self.stopped_epoch = None
        self._seen = len(record.val_metric)

    def on_epoch_end(self, epoch, record) -> bool:
        stop = False
        while self._seen < len(record.val_metric):
            stop = self.stopper.update(record.val_metric[self._seen]) or stop
            self._seen += 1
        if stop:
            self.stopped_epoch = epoch
        return stop


class EpochLogger(Callback):
    """Print one line per epoch — ``repro train``'s live progress output."""

    def __init__(self, stream=None, every: int = 1):
        self.stream = stream
        self.every = max(every, 1)
        self._metrics_seen = 0

    def on_fit_start(self, record) -> None:
        self._metrics_seen = len(record.test_metric)

    def on_epoch_end(self, epoch, record) -> None:
        fresh_metric = len(record.test_metric) > self._metrics_seen
        self._metrics_seen = len(record.test_metric)
        if (epoch + 1) % self.every:
            return
        loss = record.train_loss[-1] if record.train_loss else float("nan")
        line = f"epoch {epoch + 1:>3}  loss {loss:>8.4f}"
        # only report a test metric produced *this* epoch — on epochs the
        # trainer skipped evaluation, repeating the old value would read
        # as a current result
        if fresh_metric:
            line += f"  test {record.metric_name} {record.test_metric[-1]:.4f}"
        print(line, file=self.stream)

    def on_reform(self, epoch, record) -> None:
        if (epoch + 1) % self.every:  # honor the same throttle as epochs
            return
        print(f"epoch {epoch + 1:>3}  [pattern re-reformed]", file=self.stream)


def as_callback_list(callbacks: Sequence[Callback] | Callback | None,
                     ) -> CallbackList:
    """Normalize the trainers' ``callbacks=`` argument.

    Always returns a *fresh* ``CallbackList`` — trainers append run-local
    callbacks (the ``patience`` stopper) to it, which must never mutate a
    list object the caller plans to reuse across runs.
    """
    if callbacks is None:
        return CallbackList()
    if isinstance(callbacks, CallbackList):
        return CallbackList(callbacks.callbacks)
    if isinstance(callbacks, Callback):
        return CallbackList([callbacks])
    return CallbackList(callbacks)
