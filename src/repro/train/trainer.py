"""Engine-agnostic training loops for node-level and graph-level tasks.

The trainer owns the optimization loop; the engine owns the system plan
(which attention kernel, which pattern).  Every epoch records wall-clock
time, train loss, and val/test metrics, producing the convergence curves
of Figures 8/10/11 and the accuracy columns of Tables V/VII/VIII.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.engine import Engine, SequenceContext
from ..graph.datasets import GraphDataset, NodeDataset
from ..models.encodings import GraphEncodings, compute_encodings
from ..tensor import AdamW, Dropout, clip_grad_norm, precision_scope
from ..tensor import functional as F
from .callbacks import Callback, EarlyStoppingCallback, as_callback_list
from .checkpointing import load_checkpoint, save_checkpoint
from .metrics import accuracy, mae

__all__ = ["TrainingRecord", "planned_forward", "seed_stochastic_modules",
           "train_node_classification", "train_graph_task"]


@dataclass
class TrainingRecord:
    """Per-epoch training history plus preprocessing cost."""

    engine: str
    dataset: str
    train_loss: list[float] = field(default_factory=list)
    val_metric: list[float] = field(default_factory=list)
    test_metric: list[float] = field(default_factory=list)
    epoch_times: list[float] = field(default_factory=list)
    preprocess_seconds: float = 0.0
    metric_name: str = "accuracy"
    start_epoch: int = 0  # >0 when the run resumed from a checkpoint

    @property
    def epochs_trained(self) -> int:
        """Total epochs the model has seen, counting pre-resume ones."""
        return self.start_epoch + len(self.train_loss)

    @property
    def final_test(self) -> float:
        return self.test_metric[-1] if self.test_metric else float("nan")

    @property
    def best_test(self) -> float:
        if not self.test_metric:
            return float("nan")
        return max(self.test_metric) if self.metric_name == "accuracy" \
            else min(self.test_metric)

    @property
    def mean_epoch_time(self) -> float:
        # skip the first (warmup) epoch like the paper's measurement protocol
        times = self.epoch_times[1:] or self.epoch_times
        return float(np.mean(times)) if times else float("nan")

    def cumulative_time(self) -> np.ndarray:
        return np.cumsum(self.epoch_times)


def seed_stochastic_modules(model, seed: int) -> None:
    """Re-seed every stochastic submodule (dropout, gumbel noise) of ``model``.

    Model *initialization* is already deterministic (each model seeds its
    weight RNG at construction); this pins the *training-time* noise
    streams, so two runs with the same trainer ``seed`` are bitwise
    identical — and two runs with different seeds actually differ.  Each
    module's stream is keyed by ``(seed, traversal index)`` alone, so a
    module keeps its stream as long as its position does not move.
    """
    for i, m in enumerate(model.modules()):
        if isinstance(m, Dropout):
            m.rng = np.random.default_rng([seed, i, 0])
        if hasattr(m, "_gumbel_rng"):
            m._gumbel_rng = np.random.default_rng([seed, i, 1])


def planned_forward(model, engine: Engine, ctx: SequenceContext,
                    feats: np.ndarray, enc: GraphEncodings, train: bool):
    """One planned forward pass — the single train/eval call site.

    Asks the engine for its training plan (which advances interleave
    state) or its stateless eval plan, and applies it to the model call.
    """
    plan = engine.plan(ctx) if train else engine.eval_plan(ctx)
    return model(feats, enc, backend=plan.kernel, pattern=plan.pattern,
                 use_bias=plan.use_bias)


def _prepare_node_inputs(dataset: NodeDataset, engine: Engine,
                         lap_pe_dim: int) -> tuple[SequenceContext, GraphEncodings,
                                                   np.ndarray, np.ndarray,
                                                   np.ndarray, np.ndarray, np.ndarray]:
    """Run engine preprocessing and carry node arrays through reordering."""
    ctx = engine.prepare_graph(dataset.graph)
    feats, labels = dataset.features, dataset.labels
    train_m, val_m, test_m = dataset.train_mask, dataset.val_mask, dataset.test_mask
    inv = ctx.node_permutation_inverse()
    if inv is not None:
        feats, labels = feats[inv], labels[inv]
        train_m, val_m, test_m = train_m[inv], val_m[inv], test_m[inv]
    t0 = time.perf_counter()
    enc = compute_encodings(ctx.graph, lap_pe_dim=lap_pe_dim)
    ctx.preprocess_seconds += time.perf_counter() - t0
    return ctx, enc, feats, labels, train_m, val_m, test_m


def train_node_classification(
    model,
    dataset: NodeDataset,
    engine: Engine,
    epochs: int = 30,
    lr: float = 1e-3,
    weight_decay: float = 1e-4,
    grad_clip: float = 5.0,
    lap_pe_dim: int = 8,
    eval_every: int = 1,
    seed: int = 0,
    patience: int | None = None,
    callbacks: Sequence[Callback] | Callback | None = None,
    checkpoint_path: str | None = None,
    resume_path: str | None = None,
) -> TrainingRecord:
    """Full-graph node classification (the sequence is all N nodes).

    ``seed`` pins the training-time noise streams (dropout) via
    :func:`seed_stochastic_modules`, so a run is reproducible end to end
    given the same model-init seed.  ``patience`` (optional) enables
    early stopping on validation accuracy: training halts after
    ``patience`` consecutive epochs with no improvement, and the record
    holds only the epochs actually run.  ``callbacks`` receive
    ``on_epoch_end`` / ``on_reform`` hooks (see
    :mod:`repro.train.callbacks`).

    ``checkpoint_path`` writes a full training checkpoint (model +
    optimizer + noise-stream positions + epoch counter) after every
    epoch; ``resume_path`` restores one and continues from its epoch —
    bit-compatible with the uninterrupted run for engines without
    runtime tuner state (the record then holds only the resumed epochs).
    """
    seed_stochastic_modules(model, seed)
    with precision_scope(engine.precision):
        ctx, enc, feats, labels, train_m, val_m, test_m = _prepare_node_inputs(
            dataset, engine, lap_pe_dim)
        record = TrainingRecord(engine=engine.name, dataset=dataset.name,
                                preprocess_seconds=ctx.preprocess_seconds)
        opt = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
        start_epoch = 0
        if resume_path is not None:
            start_epoch = load_checkpoint(resume_path, model, opt)["epoch"]
            record.start_epoch = start_epoch
        masked_labels = np.where(train_m, labels, -1)
        cbs = as_callback_list(callbacks)
        if patience:
            cbs.append(EarlyStoppingCallback(patience, mode="max"))
        cbs.on_fit_start(record)

        for epoch in range(start_epoch, epochs):
            t0 = time.perf_counter()
            model.train()
            logits = planned_forward(model, engine, ctx, feats, enc, train=True)
            loss = F.cross_entropy(logits, masked_labels, ignore_index=-1)
            opt.zero_grad()
            loss.backward()
            clip_grad_norm(opt.params, grad_clip)
            opt.step()
            epoch_time = time.perf_counter() - t0
            record.train_loss.append(loss.item())
            record.epoch_times.append(epoch_time)
            engine.observe_epoch(loss.item(), epoch_time)
            reformed_before = ctx.reformed
            ctx = engine.refresh(ctx)
            if ctx.reformed is not reformed_before:
                cbs.on_reform(epoch, record)

            if len(record.train_loss) % eval_every == 0:
                model.eval()
                from ..tensor import no_grad
                with no_grad():
                    out = planned_forward(model, engine, ctx, feats, enc, train=False)
                record.val_metric.append(accuracy(out.data, labels, val_m))
                record.test_metric.append(accuracy(out.data, labels, test_m))
            if checkpoint_path is not None:
                save_checkpoint(checkpoint_path, model, opt, epoch=epoch + 1,
                                metadata={"dataset": dataset.name,
                                          "engine": engine.name})
            if cbs.on_epoch_end(epoch, record):
                break
        cbs.on_fit_end(record)
        return record


def train_graph_task(
    model,
    dataset: GraphDataset,
    engine: Engine,
    epochs: int = 20,
    lr: float = 1e-3,
    weight_decay: float = 1e-4,
    grad_clip: float = 5.0,
    lap_pe_dim: int = 8,
    seed: int = 0,
    patience: int | None = None,
    callbacks: Sequence[Callback] | Callback | None = None,
    checkpoint_path: str | None = None,
    resume_path: str | None = None,
) -> TrainingRecord:
    """Graph-level classification or regression (one graph per step).

    Each graph is one input sequence; gradients are applied per graph
    (batch size 1), matching the long-sequence regime the paper targets
    for MalNet-scale graphs.  ``seed`` pins training-time noise streams;
    ``patience`` early-stops on the validation metric (minimized for
    regression MAE, maximized for accuracy); ``callbacks`` receive the
    :mod:`repro.train.callbacks` hooks.  ``checkpoint_path`` /
    ``resume_path`` save/restore per-epoch training state exactly as in
    :func:`train_node_classification`.
    """
    seed_stochastic_modules(model, seed)
    with precision_scope(engine.precision):
        is_regression = dataset.num_classes == 0
        metric_name = "mae" if is_regression else "accuracy"

        # preprocessing: one context + encodings per graph
        contexts: list[SequenceContext] = []
        encodings: list[GraphEncodings] = []
        preproc = 0.0
        for g in dataset.graphs:
            ctx = engine.prepare_graph(g)
            t0 = time.perf_counter()
            enc = compute_encodings(ctx.graph, lap_pe_dim=lap_pe_dim)
            preproc += time.perf_counter() - t0 + ctx.preprocess_seconds
            contexts.append(ctx)
            encodings.append(enc)

        record = TrainingRecord(engine=engine.name, dataset=dataset.name,
                                preprocess_seconds=preproc, metric_name=metric_name)
        opt = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)

        def graph_features(i: int) -> np.ndarray:
            feats = dataset.features[i]
            inv = contexts[i].node_permutation_inverse()
            return feats[inv] if inv is not None else feats

        def evaluate(idx: np.ndarray) -> float:
            from ..tensor import no_grad
            model.eval()
            preds = []
            with no_grad():
                for i in idx:
                    out = planned_forward(model, engine, contexts[i], graph_features(i),
                                   encodings[i], train=False)
                    preds.append(out.data.reshape(-1))
            if is_regression:
                return mae(np.array([p[0] for p in preds]), dataset.targets[idx])
            logits = np.stack([p for p in preds])
            return accuracy(logits, dataset.targets[idx])

        start_epoch = 0
        if resume_path is not None:
            start_epoch = load_checkpoint(resume_path, model, opt)["epoch"]
            record.start_epoch = start_epoch
        cbs = as_callback_list(callbacks)
        if patience:
            cbs.append(EarlyStoppingCallback(
                patience, mode="min" if is_regression else "max"))
        cbs.on_fit_start(record)
        for epoch in range(start_epoch, epochs):
            t0 = time.perf_counter()
            model.train()
            epoch_loss = 0.0
            for i in dataset.train_idx:
                out = planned_forward(model, engine, contexts[i], graph_features(i),
                               encodings[i], train=True)
                if is_regression:
                    loss = F.l1_loss(out, np.array([dataset.targets[i]]))
                else:
                    loss = F.cross_entropy(out, np.array([dataset.targets[i]]))
                opt.zero_grad()
                loss.backward()
                clip_grad_norm(opt.params, grad_clip)
                opt.step()
                epoch_loss += loss.item()
            epoch_time = time.perf_counter() - t0
            record.train_loss.append(epoch_loss / max(len(dataset.train_idx), 1))
            record.epoch_times.append(epoch_time)
            engine.observe_epoch(record.train_loss[-1], epoch_time)
            record.val_metric.append(evaluate(dataset.val_idx))
            record.test_metric.append(evaluate(dataset.test_idx))
            if checkpoint_path is not None:
                save_checkpoint(checkpoint_path, model, opt, epoch=epoch + 1,
                                metadata={"dataset": dataset.name,
                                          "engine": engine.name})
            if cbs.on_epoch_end(epoch, record):
                break
        cbs.on_fit_end(record)
        return record
