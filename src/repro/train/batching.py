"""Mini-batch (sampled-sequence) training for node-level tasks.

§II-B's node-level setting: "the input sequences can either encode all
nodes in the graph or a mini-batch of nodes", and Figure 1 sweeps that
mini-batch size S as the *sequence length*.  This module is the library
form of that mode: each step samples S nodes, induces their subgraph,
runs the engine's plan over it, and applies the loss on the batch's
training nodes.  Evaluation batches the same way (deployment-matched
inference), so accuracy reflects the context size actually used.

The engine preprocesses *per batch* — cluster reordering and pattern
construction happen on the induced subgraph, exactly as TorchGT would
process a sampled sequence — and engine preprocessing time is summed
into the record like the full-graph trainer does.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.engine import Engine
from ..graph.datasets import NodeDataset
from ..models.encodings import compute_encodings
from ..tensor import AdamW, clip_grad_norm, no_grad, precision_scope
from ..tensor import functional as F
from .callbacks import Callback, EarlyStoppingCallback, as_callback_list
from .checkpointing import load_checkpoint, save_checkpoint
from .metrics import accuracy
from .trainer import TrainingRecord, planned_forward, seed_stochastic_modules

__all__ = ["batched_node_predictions", "train_node_classification_batched"]


def _batches(n: int, seq_len: int, rng: np.random.Generator,
             min_batch: int = 4) -> list[np.ndarray]:
    """Random node partition into sorted batches of ≈ ``seq_len``."""
    order = rng.permutation(n)
    out = []
    for lo in range(0, n, seq_len):
        nodes = np.sort(order[lo:lo + seq_len])
        if len(nodes) >= min_batch:
            out.append(nodes)
    return out


def batched_node_predictions(model, dataset: NodeDataset, engine: Engine,
                             seq_len: int, rng: np.random.Generator,
                             lap_pe_dim: int = 8) -> np.ndarray:
    """Predict every node in mini-batches of ``seq_len`` (eval mode)."""
    model.eval()
    logits = np.zeros((dataset.num_nodes, dataset.num_classes))
    with no_grad():
        for nodes in _batches(dataset.num_nodes, seq_len, rng, min_batch=1):
            sub, _ = dataset.graph.subgraph(nodes)
            ctx = engine.prepare_inference(sub)
            enc = compute_encodings(ctx.graph, lap_pe_dim=lap_pe_dim)
            feats = dataset.features[nodes]
            inv = ctx.node_permutation_inverse()
            batch_to_orig = nodes[inv] if inv is not None else nodes
            if inv is not None:
                feats = feats[inv]
            out = planned_forward(model, engine, ctx, feats, enc,
                                  train=False)
            logits[batch_to_orig] = out.data
    return logits


def train_node_classification_batched(
    model,
    dataset: NodeDataset,
    engine: Engine,
    seq_len: int,
    epochs: int = 10,
    lr: float = 1e-3,
    weight_decay: float = 1e-4,
    grad_clip: float = 5.0,
    lap_pe_dim: int = 8,
    seed: int = 0,
    patience: int | None = None,
    callbacks: Sequence[Callback] | Callback | None = None,
    checkpoint_path: str | None = None,
    resume_path: str | None = None,
) -> TrainingRecord:
    """Node classification with sampled sequences of length ``seq_len``.

    One epoch = one random partition of all nodes into batches, one
    optimizer step per batch containing training nodes.  Returns the
    same :class:`~repro.train.trainer.TrainingRecord` as the full-graph
    trainer, with ``seq_len`` stamped into the dataset name.
    ``patience`` / ``callbacks`` behave exactly as in the full-graph
    trainer.  ``checkpoint_path`` / ``resume_path`` save/restore
    per-epoch training state; on resume the batch-sampling stream is
    fast-forwarded past the completed epochs, so the resumed run draws
    the same node partitions the uninterrupted run would have.
    """
    if seq_len < 2:
        raise ValueError("seq_len must be >= 2")
    seed_stochastic_modules(model, seed)
    with precision_scope(engine.precision):
        rng = np.random.default_rng(seed)
        record = TrainingRecord(engine=engine.name,
                                dataset=f"{dataset.name}[S={seq_len}]")
        opt = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
        start_epoch = 0
        if resume_path is not None:
            start_epoch = load_checkpoint(resume_path, model, opt)["epoch"]
            record.start_epoch = start_epoch
            for _ in range(start_epoch):
                # each completed epoch consumed two permutations: one for
                # the training partition, one for batched eval
                rng.permutation(dataset.num_nodes)
                rng.permutation(dataset.num_nodes)
        cbs = as_callback_list(callbacks)
        if patience:
            cbs.append(EarlyStoppingCallback(patience, mode="max"))
        cbs.on_fit_start(record)

        for epoch in range(start_epoch, epochs):
            t0 = time.perf_counter()
            model.train()
            epoch_loss, steps = 0.0, 0
            for nodes in _batches(dataset.num_nodes, seq_len, rng):
                labels = np.where(dataset.train_mask[nodes],
                                  dataset.labels[nodes], -1)
                if (labels != -1).sum() == 0:
                    continue
                sub, _ = dataset.graph.subgraph(nodes)
                p0 = time.perf_counter()
                ctx = engine.prepare_graph(sub)
                enc = compute_encodings(ctx.graph, lap_pe_dim=lap_pe_dim)
                record.preprocess_seconds += time.perf_counter() - p0
                feats = dataset.features[nodes]
                inv = ctx.node_permutation_inverse()
                if inv is not None:
                    feats, labels = feats[inv], labels[inv]
                logits = planned_forward(model, engine, ctx, feats, enc,
                                         train=True)
                loss = F.cross_entropy(logits, labels, ignore_index=-1)
                opt.zero_grad()
                loss.backward()
                clip_grad_norm(opt.params, grad_clip)
                opt.step()
                epoch_loss += loss.item()
                steps += 1
            epoch_time = time.perf_counter() - t0
            record.train_loss.append(epoch_loss / max(steps, 1))
            record.epoch_times.append(epoch_time)
            engine.observe_epoch(record.train_loss[-1], epoch_time)

            logits = batched_node_predictions(model, dataset, engine, seq_len,
                                              rng, lap_pe_dim)
            record.val_metric.append(
                accuracy(logits, dataset.labels, dataset.val_mask))
            record.test_metric.append(
                accuracy(logits, dataset.labels, dataset.test_mask))
            if checkpoint_path is not None:
                save_checkpoint(checkpoint_path, model, opt, epoch=epoch + 1,
                                metadata={"dataset": dataset.name,
                                          "engine": engine.name,
                                          "seq_len": seq_len})
            if cbs.on_epoch_end(epoch, record):
                break
        cbs.on_fit_end(record)
        return record
