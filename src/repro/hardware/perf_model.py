"""Roofline-based training cost model.

Prices every kernel of a graph transformer training iteration on a modeled
GPU (see :mod:`repro.hardware.device`) so the paper-scale experiments —
epoch times at S=256K on 8×3090, OOM boundaries, max sequence lengths —
can be reproduced *in shape* without the silicon.

Pricing rules (classic roofline, plus access-regularity):

* dense GEMM-like work runs at ``peak_flops · gemm_efficiency``;
* streaming traffic runs at HBM bandwidth;
* **irregular** (per-edge gather/scatter) traffic runs at
  ``HBM · random_access_efficiency`` (a few percent — this single factor
  is what makes topology-pattern attention 30× slower than dense at equal
  FLOPs, Table II);
* cluster-sparse traffic runs at the :class:`~repro.hardware.cache.CacheModel`
  effective bandwidth, divided by the achieved warp occupancy.

A kernel's time is ``max(compute_time, memory_time) + launch_overhead``.
Backward is priced at 2.5× forward FLOPs (recompute + two grad GEMMs) with
an extra 2× penalty on irregular traffic (scatter-add atomics).

Calibration: the model does not chase the authors' absolute seconds; the
two fitted constants (`LAUNCH_OVERHEAD_S`, `PER_ITER_FIXED_S`) are set so
small-kernel times land in the right regime.  EXPERIMENTS.md records
paper-vs-model numbers for every table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import CacheModel
from .device import DeviceSpec, LinkSpec, ServerSpec

__all__ = [
    "AttentionKind",
    "KernelCost",
    "IterationCost",
    "WorkloadSpec",
    "TrainingCostModel",
    "OutOfMemoryError",
]

LAUNCH_OVERHEAD_S = 8e-6
PER_ITER_FIXED_S = 5e-3  # optimizer step, host sync, loader — per iteration
BACKWARD_FLOP_FACTOR = 2.5
BACKWARD_IRREGULAR_FACTOR = 2.0  # atomics in scatter-add gradients
ACTIVATION_OVERHEAD = 1.5  # allocator slack + misc buffers
# per-sub-block dispatch/index cost of the cluster-sparse kernel (block
# descriptor fetch + address setup); keeps the modeled TorchGT kernel gap
# vs FlashAttention near the paper's measured ~100× instead of unbounded
SUBBLOCK_OVERHEAD_S = 5e-8


class OutOfMemoryError(RuntimeError):
    """Raised when a configuration does not fit device memory."""


class AttentionKind:
    DENSE = "dense"  # GP-Raw
    FLASH = "flash"  # GP-Flash
    SPARSE = "sparse"  # GP-Sparse (topology pattern, irregular access)
    CLUSTER_SPARSE = "cluster-sparse"  # TorchGT's ECR execution
    LINEAR = "linear"  # kernelized low-rank attention (performer)
    ALL = (DENSE, FLASH, SPARSE, CLUSTER_SPARSE, LINEAR)


def _coerce_kind(kind) -> str:
    """Accept an AttentionKind string or any registered
    :class:`~repro.attention.registry.KernelSpec` (priced through its
    ``attention_kind`` metadata)."""
    return getattr(kind, "attention_kind", kind)


@dataclass
class KernelCost:
    """Time/byte/flop breakdown of one kernel invocation."""

    name: str
    flops: float
    regular_bytes: float
    irregular_bytes: float
    time_s: float


@dataclass
class IterationCost:
    """One training iteration's cost decomposition (per GPU)."""

    attention_s: float
    ffn_s: float
    projections_s: float
    communication_s: float
    fixed_s: float
    kernels: list[KernelCost] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return (self.attention_s + self.ffn_s + self.projections_s
                + self.communication_s + self.fixed_s)

    @property
    def attention_fraction(self) -> float:
        t = self.total_s
        return self.attention_s / t if t else 0.0


@dataclass
class WorkloadSpec:
    """Everything the cost model needs about one training configuration."""

    seq_len: int  # S
    hidden_dim: int  # d
    num_heads: int  # H
    num_layers: int  # L
    avg_degree: float  # Ẽ/S of the topology pattern
    num_gpus: int = 1  # parallelism degree P
    itemsize: int = 4  # bytes per element (4 = fp32, 2 = bf16)
    db: int = 16  # sub-block dimension for cluster-sparse
    cluster_dim: int = 0  # rows per cluster (0 = derive as S/8)
    dense_interleave_period: int = 0  # every T-th iteration runs dense (0 = never)
    tokens_per_epoch: int = 0  # defaults to seq_len (one full-graph iteration)
    feature_rank: int = 64  # m: random-feature count of linear attention

    @property
    def head_dim(self) -> int:
        return max(self.hidden_dim // self.num_heads, 1)

    @property
    def pattern_entries(self) -> float:
        """Ẽ: entries of the topology pattern (edges + self-loops)."""
        return self.seq_len * (self.avg_degree + 1.0)

    @property
    def iterations_per_epoch(self) -> int:
        tokens = self.tokens_per_epoch or self.seq_len
        return max(int(-(-tokens // self.seq_len)), 1)


class TrainingCostModel:
    """Prices graph transformer training on a modeled GPU server."""

    def __init__(self, server: ServerSpec):
        self.server = server
        self.device = server.device

    # ------------------------------------------------------------------ #
    # kernel-level pricing
    # ------------------------------------------------------------------ #
    def attention_kernel(self, kind: str, w: WorkloadSpec,
                         backward: bool = True) -> KernelCost:
        """Forward(+backward) attention time per GPU.

        Sequence parallelism splits heads across GPUs after the all-to-all
        (§III-C), so per-GPU work is the full-S kernel over H/P heads.
        """
        kind = _coerce_kind(kind)
        dev = self.device
        S, dh = w.seq_len, w.head_dim
        heads_local = max(w.num_heads / w.num_gpus, 1.0)
        itemsize = w.itemsize

        if kind in (AttentionKind.DENSE, AttentionKind.FLASH):
            scores = float(S) * S * heads_local
        elif kind == AttentionKind.LINEAR:
            scores = float(S) * w.feature_rank * heads_local
        else:
            scores = w.pattern_entries * heads_local
        flops = 4.0 * scores * dh
        if backward:
            flops *= 1.0 + BACKWARD_FLOP_FACTOR

        if kind == AttentionKind.DENSE:
            regular = itemsize * heads_local * S * (3.0 * S + 3.0 * dh)
            irregular = 0.0
            compute = flops / (dev.gemm_flops * dev.gemm_efficiency)
            memory = regular / dev.hbm_bandwidth
        elif kind == AttentionKind.FLASH:
            regular = itemsize * heads_local * S * dh * 8.0
            irregular = 0.0
            # tensor-core GEMMs, at lower sustained efficiency (small tiles)
            compute = flops / (dev.gemm_flops * dev.gemm_efficiency * 0.75)
            memory = regular / dev.hbm_bandwidth
        elif kind == AttentionKind.SPARSE:
            entries = w.pattern_entries * heads_local
            regular = itemsize * heads_local * S * dh * 4.0
            irregular = itemsize * entries * dh * 2.0
            if backward:
                irregular *= 1.0 + BACKWARD_IRREGULAR_FACTOR
            compute = flops / (dev.peak_flops_fp32 * 0.25)
            memory = (regular / dev.hbm_bandwidth
                      + irregular / (dev.hbm_bandwidth * dev.random_access_efficiency))
        elif kind == AttentionKind.CLUSTER_SPARSE:
            entries = w.pattern_entries * heads_local
            cluster_dim = w.cluster_dim or max(S // 8, 1)
            cache = CacheModel(dev, w.hidden_dim, itemsize)
            eff_bw = cache.effective_bandwidth(w.db, cluster_dim)
            occ = cache.warp_occupancy(w.db, int(entries))
            regular = itemsize * entries * dh * 2.0
            irregular = 0.0
            compute = flops / (dev.peak_flops_fp32 * 0.5 * max(occ, 0.05))
            memory = regular / eff_bw
            n_subblocks = entries / float(w.db * w.db)
            compute += n_subblocks * SUBBLOCK_OVERHEAD_S
        elif kind == AttentionKind.LINEAR:
            # two skinny GEMMs (phi_K^T V then phi_Q @ KV), all streaming
            m_rank = w.feature_rank
            regular = itemsize * heads_local * S * (4.0 * m_rank + 4.0 * dh)
            irregular = 0.0
            compute = flops / (dev.gemm_flops * dev.gemm_efficiency)
            memory = regular / dev.hbm_bandwidth
        else:
            raise ValueError(f"unknown attention kind {kind!r}")

        time_s = max(compute, memory) + LAUNCH_OVERHEAD_S
        return KernelCost(name=f"attention/{kind}", flops=flops,
                          regular_bytes=regular, irregular_bytes=irregular,
                          time_s=time_s)

    def ffn_kernel(self, w: WorkloadSpec, backward: bool = True) -> KernelCost:
        """Feed-forward block (d → 4d → d) per GPU (rows split S/P)."""
        dev = self.device
        rows = w.seq_len / w.num_gpus
        flops = 16.0 * rows * w.hidden_dim**2  # two GEMMs fwd
        if backward:
            flops *= 3.0
        regular = w.itemsize * rows * w.hidden_dim * 10.0
        time_s = max(flops / (dev.gemm_flops * dev.gemm_efficiency),
                     regular / dev.hbm_bandwidth) + LAUNCH_OVERHEAD_S
        return KernelCost("ffn", flops, regular, 0.0, time_s)

    def projection_kernel(self, w: WorkloadSpec, backward: bool = True) -> KernelCost:
        """QKV + output projections (4 d×d GEMMs) per GPU."""
        dev = self.device
        rows = w.seq_len / w.num_gpus
        flops = 8.0 * rows * w.hidden_dim**2
        if backward:
            flops *= 3.0
        regular = w.itemsize * rows * w.hidden_dim * 8.0
        time_s = max(flops / (dev.gemm_flops * dev.gemm_efficiency),
                     regular / dev.hbm_bandwidth) + LAUNCH_OVERHEAD_S
        return KernelCost("projections", flops, regular, 0.0, time_s)

    # ------------------------------------------------------------------ #
    # communication
    # ------------------------------------------------------------------ #
    def all_to_all_time(self, w: WorkloadSpec, volume_factor: float = 4.0) -> float:
        """Per-layer all-to-all pair: total message 4·S·d/P bytes per GPU.

        §III-C: two all-to-alls per layer move 3Sd (QKVB in) + Sd (out),
        i.e. O(S/P) per GPU — the communication-light property.
        """
        P = w.num_gpus
        if P <= 1:
            return 0.0
        link = self.server.link_for(P)
        bytes_per_gpu = volume_factor * w.seq_len * w.hidden_dim * w.itemsize / P
        # each GPU exchanges (P-1)/P of its buffer with peers
        wire = bytes_per_gpu * (P - 1) / P
        return wire / link.bandwidth + link.latency_s * (P - 1)

    def all_gather_time(self, w: WorkloadSpec) -> float:
        """Per-layer all-gather baseline: O(S·d) per GPU (not /P)."""
        P = w.num_gpus
        if P <= 1:
            return 0.0
        link = self.server.link_for(P)
        bytes_per_gpu = 4.0 * w.seq_len * w.hidden_dim * w.itemsize * (P - 1) / P
        return bytes_per_gpu / link.bandwidth + link.latency_s * (P - 1)

    def ring_time(self, w: WorkloadSpec) -> float:
        """Per-layer Ring Attention rotation: K and V blocks of S/P·d each
        travel P−1 hops → 2·S·d·(P−1)/P bytes per GPU, plus one link
        latency per hop (the hops are serialized, unlike a fused
        all-to-all's single phase) — O(S·d) like all-gather, with worse
        latency scaling.
        """
        P = w.num_gpus
        if P <= 1:
            return 0.0
        link = self.server.link_for(P)
        bytes_per_gpu = 2.0 * w.seq_len * w.hidden_dim * w.itemsize * (P - 1) / P
        return bytes_per_gpu / link.bandwidth + link.latency_s * (P - 1)

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #
    def memory_required(self, kind: str, w: WorkloadSpec) -> float:
        """Peak per-GPU training memory (bytes) for one iteration."""
        kind = _coerce_kind(kind)
        S, d, L = w.seq_len, w.hidden_dim, w.num_layers
        H, P = w.num_heads, w.num_gpus
        itemsize = w.itemsize
        # activations saved for backward: hidden states, LN stats, FFN
        # intermediate (4d) and attention I/O — ~32 d-sized tensors per row
        # (constant calibrated so TorchGT's 1-GPU max-S lands near the
        # paper's 400K on 24 GB)
        act = L * 32.0 * d * (S / P) * itemsize
        # parameters + grads + Adam states (×4), replicated per GPU
        params = 12.0 * L * d * d * 4.0 * 4
        if kind == AttentionKind.DENSE:
            # GP-Raw's simple graph parallelism splits rows S/P but not
            # heads; each layer saves scores + probabilities (S/P × S per
            # head) — hence max-S grows only ~√P, matching Fig. 9(a)
            attn = L * H * S * (S / P) * itemsize * 2.0
        elif kind == AttentionKind.FLASH:
            attn = L * (H / P) * S * 8.0 * itemsize  # row stats only
        elif kind == AttentionKind.LINEAR:
            # the phi feature matrices (S x m per head) saved for backward
            attn = L * (H / P) * S * w.feature_rank * itemsize
        else:
            # probabilities saved per pattern entry (topology or reformed)
            attn = L * (H / P) * w.pattern_entries * itemsize
        return (act + attn) * ACTIVATION_OVERHEAD + params

    def fits_memory(self, kind: str, w: WorkloadSpec) -> bool:
        return self.memory_required(kind, w) <= self.device.memory_bytes * 0.92

    def max_sequence_length(self, kind: str, w: WorkloadSpec,
                            hi: int = 64_000_000) -> int:
        """Largest S that fits device memory (bisection; other fields fixed)."""
        lo = 1
        hi_s = hi
        from dataclasses import replace
        if self.fits_memory(kind, replace(w, seq_len=hi_s)):
            return hi_s
        while hi_s - lo > max(lo // 256, 1):
            mid = (lo + hi_s) // 2
            if self.fits_memory(kind, replace(w, seq_len=mid)):
                lo = mid
            else:
                hi_s = mid
        return lo

    # ------------------------------------------------------------------ #
    # iteration / epoch composition
    # ------------------------------------------------------------------ #
    def iteration_cost(self, kind: str, w: WorkloadSpec,
                       check_memory: bool = True) -> IterationCost:
        """Full fwd+bwd iteration cost per GPU for attention ``kind``."""
        kind = _coerce_kind(kind)
        if check_memory and not self.fits_memory(kind, w):
            need = self.memory_required(kind, w) / 1024**3
            raise OutOfMemoryError(
                f"{kind} attention at S={w.seq_len} needs {need:.1f} GiB "
                f"> {self.device.memory_bytes / 1024**3:.0f} GiB on {self.device.name}")
        L = w.num_layers
        attn = self.attention_kernel(kind, w)
        # dual-interleave: amortize a periodic dense pass into the average
        attn_time = attn.time_s
        if kind == AttentionKind.CLUSTER_SPARSE and w.dense_interleave_period > 0:
            dense_like = self.attention_kernel(AttentionKind.FLASH, w)
            T = w.dense_interleave_period
            attn_time = ((T - 1) * attn.time_s + dense_like.time_s) / T
        ffn = self.ffn_kernel(w)
        proj = self.projection_kernel(w)
        comm = 2.0 * self.all_to_all_time(w)
        return IterationCost(
            attention_s=L * attn_time,
            ffn_s=L * ffn.time_s,
            projections_s=L * proj.time_s,
            communication_s=L * comm,
            fixed_s=PER_ITER_FIXED_S,
            kernels=[attn, ffn, proj],
        )

    def epoch_time(self, kind: str, w: WorkloadSpec,
                   check_memory: bool = True) -> float:
        """Seconds per epoch: iterations × iteration time."""
        it = self.iteration_cost(kind, w, check_memory=check_memory)
        return it.total_s * w.iterations_per_epoch

    def throughput_samples_per_s(self, kind: str, w: WorkloadSpec) -> float:
        """Training throughput in tokens (graph nodes) per second."""
        it = self.iteration_cost(kind, w)
        return w.seq_len / it.total_s
