"""Analytic GPU hardware model: devices, caches and the roofline pricer."""

from .device import (
    A100_80G,
    A100_SERVER,
    ETHERNET_1G,
    INFINIBAND_200G,
    NVLINK3,
    PCIE4_X16,
    RTX3090,
    RTX3090_SERVER,
    DeviceSpec,
    LinkSpec,
    ServerSpec,
)
from .cache import CacheModel
from .perf_model import (
    AttentionKind,
    IterationCost,
    KernelCost,
    OutOfMemoryError,
    TrainingCostModel,
    WorkloadSpec,
)

__all__ = [
    "DeviceSpec",
    "LinkSpec",
    "ServerSpec",
    "RTX3090",
    "A100_80G",
    "RTX3090_SERVER",
    "A100_SERVER",
    "PCIE4_X16",
    "ETHERNET_1G",
    "NVLINK3",
    "INFINIBAND_200G",
    "CacheModel",
    "AttentionKind",
    "KernelCost",
    "IterationCost",
    "WorkloadSpec",
    "TrainingCostModel",
    "OutOfMemoryError",
]
