"""L1/L2 cache and warp-occupancy model for the sub-block indexing kernel.

Section III-D picks the sub-block dimension ``db`` by profiling warp
occupancy and cache hit rates (Fig. 6): larger sub-blocks reuse more data
per block (hit rates rise) but leave fewer independent blocks to schedule
(occupancy falls), so throughput peaks at a mid-range ``db``.  This module
reproduces those curves from first principles:

* **L1 hit rate** — a db×db sub-block touches ``db`` K-rows and ``db``
  V-rows of ``d`` floats; reuse per loaded row grows with ``db`` until the
  working set (``2·db·d·4`` bytes) spills the per-SM L1;
* **L2 hit rate** — same saturation against the (much larger) shared L2,
  with cluster-level reuse: within a cluster of dimension ``S/k`` the
  K/V rows are shared across sub-blocks;
* **warp occupancy** — with ``B`` independent sub-blocks and ``num_sms``
  SMs each needing several resident blocks to hide latency, occupancy
  saturates when ``B ≫ SMs`` and degrades as ``db`` grows (B ∝ 1/db²).
"""

from __future__ import annotations

import numpy as np

from .device import DeviceSpec

__all__ = ["CacheModel"]


class CacheModel:
    """Cache-hit and occupancy estimates for sub-block execution."""

    # latency-hiding target: resident blocks per SM for full occupancy
    BLOCKS_PER_SM_FULL = 8.0
    # relative bandwidths of the memory levels (vs HBM = 1)
    L1_SPEEDUP = 10.0
    L2_SPEEDUP = 3.0

    def __init__(self, device: DeviceSpec, hidden_dim: int, itemsize: int = 4):
        self.device = device
        self.d = int(hidden_dim)
        self.itemsize = itemsize

    # -- hit rates ------------------------------------------------------ #
    def l1_hit_rate(self, db: int) -> float:
        """Fraction of sub-block K/V accesses served from L1.

        Within a sub-block each of the ``db`` K-rows is reused by ``db``
        query rows, so the *ideal* hit fraction is ``1 - 1/db``; it decays
        once the working set exceeds L1.
        """
        working = 2 * db * self.d * self.itemsize
        fit = min(1.0, self.device.l1_bytes_per_sm / max(working, 1))
        ideal = 1.0 - 1.0 / max(db, 1)
        return float(ideal * fit)

    def l2_hit_rate(self, db: int, cluster_dim: int = 0) -> float:
        """Fraction of L1 misses served from L2.

        Grows with ``db`` (row reuse across warps of the same block) and
        with cluster locality: sub-blocks of one cluster share the
        cluster's K/V rows, which fit in L2 for reasonable cluster sizes.
        """
        working = 2 * max(cluster_dim, db) * self.d * self.itemsize
        fit = min(1.0, self.device.l2_bytes / max(working, 1))
        ideal = 1.0 - 1.0 / max(db, 2) ** 0.5
        return float(min(0.98, (0.5 + 0.5 * ideal) * fit))

    # -- occupancy ------------------------------------------------------ #
    def warp_occupancy(self, db: int, total_entries: int) -> float:
        """Achieved occupancy when covering ``total_entries`` score entries.

        ``total_entries / db²`` independent sub-blocks are distributed over
        the SMs; occupancy saturates at ~0.95 with ≥BLOCKS_PER_SM_FULL
        resident blocks per SM and falls off as blocks become scarce.
        Larger db also increases per-block register/SMEM pressure, which
        caps occupancy — modeled as a mild log penalty.
        """
        blocks = max(total_entries / float(db * db), 1.0)
        per_sm = blocks / self.device.num_sms
        saturation = min(1.0, per_sm / self.BLOCKS_PER_SM_FULL)
        pressure = 1.0 / (1.0 + 0.08 * np.log2(max(db, 1)))
        return float(np.clip(0.95 * saturation * pressure, 0.02, 0.95))

    # -- derived throughput ---------------------------------------------- #
    def effective_bandwidth(self, db: int, cluster_dim: int = 0) -> float:
        """Average bytes/s for sub-block K/V traffic given the hit mix."""
        h1 = self.l1_hit_rate(db)
        h2 = self.l2_hit_rate(db, cluster_dim) * (1 - h1)
        miss = 1.0 - h1 - h2
        bw = self.device.hbm_bandwidth
        # harmonic blend of level bandwidths weighted by access share
        denom = (h1 / (bw * self.L1_SPEEDUP)
                 + h2 / (bw * self.L2_SPEEDUP)
                 + miss / bw)
        return 1.0 / max(denom, 1e-18)

    def indexing_throughput(self, db: int, total_entries: int,
                            cluster_dim: int = 0) -> float:
        """Relative throughput of the indexing kernel at sub-block size db.

        The product of occupancy (compute-side) and effective bandwidth
        (memory-side) — the two opposing curves of Fig. 6(a) — normalized
        to HBM bandwidth so values are comparable across db.
        """
        occ = self.warp_occupancy(db, total_entries)
        bw = self.effective_bandwidth(db, cluster_dim) / self.device.hbm_bandwidth
        return float(occ * bw)

    def best_db(self, total_entries: int, cluster_dim: int = 0,
                candidates: tuple[int, ...] = (2, 4, 8, 16, 32, 64)) -> int:
        """The db maximizing modeled indexing throughput (Auto Tuner hook)."""
        scores = [self.indexing_throughput(db, total_entries, cluster_dim)
                  for db in candidates]
        return int(candidates[int(np.argmax(scores))])
