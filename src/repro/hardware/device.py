"""Analytic GPU device model.

No GPUs exist in this environment, so device behaviour is modeled: each
:class:`DeviceSpec` carries the published capacity/throughput numbers of
the two GPUs in the paper's testbeds (RTX 3090, A100-80G) plus the
interconnects.  The perf model (:mod:`repro.hardware.perf_model`) prices
kernels with a roofline over these numbers; the *shape* of every paper
result (who wins, OOM boundaries, crossovers) comes out of arithmetic
intensity and access regularity, which the roofline captures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "LinkSpec", "RTX3090", "A100_80G",
           "PCIE4_X16", "ETHERNET_1G", "NVLINK3", "INFINIBAND_200G",
           "ServerSpec", "RTX3090_SERVER", "A100_SERVER"]

GB = 1024**3
TFLOP = 1e12


@dataclass(frozen=True)
class DeviceSpec:
    """Published characteristics of one GPU."""

    name: str
    memory_bytes: int
    peak_flops_fp32: float  # FLOP/s
    hbm_bandwidth: float  # bytes/s
    l1_bytes_per_sm: int
    l2_bytes: int
    num_sms: int
    # fraction of stream bandwidth achieved by fully random gathers —
    # published microbenchmarks put GPU random 4–32B access at 2–8% of
    # streaming bandwidth; this is the knob behind Table II's 33× gap
    random_access_efficiency: float = 0.04
    # sustained fraction of peak FLOPs for large dense GEMMs
    gemm_efficiency: float = 0.65
    # tensor-core throughput (FP16/BF16/TF32 GEMM) — what FlashAttention
    # and cuBLAS GEMMs actually run on; sparse/gather kernels cannot use it
    tensor_core_flops: float = 0.0

    @property
    def gemm_flops(self) -> float:
        """Throughput dense GEMM kernels achieve (tensor cores if present)."""
        return self.tensor_core_flops or self.peak_flops_fp32


@dataclass(frozen=True)
class LinkSpec:
    """A communication link with bandwidth and per-message latency."""

    name: str
    bandwidth: float  # bytes/s
    latency_s: float  # per collective-phase latency


RTX3090 = DeviceSpec(
    name="RTX3090",
    memory_bytes=24 * GB,
    peak_flops_fp32=35.6 * TFLOP,
    hbm_bandwidth=936e9,
    l1_bytes_per_sm=128 * 1024,
    l2_bytes=6 * 1024 * 1024,
    num_sms=82,
    tensor_core_flops=71 * TFLOP,
)

A100_80G = DeviceSpec(
    name="A100-80G",
    memory_bytes=80 * GB,
    peak_flops_fp32=19.5 * TFLOP,
    hbm_bandwidth=2039e9,
    l1_bytes_per_sm=192 * 1024,
    l2_bytes=40 * 1024 * 1024,
    num_sms=108,
    tensor_core_flops=312 * TFLOP,
)

PCIE4_X16 = LinkSpec(name="PCIe4.0x16", bandwidth=32e9, latency_s=5e-6)
ETHERNET_1G = LinkSpec(name="1GbE", bandwidth=0.125e9, latency_s=50e-6)
NVLINK3 = LinkSpec(name="NVLink3", bandwidth=300e9, latency_s=2e-6)
INFINIBAND_200G = LinkSpec(name="IB-200G", bandwidth=25e9, latency_s=3e-6)


@dataclass(frozen=True)
class ServerSpec:
    """A GPU server: devices plus intra/inter-server links.

    The paper's two testbeds:
    ❶ 3 servers × 8 RTX 3090, PCIe 4.0 x16 inside, 1 Gbps Ethernet across;
    ❷ 2 servers × 8 A100-80G, NVLink inside, 200 Gbps InfiniBand across.
    """

    name: str
    device: DeviceSpec
    gpus_per_server: int
    intra_link: LinkSpec
    inter_link: LinkSpec

    def link_for(self, num_gpus: int) -> LinkSpec:
        """Bottleneck link for a collective spanning ``num_gpus``."""
        return self.intra_link if num_gpus <= self.gpus_per_server else self.inter_link


RTX3090_SERVER = ServerSpec(
    name="3090-server", device=RTX3090, gpus_per_server=8,
    intra_link=PCIE4_X16, inter_link=ETHERNET_1G,
)

A100_SERVER = ServerSpec(
    name="a100-server", device=A100_80G, gpus_per_server=8,
    intra_link=NVLINK3, inter_link=INFINIBAND_200G,
)
