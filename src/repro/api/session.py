"""The :class:`Session` — one object that owns a run's full lifecycle.

Callers used to hand-wire dataset→reorder→engine→model→trainer through
free functions with long keyword lists.  A ``Session`` takes one
:class:`~repro.api.config.RunConfig` and owns everything behind it:

>>> from repro.api import RunConfig, DataConfig, Session
>>> s = Session(RunConfig(data=DataConfig("ogbn-arxiv", scale=0.2)))
>>> record = s.fit()
>>> logits = s.predict()            # serving-shaped batched inference
>>> s.save_config("run.json")       # replay later: Session.from_config_file

Dataset, model and engine are built lazily (and exactly once) from the
config; ``fit()`` runs the matching trainer (full-graph, sampled-sequence
or graph-level) with the config's seed threaded through model init,
engine randomness and training noise; ``evaluate()`` scores a split;
``predict()`` is the inference entry point — batched logits over node
subsets or per-graph outputs.  Callbacks passed to ``fit()`` receive the
:mod:`repro.train.callbacks` hooks (``on_epoch_end``, ``on_reform``, …).
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from typing import Sequence

import numpy as np

from .._clock import now as _obs_now
from ..backend import compile_plan, resolve_backend
from ..core import make_engine
from ..obs import hooks as _hooks
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..graph import dataset_fingerprint, load_graph_dataset, load_node_dataset
from ..models import build_model
from ..models.encodings import compute_encodings
from ..tensor import no_grad, precision_scope
from ..train import (
    Callback,
    TrainingRecord,
    batched_node_predictions,
    planned_forward,
    train_graph_task,
    train_node_classification,
    train_node_classification_batched,
)
from ..train.metrics import accuracy, mae
from .config import RunConfig

__all__ = ["Session"]


class Session:
    """Owns one run: config → dataset/model/engine → fit/evaluate/predict."""

    def __init__(self, config: RunConfig, dataset=None):
        """``dataset`` (optional) injects an already-loaded dataset that
        matches ``config.data`` — sweeps over many engine/model variants
        of the same data can share one loaded instance instead of
        re-synthesizing it per session."""
        if not isinstance(config, RunConfig):
            raise TypeError(f"Session takes a RunConfig, got {type(config).__name__}")
        if dataset is not None and dataset.name != config.data.name:
            raise ValueError(
                f"injected dataset {dataset.name!r} does not match "
                f"config.data.name {config.data.name!r}")
        self.config = config
        self.record: TrainingRecord | None = None
        self._dataset = dataset
        self._model = None
        self._engine = None
        self._fitting = False
        self._wal = None
        # memoized (dataset, graph_version, context, encodings) for
        # repeated full-graph inference; keyed by dataset identity AND
        # its graph_version — a session whose dataset object is swapped
        # (shared-dataset sweeps, pool admission) or mutated in place by
        # a GraphDelta (possibly through *another* session sharing the
        # dataset) must never serve a context built for different
        # topology — and dropped whenever fit() may have moved engine
        # runtime state or a checkpoint load moved the weights
        self._infer_cache = None
        # compiled-backend cache: LRU of prepared serving entries keyed by
        # (scope, dataset identity, graph_version[, node-set bytes]) →
        # (ctx, enc, CompiledProgram | None).  A None program records that
        # compilation was attempted and fell back, so the reference path
        # is not re-traced on every call.  Weights are folded into the
        # programs as constants, so every weight-moving event (fit, a
        # checkpoint load) must clear this alongside _infer_cache.
        self._compiled: OrderedDict = OrderedDict()

    _COMPILED_CAP = 8  # distinct serving plans kept warm per session

    @property
    def backend_spec(self):
        """The resolved :class:`~repro.backend.BackendSpec` for this run."""
        return resolve_backend(self.config.engine.backend)

    def _compiled_get(self, key):
        entry = self._compiled.get(key)
        if entry is not None:
            self._compiled.move_to_end(key)
        return entry

    def compiled_stats(self) -> dict:
        """Counters for the compiled-backend cache (observability).

        ``entries`` counts cached serving plans (including reference
        fallbacks), ``programs`` counts the ones holding a live compiled
        program, ``jit`` reports whether any program uses numba kernels.
        """
        progs = [e[2] for e in self._compiled.values()]
        return {"entries": len(progs),
                "programs": sum(p is not None for p in progs),
                "jit": any(p is not None and p.uses_jit for p in progs)}

    def _compiled_put(self, key, entry):
        self._compiled[key] = entry
        self._compiled.move_to_end(key)
        while len(self._compiled) > self._COMPILED_CAP:
            self._compiled.popitem(last=False)

    @classmethod
    def from_config_file(cls, path: str) -> "Session":
        """Rebuild a session from a ``save_config`` JSON file."""
        return cls(RunConfig.load(path))

    # -- lazily-built components ---------------------------------------- #
    @property
    def task(self) -> str:
        """The model-level task string derived from the dataset."""
        ds, c = self.dataset, self.config
        if c.data.task_kind == "node":
            return "node-classification"
        return "regression" if ds.num_classes == 0 else "graph-classification"

    @property
    def dataset(self):
        """The loaded dataset (synthesized on first access, then cached)."""
        if self._dataset is None:
            c = self.config
            loader = (load_node_dataset if c.data.task_kind == "node"
                      else load_graph_dataset)
            data_seed = c.data.seed if c.data.seed is not None else c.seed
            self._dataset = loader(c.data.name, scale=c.data.scale,
                                   seed=data_seed)
        return self._dataset

    @property
    def model(self):
        """The built model (constructed once from config + dataset dims)."""
        if self._model is None:
            ds, c = self.dataset, self.config
            if c.data.task_kind == "node":
                feature_dim, num_classes = ds.features.shape[1], ds.num_classes
            else:
                feature_dim, num_classes = ds.features[0].shape[1], ds.num_classes
            self._model = build_model(
                c.model.name, feature_dim, num_classes, task=self.task,
                seed=c.seed, **c.model.overrides())
        return self._model

    @property
    def model_config(self):
        """The resolved architecture config (registry defaults + overrides)."""
        return self.model.config

    @property
    def engine(self):
        """The built execution engine (constructed once from the config)."""
        if self._engine is None:
            self._engine = self._build_engine()
        return self._engine

    def _build_engine(self):
        from ..core import engine_registry

        c = self.config
        mc = self.model_config
        kwargs = dict(c.engine.options)
        if c.engine.pattern is not None:
            kwargs["pattern"] = c.engine.pattern
        # thread the cross-cutting knobs only into engines whose
        # constructor accepts them (TorchGT: all three; GP-Flash: precision)
        cls = engine_registry()[c.engine.name.lower()]
        accepted = set(inspect.signature(cls.__init__).parameters)
        for key, value in (("precision", c.engine.precision),
                           ("interleave_period", c.engine.interleave_period),
                           ("seed", c.seed)):
            if value is not None and key in accepted:
                kwargs[key] = value
        return make_engine(c.engine.name, num_layers=mc.num_layers,
                           hidden_dim=mc.hidden_dim, **kwargs)

    # -- lifecycle ------------------------------------------------------- #
    def fit(self, callbacks: Sequence[Callback] | Callback | None = None,
            checkpoint_path: str | None = None,
            resume_path: str | None = None) -> TrainingRecord:
        """Train per the config; returns (and stores) the TrainingRecord.

        ``checkpoint_path`` writes a full training checkpoint (model +
        optimizer + noise-stream positions + epoch) after every epoch;
        ``resume_path`` restores one and continues from its epoch to
        ``config.train.epochs`` (see :meth:`resume`).
        """
        c, t = self.config, self.config.train
        ds, model, engine = self.dataset, self.model, self.engine
        # engine runtime state (β_thre, …) moves during training, so any
        # cached inference context — including one built by a callback
        # calling predict() mid-fit — is stale on both sides of the run;
        # _fitting additionally disables caching *between* epochs, where
        # an Auto-Tuner re-reform can invalidate a context at any time
        self._infer_cache = None
        self._compiled.clear()  # folded weights are about to move
        self._fitting = True
        try:
            persist = dict(checkpoint_path=checkpoint_path,
                           resume_path=resume_path)
            if c.data.task_kind == "graph":
                self.record = train_graph_task(
                    model, ds, engine, epochs=t.epochs, lr=t.lr,
                    weight_decay=t.weight_decay, grad_clip=t.grad_clip,
                    lap_pe_dim=t.lap_pe_dim, seed=c.seed, patience=t.patience,
                    callbacks=callbacks, **persist)
            elif t.seq_len is not None:
                self.record = train_node_classification_batched(
                    model, ds, engine, seq_len=t.seq_len, epochs=t.epochs,
                    lr=t.lr, weight_decay=t.weight_decay, grad_clip=t.grad_clip,
                    lap_pe_dim=t.lap_pe_dim, seed=c.seed, patience=t.patience,
                    callbacks=callbacks, **persist)
            else:
                self.record = train_node_classification(
                    model, ds, engine, epochs=t.epochs, lr=t.lr,
                    weight_decay=t.weight_decay, grad_clip=t.grad_clip,
                    lap_pe_dim=t.lap_pe_dim, eval_every=t.eval_every,
                    seed=c.seed, patience=t.patience, callbacks=callbacks,
                    **persist)
        finally:
            self._infer_cache = None
            self._compiled.clear()
            self._fitting = False
        return self.record

    def evaluate(self, split: str = "test") -> dict[str, float]:
        """Score one split (``train`` / ``val`` / ``test``) with the task metric."""
        if split not in ("train", "val", "test"):
            raise ValueError(f"unknown split {split!r} (train/val/test)")
        ds = self.dataset
        if self.config.data.task_kind == "node":
            logits = self.predict()
            mask = getattr(ds, f"{split}_mask")
            return {"accuracy": accuracy(logits, ds.labels, mask)}
        idx = getattr(ds, f"{split}_idx")
        preds = self.predict(indices=idx)
        if ds.num_classes == 0:
            return {"mae": mae(preds.reshape(-1), ds.targets[idx])}
        return {"accuracy": accuracy(preds, ds.targets[idx])}

    # -- streaming updates ------------------------------------------------ #
    @property
    def graph_version(self) -> int:
        """The dataset's monotonic mutation version (0 = as loaded).

        Bumped by every applied :class:`~repro.stream.GraphDelta` —
        including one applied through *another* session sharing this
        dataset object.  Serving results are stamped with the version
        they were computed at, so clients can detect staleness.
        """
        return int(getattr(self.dataset, "graph_version", 0))

    def _stream_tag(self) -> tuple:
        """The workspace-scope tag for this session's dataset object."""
        return ("dataset", id(self.dataset))

    def _stamp_context(self, ctx) -> None:
        """Stamp a prepared context's patterns for targeted invalidation.

        Records the dataset tag plus the original node ids each pattern
        row covers (the cluster-reordering inverse, or the identity for
        unreordered layouts), so a later delta drops exactly the
        workspaces it staled and leaves other datasets' warm.
        """
        from ..attention.workspace import stamp_workspace_scope

        inv = ctx.node_permutation_inverse()
        node_ids = inv if inv is not None else None
        for pattern in (ctx.pattern,
                        ctx.reformed.pattern if ctx.reformed else None):
            if pattern is not None:
                stamp_workspace_scope(pattern, tag=self._stream_tag(),
                                      node_ids=node_ids)

    def attach_wal(self, log) -> int:
        """Route this session's mutations through a durable WAL.

        Every subsequent :meth:`apply_delta` goes through
        :func:`repro.stream.log_apply` — append to ``log``, apply,
        maybe snapshot — so a crashed process replays back to the last
        acknowledged ``graph_version``.  Records in ``log`` past the
        dataset's current version are replayed immediately; returns
        the number replayed.
        """
        from ..attention.workspace import invalidate_touching

        self._wal = log
        applied = log.replay(self.dataset)
        if applied:
            # replay bypassed this session's per-delta invalidation, so
            # drop everything scoped to this dataset conservatively
            invalidate_touching(
                np.arange(self.dataset.num_nodes, dtype=np.int64),
                tag=self._stream_tag())
            self._infer_cache = None
            self._compiled.clear()
        return applied

    def apply_delta(self, delta):
        """Apply a :class:`~repro.stream.GraphDelta` to the live dataset.

        The topology change goes through the incremental CSR rebuild
        (only touched rows recomputed), the dataset's ``graph_version``
        is bumped, this session's inference cache is dropped, and
        cached pattern workspaces are invalidated **targeted**: only
        workspaces over this dataset whose rows intersect the delta's
        touched set are dropped — other datasets' (and disjoint
        subgraphs') workspaces stay warm.  Prepared contexts and
        encodings are rebuilt lazily on the next :meth:`predict`.

        With a WAL attached (:meth:`attach_wal`) the delta is appended
        to the log before it is applied, making the mutation durable.

        Node-level datasets only; raises mid-``fit()`` (the trainer owns
        the graph then).  Returns the :class:`~repro.stream.DeltaReport`.
        """
        from ..attention.workspace import invalidate_touching
        from ..stream import apply_delta as stream_apply
        from ..stream import log_apply

        if self.config.data.task_kind != "node":
            raise ValueError(
                "apply_delta supports node-level datasets; graph-level "
                "datasets are collections of independent frozen graphs")
        if self._fitting:
            raise RuntimeError("cannot apply a delta while fit() is running")
        if self._wal is not None:
            report = log_apply(self._wal, self.dataset, delta)
        else:
            report = stream_apply(self.dataset, delta)
        invalidate_touching(report.touched_rows, tag=self._stream_tag())
        self._infer_cache = None
        self._compiled.clear()  # folded encodings reflect the old topology
        return report

    # -- weights ---------------------------------------------------------- #
    def load_weights(self, path: str) -> None:
        """Load checkpoint weights into the live model, dropping caches.

        The audited mutation point for serving-time weight swaps (pool
        admission, hot reload): every inference-side cache that could
        embed model state is invalidated here, so a live session never
        serves logits computed from the pre-load weights.  (The cached
        ``(ctx, enc)`` pair is weight-independent today — invalidating
        it keeps that an implementation detail rather than a trap.)
        """
        from ..train.checkpointing import load_checkpoint

        load_checkpoint(path, self.model)
        self._infer_cache = None
        self._compiled.clear()  # compiled programs fold the old weights

    # -- inference ------------------------------------------------------- #
    def predict(self, nodes: np.ndarray | None = None,
                indices: np.ndarray | None = None,
                batch_size: int | None = None) -> np.ndarray:
        """Batched inference — the serving-shaped entry point.

        Node-level tasks return logits in **original node order**:
        all nodes by default, or the induced subgraph of ``nodes`` (a
        node-id array); ``batch_size`` splits inference into sampled
        sequences of that length (deployment-matched to ``seq_len``
        training).  Graph-level tasks return stacked per-graph outputs
        for ``indices`` (default: every graph in the dataset).
        """
        if self.config.data.task_kind == "graph":
            if nodes is not None or batch_size is not None:
                raise ValueError("nodes=/batch_size= apply to node-level "
                                 "datasets; use indices= for graph tasks")
            return self._predict_graphs(indices)
        if indices is not None:
            raise ValueError("indices= applies to graph-level datasets; "
                             "use nodes= for node tasks")
        return self._predict_nodes(nodes, batch_size)

    def _predict_nodes(self, nodes, batch_size) -> np.ndarray:
        ds, engine, model = self.dataset, self.engine, self.model
        t = self.config.train
        with precision_scope(engine.precision):
            if batch_size is not None:
                if nodes is not None:
                    raise ValueError("pass either nodes= or batch_size=, not both")
                rng = np.random.default_rng(self.config.seed)
                return batched_node_predictions(model, ds, engine, batch_size,
                                                rng, lap_pe_dim=t.lap_pe_dim)
            # the fused backend is active only off the training path (fit()
            # moves weights and tuner state continuously) and for precisions
            # whose fast path is bitwise-reproducible (bf16 rounds every op
            # output, which a fused replay cannot mirror cheaply)
            spec = self.backend_spec
            fused = (spec.compiled and not self._fitting
                     and spec.supports_precision(engine.precision))
            version = getattr(ds, "graph_version", 0)
            # cache keys carry the dataset's content fingerprint (stable
            # across handles onto the same store bytes) rather than the
            # handle's id(), so store-backed sessions share compiled
            # programs and prepared contexts across reopens
            ds_key = dataset_fingerprint(ds)
            entry = None
            if nodes is None:
                # repeated full-graph inference reuses one prepared context:
                # cluster reordering + pattern + ECR reformation dominate
                # small-model inference cost and are identical across calls
                # while the engine is idle (mid-fit, a re-reform can land
                # between calls, so caching is suspended) and the topology
                # is unchanged (an applied GraphDelta bumps graph_version,
                # which misses here even when another session holding the
                # same dataset object applied it)
                key = ("full", ds_key, version)
                if (self._infer_cache is not None
                        and self._infer_cache[0] == ds_key
                        and self._infer_cache[1] == version):
                    _, _, ctx, enc = self._infer_cache
                else:
                    ctx = engine.prepare_inference(ds.graph)
                    enc = compute_encodings(ctx.graph, lap_pe_dim=t.lap_pe_dim)
                    self._stamp_context(ctx)
                    if not self._fitting:
                        self._infer_cache = (ds_key, version, ctx, enc)
                feats = ds.features
            else:
                nodes = np.asarray(nodes)
                sorted_nodes = np.sort(nodes)
                key = ("nodes", ds_key, version, sorted_nodes.tobytes())
                entry = self._compiled_get(key) if fused else None
                if entry is not None:
                    # the compiled cache carries the prepared subgraph
                    # context and encodings too — subgraph extraction and
                    # encoding recomputation dominate repeated subset
                    # serving, and the entry's program was traced against
                    # exactly this context
                    ctx, enc = entry[0], entry[1]
                else:
                    graph, _ = ds.graph.subgraph(sorted_nodes)
                    ctx = engine.prepare_inference(graph)
                    enc = compute_encodings(ctx.graph, lap_pe_dim=t.lap_pe_dim)
                feats = ds.features[sorted_nodes]
            inv = ctx.node_permutation_inverse()
            model.eval()
            # np.asarray materializes store-backed feature views; in-RAM
            # arrays pass through untouched
            feats_in = feats[inv] if inv is not None else np.asarray(feats)
            prog = None
            if fused:
                if entry is None and nodes is None:
                    entry = self._compiled_get(key)
                    if entry is not None and entry[0] is not ctx:
                        entry = None  # context was rebuilt; program is stale
                if entry is not None:
                    prog = entry[2]
                else:
                    def ref_forward(f):
                        with no_grad():
                            return planned_forward(model, engine, ctx, f, enc,
                                                   train=False)
                    t0 = _obs_now()
                    prog = compile_plan(ref_forward, feats_in,
                                        engine.precision)
                    seconds = _obs_now() - t0
                    outcome = "compiled" if prog is not None else "fallback"
                    get_registry().counter(
                        "repro_backend_compile_total",
                        "compile attempts by outcome (compiled / fallback)",
                        labels=("outcome",)).inc(outcome=outcome)
                    _hooks.fire("on_compile", key=key[0], outcome=outcome,
                                seconds=seconds)
                    self._compiled_put(key, (ctx, enc, prog))
            if prog is not None and prog.input_shape == feats_in.shape:
                tracer = get_tracer()
                if tracer.enabled and tracer.current() is not None:
                    with tracer.span("compiled_replay",
                                     attrs={"steps": prog.num_steps}):
                        logits = prog.run(feats_in)
                else:
                    logits = prog.run(feats_in)
            else:
                with no_grad():
                    out = planned_forward(model, engine, ctx, feats_in, enc,
                                          train=False)
                logits = out.data
            if inv is not None:  # undo the cluster reordering
                restored = np.empty_like(logits)
                restored[inv] = logits
                logits = restored
            if nodes is not None:  # back to the caller's node order
                order = np.argsort(np.argsort(nodes))
                logits = logits[order]
            return logits

    def _predict_graphs(self, indices) -> np.ndarray:
        ds, engine, model = self.dataset, self.engine, self.model
        t = self.config.train
        idx = np.arange(ds.num_graphs) if indices is None else np.asarray(indices)
        outs = []
        model.eval()
        with precision_scope(engine.precision), no_grad():
            for i in idx:
                ctx = engine.prepare_inference(ds.graphs[i])
                enc = compute_encodings(ctx.graph, lap_pe_dim=t.lap_pe_dim)
                feats = ds.features[i]
                inv = ctx.node_permutation_inverse()
                if inv is not None:
                    feats = feats[inv]
                out = planned_forward(model, engine, ctx, feats, enc,
                                      train=False)
                outs.append(out.data.reshape(-1))
        return np.stack(outs)

    # -- persistence ----------------------------------------------------- #
    def save_config(self, path: str) -> None:
        """Write the run's JSON config for exact replay via ``repro run``."""
        self.config.save(path)

    def save_checkpoint(self, path: str) -> None:
        """Write the session's model weights as a checkpoint archive.

        The archive embeds the run config and the number of epochs
        trained as metadata; it is what a
        :class:`~repro.serve.pool.SessionPool` loads on admission, and
        :func:`~repro.train.checkpointing.load_checkpoint` reads it.
        For a *resumable* mid-training checkpoint (optimizer state
        included), pass ``checkpoint_path=`` to :meth:`fit` instead.
        """
        from ..train import save_checkpoint
        # epochs_trained counts pre-resume epochs too, so a checkpoint
        # saved after resume() reports the model's full training history
        epochs_done = self.record.epochs_trained if self.record else 0
        save_checkpoint(path, self.model, epoch=epochs_done,
                        metadata={"config": self.config.to_dict(),
                                  "task": self.task})

    def resume(self, path: str,
               callbacks: Sequence[Callback] | Callback | None = None,
               checkpoint_path: str | None = None) -> TrainingRecord:
        """Continue training from a mid-fit checkpoint to the config's epochs.

        ``path`` must be a per-epoch training checkpoint written by
        ``fit(checkpoint_path=…)`` (it holds optimizer state and
        noise-stream positions, so the continued run is bit-compatible
        with the uninterrupted one for engines without runtime tuner
        state).  The returned record covers only the resumed epochs.
        ``checkpoint_path`` keeps checkpointing the continued run.
        """
        return self.fit(callbacks=callbacks, checkpoint_path=checkpoint_path,
                        resume_path=path)

    def __repr__(self) -> str:
        c = self.config
        return (f"Session(dataset={c.data.name!r}, model={c.model.name!r}, "
                f"engine={c.engine.name!r}, seed={c.seed}, "
                f"fitted={self.record is not None})")
