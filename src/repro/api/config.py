"""Typed, serializable run configuration — the public contract of a run.

A :class:`RunConfig` is the complete, JSON-serializable description of one
training/inference run: which dataset at what scale, which model with
which architecture overrides, which engine with which system knobs, and
the optimization schedule.  Every name-valued field is validated against
the corresponding registry **at construction time** — dataset names
against :func:`repro.graph.available_datasets`, model names against the
:mod:`repro.models.registry`, engine names against the engine registry,
pattern names against the attention pattern-builder registry — so a typo
fails when the config is built, not twenty minutes into preprocessing.

``RunConfig.to_dict()`` / ``from_dict()`` round-trip through plain JSON
types; ``save()`` / ``load()`` go to a file.  A saved ``run.json``
replayed through ``repro run --config run.json`` (or
``Session(RunConfig.load(path))``) reproduces the original run: the one
``seed`` field drives dataset synthesis, model initialization, engine
randomness, and training-time noise streams alike.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "DataConfig",
    "ModelConfig",
    "EngineConfig",
    "TrainConfig",
    "RunConfig",
]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(msg)


@dataclass(frozen=True)
class DataConfig:
    """Which dataset to load, at what synthetic scale.

    ``name`` must be a registered node- or graph-level dataset; the task
    family is derived from which registry lists it.  ``seed`` (optional)
    pins dataset synthesis independently of the run seed — resample the
    data while keeping model init fixed, or vice versa.
    """

    name: str
    scale: float = 0.2
    seed: int | None = None

    def __post_init__(self):
        from ..graph import available_datasets

        _require(self.scale > 0.0,
                 f"scale must be positive, got {self.scale}")
        names = available_datasets()
        if self.name not in names["node"] and self.name not in names["graph"]:
            raise ValueError(
                f"unknown dataset {self.name!r}; registered datasets: "
                f"{', '.join(names['node'] + names['graph'])}")

    @property
    def task_kind(self) -> str:
        """``"node"`` or ``"graph"`` — which trainer family applies."""
        from ..graph import available_datasets

        return "node" if self.name in available_datasets()["node"] else "graph"


@dataclass(frozen=True)
class ModelConfig:
    """Which registered model to build, with architecture overrides.

    The optional fields override the registered architecture defaults
    (the knob set every example and benchmark shrinks for laptop
    wall-clock); ``None`` means "use the registry default".
    """

    name: str = "graphormer-slim"
    num_layers: int | None = None
    hidden_dim: int | None = None
    num_heads: int | None = None
    dropout: float | None = None

    def __post_init__(self):
        from ..models import get_model_spec

        spec = get_model_spec(self.name)  # raises UnknownModelError
        # probe the config factory so bad override *names* fail here too
        spec.build_config(1, 2, **self.overrides())

    def overrides(self) -> dict[str, Any]:
        """The non-``None`` architecture overrides."""
        out = {}
        for f in ("num_layers", "hidden_dim", "num_heads", "dropout"):
            v = getattr(self, f)
            if v is not None:
                out[f] = v
        return out


@dataclass(frozen=True)
class EngineConfig:
    """Which training engine runs the system side, with its knobs.

    ``pattern`` names a registered pattern builder and is only meaningful
    for the ``fixed-pattern`` engine (mirroring the CLI's constraint).
    ``precision`` / ``interleave_period`` are threaded to engines whose
    constructor accepts them; ``options`` is a free-form escape hatch for
    engine-specific keywords (e.g. pattern-builder arguments).
    ``backend`` names a registered compute backend
    (:mod:`repro.backend`): ``"numpy"`` is the per-op reference path,
    ``"fused"`` compiles each serving plan into a preallocated-workspace
    program with a bitwise-verified fallback to the reference.
    """

    name: str = "torchgt"
    pattern: str | None = None
    precision: str | None = None
    interleave_period: int | None = None
    options: Mapping[str, Any] = field(default_factory=dict)
    backend: str = "numpy"

    def __post_init__(self):
        from ..attention import get_pattern_builder
        from ..backend import get_backend
        from ..core import engine_names
        from ..tensor.precision import Precision

        object.__setattr__(self, "name", self.name.lower())
        if self.name not in engine_names():
            raise ValueError(
                f"unknown engine {self.name!r}; registered engines: "
                f"{', '.join(engine_names())}")
        if self.pattern is not None:
            get_pattern_builder(self.pattern)  # raises UnknownPatternBuilderError
            _require(self.name == "fixed-pattern",
                     "pattern= only applies to the fixed-pattern engine")
        if self.name == "fixed-pattern":
            _require(self.pattern is not None,
                     "the fixed-pattern engine needs pattern=<builder name>")
        if self.precision is not None:
            _require(self.precision in Precision.ALL,
                     f"unknown precision {self.precision!r} "
                     f"(valid: {', '.join(sorted(Precision.ALL))})")
        get_backend(self.backend)  # raises UnknownBackendError
        object.__setattr__(self, "options", dict(self.options))


@dataclass(frozen=True)
class TrainConfig:
    """Optimization schedule and evaluation cadence."""

    epochs: int = 30
    lr: float = 1e-3
    weight_decay: float = 1e-4
    grad_clip: float = 5.0
    lap_pe_dim: int = 8
    eval_every: int = 1
    patience: int | None = None
    seq_len: int | None = None  # None = full graph; set = sampled sequences

    def __post_init__(self):
        _require(self.epochs >= 1, f"epochs must be >= 1, got {self.epochs}")
        _require(self.lr > 0, f"lr must be > 0, got {self.lr}")
        _require(self.eval_every >= 1, "eval_every must be >= 1")
        if self.patience is not None:
            _require(self.patience >= 1, "patience must be >= 1")
        if self.seq_len is not None:
            _require(self.seq_len >= 2, "seq_len must be >= 2")


@dataclass(frozen=True)
class RunConfig:
    """The full description of one run: data × model × engine × schedule.

    ``seed`` is the single reproducibility knob: it seeds dataset
    synthesis, model weight initialization, engine randomness (cluster
    reordering), and training-time noise streams.
    """

    data: DataConfig
    model: ModelConfig = field(default_factory=ModelConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    seed: int = 0

    def __post_init__(self):
        from ..models import get_model_spec

        spec = get_model_spec(self.model.name)
        if not spec.engine_protocol:
            raise ValueError(
                f"model {spec.name!r} does not speak the engine protocol "
                "(features, encodings, backend=, pattern=, use_bias=) and "
                "cannot train through Session; choose one of: "
                + ", ".join(n for n in _engine_protocol_models()))
        if self.data.task_kind == "graph":
            _require(self.train.seq_len is None,
                     "seq_len (sampled sequences) applies to node-level "
                     "datasets only")
            _require(self.train.eval_every == 1,
                     "eval_every != 1 is not supported for graph-level "
                     "datasets (they evaluate every epoch)")
        if self.train.seq_len is not None:
            _require(self.train.eval_every == 1,
                     "eval_every != 1 is not supported with seq_len (the "
                     "batched trainer evaluates every epoch)")

    # -- serialization -------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON-types dict (round-trips through :meth:`from_dict`)."""
        d = dataclasses.asdict(self)
        d["engine"]["options"] = dict(self.engine.options)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunConfig":
        """Rebuild from :meth:`to_dict` output (re-validates everything)."""
        d = dict(d)
        unknown = sorted(set(d) - {"data", "model", "engine", "train", "seed"})
        if unknown:
            raise ValueError(f"unknown RunConfig sections: {', '.join(unknown)}")

        def section(key, sub_cls, required=False):
            sub = d.get(key)
            if sub is None:
                if required:
                    raise ValueError(f"RunConfig dict is missing {key!r}")
                return sub_cls()
            if dataclasses.is_dataclass(sub):
                return sub
            valid = {f.name for f in dataclasses.fields(sub_cls)}
            bad = sorted(set(sub) - valid)
            if bad:
                raise ValueError(
                    f"unknown {key} config fields: {', '.join(bad)} "
                    f"(valid: {', '.join(sorted(valid))})")
            try:
                return sub_cls(**sub)
            except TypeError as e:  # e.g. a required field is missing
                raise ValueError(f"invalid {key} config: {e}") from None

        seed = d.get("seed", 0)
        try:
            seed = int(seed if seed is not None else 0)
        except (TypeError, ValueError):
            raise ValueError(f"invalid seed: {seed!r}") from None
        return cls(
            data=section("data", DataConfig, required=True),
            model=section("model", ModelConfig),
            engine=section("engine", EngineConfig),
            train=section("train", TrainConfig),
            seed=seed,
        )

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON text (sorted keys — stable for hashing)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        """Rebuild (and re-validate) a config from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the config as JSON (the ``repro run --config`` input)."""
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "RunConfig":
        """Read a config back from a :meth:`save`\\ d JSON file."""
        with open(path) as f:
            return cls.from_json(f.read())


def _engine_protocol_models() -> list[str]:
    from ..models import model_names

    return model_names(engine_protocol_only=True)
