"""Public run API: typed configs + the Session lifecycle object.

The facade over the registries: a :class:`RunConfig` (frozen, validated,
JSON-round-trippable) describes a run; a :class:`Session` executes it —
``fit()`` / ``evaluate()`` / ``predict()`` / ``save_config()``.  Training
callbacks (:class:`Callback`, :class:`EarlyStoppingCallback`, …) are
re-exported from :mod:`repro.train.callbacks` for convenience.
"""

from ..train.callbacks import (
    Callback,
    CallbackList,
    EarlyStoppingCallback,
    EpochLogger,
)
from .config import (
    DataConfig,
    EngineConfig,
    ModelConfig,
    RunConfig,
    TrainConfig,
)
from .session import Session

__all__ = [
    "DataConfig",
    "ModelConfig",
    "EngineConfig",
    "TrainConfig",
    "RunConfig",
    "Session",
    "Callback",
    "CallbackList",
    "EarlyStoppingCallback",
    "EpochLogger",
]
