"""Per-tenant admission control: token-bucket quotas + priority classes.

Sits between the socket front-end and the serving queue.  Each tenant
has a :class:`TenantPolicy` (sustained rate, burst, priority class); a
request is admitted only when the tenant's token bucket has a token
*and* the queue is not too congested for the tenant's class.  Rejections
are typed and carry a reason, so backpressure is visible at the wire
instead of silently degrading into queue timeouts.

Priority classes map onto the existing deadline/backpressure queue two
ways:

- **deadline**: a class implies a default absolute deadline offset
  (:data:`DEADLINE_BY_CLASS`); the batcher flushes earliest-deadline
  first, so ``gold`` work consistently jumps ahead of ``batch`` work.
- **shedding**: a class implies a queue-depth watermark
  (:data:`DEPTH_WATERMARKS`); under congestion low classes are shed
  first, which is what keeps the high-priority class starvation-free
  under overload (``benchmarks/bench_net_multitenant.py`` gates this).

The controller is thread-safe: one lock guards every bucket, so
accounting stays exact when N client threads race
(``tests/net/test_stress.py``).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from ..obs.metrics import get_registry
from ..serve.queue import ServeError
from .. import _clock

__all__ = ["PRIORITY_CLASSES", "DEADLINE_BY_CLASS", "DEPTH_WATERMARKS",
           "AdmissionError", "QuotaExceededError", "OverloadShedError",
           "TenantPolicy", "AdmissionController"]

#: Priority classes, best first.
PRIORITY_CLASSES = ("gold", "standard", "batch")

#: Default deadline offset (seconds from admission) per priority class —
#: what the EDF batcher orders by when a request carries no explicit
#: deadline.
DEADLINE_BY_CLASS = {"gold": 5.0, "standard": 15.0, "batch": 60.0}

#: Queue-depth fraction above which a class is shed.  ``gold`` rides the
#: queue to the brim; ``batch`` yields half the queue to better classes.
DEPTH_WATERMARKS = {"gold": 1.0, "standard": 0.85, "batch": 0.5}


class AdmissionError(ServeError):
    """Base for typed admission rejections (reason visible at the wire)."""

    def __init__(self, tenant: str, reason: str):
        super().__init__(reason)
        self.tenant = tenant
        self.reason = reason


class QuotaExceededError(AdmissionError):
    """The tenant's token bucket is empty; retry after ``retry_after_s``."""

    def __init__(self, tenant: str, retry_after_s: float):
        super().__init__(
            tenant,
            f"tenant {tenant!r} over quota; retry after "
            f"{retry_after_s:.3f}s")
        self.retry_after_s = retry_after_s


class OverloadShedError(AdmissionError):
    """The queue is too congested for the tenant's priority class."""

    def __init__(self, tenant: str, priority: str, depth_fraction: float):
        super().__init__(
            tenant,
            f"queue {depth_fraction:.0%} full sheds priority class "
            f"{priority!r} (tenant {tenant!r})")
        self.priority = priority
        self.depth_fraction = depth_fraction


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's contract: sustained rate, burst, priority class.

    ``rate_rps=inf`` disables metering (the bucket never drains).
    ``deadline_s`` overrides the class default deadline offset.
    """

    rate_rps: float = float("inf")
    burst: float = 64.0
    priority: str = "standard"
    deadline_s: float | None = None

    def __post_init__(self):
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, "
                f"got {self.priority!r}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")

    @property
    def effective_deadline_s(self) -> float:
        """The deadline offset this policy implies (explicit or class)."""
        if self.deadline_s is not None:
            return self.deadline_s
        return DEADLINE_BY_CLASS[self.priority]


@dataclass
class _Bucket:
    tokens: float
    refilled_at: float


class AdmissionController:
    """Thread-safe per-tenant token buckets + priority-class shedding.

    Unknown tenants fall back to ``default_policy`` (unmetered by
    default — quotas are opt-in per tenant).
    """

    def __init__(self, policies: dict[str, TenantPolicy] | None = None,
                 default_policy: TenantPolicy | None = None,
                 watermarks: dict[str, float] | None = None):
        self._policies = dict(policies or {})
        self._default = default_policy or TenantPolicy()
        self._watermarks = dict(DEPTH_WATERMARKS)
        self._watermarks.update(watermarks or {})
        self._buckets: dict[str, _Bucket] = {}
        self._lock = threading.Lock()
        self._admitted: dict[str, int] = {}
        self._rejected: dict[str, dict[str, int]] = {}
        reg = get_registry()
        self._c_admitted = reg.counter(
            "repro_net_admitted_total",
            "requests admitted past admission control, by tenant",
            labels=("tenant",))
        self._c_rejected = reg.counter(
            "repro_net_admission_rejected_total",
            "requests rejected by admission control, by tenant and reason",
            labels=("tenant", "reason"))

    def policy(self, tenant: str) -> TenantPolicy:
        """The policy governing ``tenant`` (explicit or default)."""
        return self._policies.get(tenant, self._default)

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        """Install/replace one tenant's policy (resets its bucket)."""
        with self._lock:
            self._policies[tenant] = policy
            self._buckets.pop(tenant, None)

    def admit(self, tenant: str, now: float | None = None,
              depth_fraction: float = 0.0, cost: float = 1.0,
              ) -> TenantPolicy:
        """Admit one request or raise a typed :class:`AdmissionError`.

        ``depth_fraction`` is the serving queue's current fill ratio;
        classes whose watermark it exceeds are shed before their quota
        is even consulted (so shed requests don't burn tokens).
        Returns the tenant's policy on success.
        """
        now = _clock.now() if now is None else now
        policy = self.policy(tenant)
        with self._lock:
            watermark = self._watermarks.get(policy.priority, 1.0)
            if depth_fraction > watermark:
                self._count_rejection(tenant, "shed")
                raise OverloadShedError(tenant, policy.priority,
                                        depth_fraction)
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = _Bucket(tokens=policy.burst, refilled_at=now)
                self._buckets[tenant] = bucket
            if math.isfinite(policy.rate_rps):
                elapsed = max(0.0, now - bucket.refilled_at)
                bucket.tokens = min(policy.burst,
                                    bucket.tokens
                                    + elapsed * policy.rate_rps)
            else:
                bucket.tokens = policy.burst
            bucket.refilled_at = now
            if bucket.tokens < cost:
                retry = (cost - bucket.tokens) / policy.rate_rps
                self._count_rejection(tenant, "quota")
                raise QuotaExceededError(tenant, retry)
            bucket.tokens -= cost
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
        self._c_admitted.inc(tenant=tenant)
        return policy

    def _count_rejection(self, tenant: str, reason: str) -> None:
        per = self._rejected.setdefault(tenant, {})
        per[reason] = per.get(reason, 0) + 1
        self._c_rejected.inc(tenant=tenant, reason=reason)

    def deadline_for(self, tenant: str, now: float,
                     explicit: float | None = None) -> float:
        """The absolute deadline a request runs under.

        An explicit wire deadline wins; otherwise the tenant policy's
        class-default offset is applied to ``now``.
        """
        if explicit is not None:
            return explicit
        return now + self.policy(tenant).effective_deadline_s

    def snapshot(self) -> dict:
        """Exact per-tenant accounting: admitted and rejected-by-reason."""
        with self._lock:
            return {
                "admitted": dict(self._admitted),
                "rejected": {t: dict(r)
                             for t, r in self._rejected.items()},
                "tokens": {t: b.tokens for t, b in self._buckets.items()},
            }
