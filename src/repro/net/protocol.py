"""Versioned, length-prefixed wire protocol for network serving.

One frame per message::

    magic(4=RNT1) | version(u16 BE) | kind(u8) | flags(u8) | body_len(u32 BE)
    | body

``body`` is ``header_len(u32 BE) | canonical-JSON header | array blob``
where the array blob reuses :func:`repro.distributed.pack_arrays` — the
exact framing the serving cluster already ships tensors with, so logits
cross the socket bitwise-identical to an in-process call.

Every *request* header carries a tenant id, a priority class and an
absolute deadline (UNIX epoch seconds, or ``null``), which is what lets
:mod:`repro.net.admission` meter and the batcher order work without
looking inside payloads.

Decoding is strict: truncated, oversized, unknown-version, unknown-kind
or otherwise malformed frames raise a typed :class:`ProtocolError`
subclass and never partially construct a :class:`Message`.  The fuzz
suite (``tests/net/test_protocol_fuzz.py``) holds this boundary: any
byte mutation must yield either a valid message or a ``ProtocolError``,
never a hang, another exception type, or partial state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..distributed.comm import pack_arrays, unpack_arrays

__all__ = [
    "PROTOCOL_VERSION", "MAGIC", "FRAME_HEADER_SIZE", "MAX_BODY_BYTES",
    "MESSAGE_KINDS", "REQUEST_KINDS", "RESPONSE_KINDS",
    "ProtocolError", "TruncatedFrameError", "FrameTooLargeError",
    "UnknownVersionError", "UnknownKindError", "CorruptFrameError",
    "Message", "encode_message", "decode_message", "FrameDecoder",
    "predict_request", "mutate_request", "stats_request", "ping_request",
    "result_response", "error_response", "pong_response", "stats_reply",
]

#: Wire magic for the network protocol (distinct from the ``RGT1`` array
#: framing magic that appears *inside* frame bodies).
MAGIC = b"RNT1"

#: Current protocol version; bumped on any incompatible frame change.
PROTOCOL_VERSION = 1

#: Fixed-size frame prelude: magic + version + kind + flags + body length.
FRAME_HEADER_SIZE = 12

#: Hard cap on a frame body — decoding refuses larger claims before
#: buffering, so a lying length prefix cannot balloon memory.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Request message kinds (client -> server).
REQUEST_KINDS = ("predict", "mutate", "stats", "ping")

#: Response message kinds (server -> client).
RESPONSE_KINDS = ("result", "error", "pong", "stats_reply")

#: All message kinds with their on-wire type codes.
MESSAGE_KINDS = {
    "predict": 1, "mutate": 2, "stats": 3, "ping": 4,
    "result": 5, "error": 6, "pong": 7, "stats_reply": 8,
}
_CODE_TO_KIND = {code: kind for kind, code in MESSAGE_KINDS.items()}


class ProtocolError(ValueError):
    """Base for every wire-decoding failure.

    Subclasses distinguish *why* a frame was rejected; catching this base
    is the contract for "the peer sent garbage, drop the connection".
    """


class TruncatedFrameError(ProtocolError):
    """The buffer ends before the frame it starts is complete."""


class FrameTooLargeError(ProtocolError):
    """The length prefix claims a body larger than :data:`MAX_BODY_BYTES`."""


class UnknownVersionError(ProtocolError):
    """The frame's protocol version is not :data:`PROTOCOL_VERSION`."""


class UnknownKindError(ProtocolError):
    """The frame's message-kind code maps to no known message kind."""


class CorruptFrameError(ProtocolError):
    """The frame is structurally invalid (bad magic, header, or payload)."""


@dataclass(frozen=True)
class Message:
    """One decoded wire message: kind, JSON-able headers, numpy arrays."""

    kind: str
    headers: dict
    arrays: tuple = field(default_factory=tuple)

    @property
    def request_id(self) -> Any:
        """The correlation id echoed between request and response."""
        return self.headers.get("request_id")


def _require(condition: bool, detail: str) -> None:
    if not condition:
        raise CorruptFrameError(f"bad frame: {detail}")


def _validate_headers(kind: str, headers: Any) -> dict:
    """Enforce the per-kind required header fields, strictly."""
    _require(isinstance(headers, dict), "header is not a JSON object")
    rid = headers.get("request_id")
    if kind == "error":
        _require(rid is None or isinstance(rid, int),
                 "error request_id must be int or null")
        _require(isinstance(headers.get("error"), str),
                 "error message missing")
        _require(isinstance(headers.get("error_kind"), str),
                 "error_kind missing")
    else:
        _require(isinstance(rid, int) and not isinstance(rid, bool)
                 and rid >= 0, "request_id must be a non-negative int")
    if kind in REQUEST_KINDS:
        _require(isinstance(headers.get("tenant"), str)
                 and headers["tenant"] != "", "tenant id missing")
        _require(isinstance(headers.get("priority"), str),
                 "priority class missing")
        deadline = headers.get("deadline")
        _require(deadline is None
                 or (isinstance(deadline, (int, float))
                     and not isinstance(deadline, bool)),
                 "deadline must be a number or null")
    if kind in ("predict", "mutate"):
        _require(isinstance(headers.get("config"), str),
                 "config JSON missing")
    if kind == "predict":
        min_version = headers.get("min_version")
        _require(min_version is None
                 or (isinstance(min_version, int)
                     and not isinstance(min_version, bool)
                     and min_version >= 0),
                 "min_version must be a non-negative int or null")
    return headers


def encode_message(msg: Message) -> bytes:
    """Frame a :class:`Message` for the wire (inverse of decoding).

    Raises :class:`UnknownKindError` for unregistered kinds and
    :class:`FrameTooLargeError` when the body would exceed
    :data:`MAX_BODY_BYTES`.
    """
    code = MESSAGE_KINDS.get(msg.kind)
    if code is None:
        raise UnknownKindError(f"unknown message kind {msg.kind!r}")
    _validate_headers(msg.kind, msg.headers)
    header = json.dumps(msg.headers, sort_keys=True,
                        separators=(",", ":"), default=str).encode()
    body = (len(header).to_bytes(4, "big") + header
            + pack_arrays([np.asarray(a) for a in msg.arrays]))
    if len(body) > MAX_BODY_BYTES:
        raise FrameTooLargeError(
            f"frame body {len(body)} exceeds cap {MAX_BODY_BYTES}")
    return (MAGIC + PROTOCOL_VERSION.to_bytes(2, "big")
            + bytes([code, 0]) + len(body).to_bytes(4, "big") + body)


def _decode_body(kind: str, body: bytes) -> Message:
    """Decode a frame body; every malformation maps to a ProtocolError."""
    _require(len(body) >= 4, "body shorter than header length prefix")
    header_len = int.from_bytes(body[:4], "big")
    _require(4 + header_len <= len(body),
             f"header length {header_len} exceeds body")
    try:
        headers = json.loads(body[4:4 + header_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptFrameError(f"bad frame: undecodable header ({exc})")
    headers = _validate_headers(kind, headers)
    try:
        arrays = tuple(unpack_arrays(body[4 + header_len:]))
    except ProtocolError:
        raise
    except Exception as exc:  # numpy/dtype/shape lies -> typed error
        raise CorruptFrameError(f"bad frame: undecodable arrays ({exc})")
    return Message(kind=kind, headers=headers, arrays=arrays)


def decode_message(buf: bytes | bytearray) -> tuple[Message, int]:
    """Decode one frame from the head of ``buf``.

    Returns ``(message, bytes_consumed)``.  Raises
    :class:`TruncatedFrameError` when ``buf`` holds a valid prefix of an
    incomplete frame, and another :class:`ProtocolError` subclass when
    the bytes can never become a valid frame.

    The prelude is parsed in place — ``buf`` may be a connection's
    accumulating ``bytearray`` — and bytes are only materialized for a
    complete frame, so a large frame arriving chunk-by-chunk costs one
    copy total, not one full-buffer copy per chunk.
    """
    head = bytes(buf[:len(MAGIC)])
    if head != MAGIC:
        if len(head) == len(MAGIC) or not MAGIC.startswith(head):
            raise CorruptFrameError(
                f"bad frame: expected magic {MAGIC!r}, got {head!r}")
        raise TruncatedFrameError("incomplete frame magic")
    if len(buf) < FRAME_HEADER_SIZE:
        raise TruncatedFrameError("incomplete frame header")
    version = int.from_bytes(buf[4:6], "big")
    if version != PROTOCOL_VERSION:
        raise UnknownVersionError(
            f"unsupported protocol version {version} "
            f"(expected {PROTOCOL_VERSION})")
    kind = _CODE_TO_KIND.get(buf[6])
    if kind is None:
        raise UnknownKindError(f"unknown message kind code {buf[6]}")
    body_len = int.from_bytes(buf[8:12], "big")
    if body_len > MAX_BODY_BYTES:
        raise FrameTooLargeError(
            f"frame body claims {body_len} bytes "
            f"(cap {MAX_BODY_BYTES})")
    end = FRAME_HEADER_SIZE + body_len
    if len(buf) < end:
        raise TruncatedFrameError(
            f"frame needs {end} bytes, buffer has {len(buf)}")
    return _decode_body(kind, bytes(buf[FRAME_HEADER_SIZE:end])), end


class FrameDecoder:
    """Incremental frame decoder for a byte stream (one per connection).

    ``feed()`` buffers partial frames across calls and returns every
    complete message.  The first :class:`ProtocolError` poisons the
    decoder — a stream is unrecoverable after framing corruption, so
    subsequent feeds re-raise instead of resynchronizing on garbage.
    """

    def __init__(self):
        self._buf = bytearray()
        self._error: ProtocolError | None = None

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[Message]:
        """Append ``data`` and decode every now-complete frame, in order.

        Messages fully decoded before a corruption are returned by the
        *previous* calls; the call that hits the corruption raises and
        applies nothing from the bad frame onward.
        """
        if self._error is not None:
            raise self._error
        self._buf.extend(data)
        out: list[Message] = []
        while self._buf:
            try:
                msg, consumed = decode_message(self._buf)
            except TruncatedFrameError:
                break
            except ProtocolError as exc:
                self._error = exc
                raise
            del self._buf[:consumed]
            out.append(msg)
        return out


def _request_headers(request_id: int, tenant: str, priority: str,
                     deadline: float | None) -> dict:
    return {"request_id": int(request_id), "tenant": tenant,
            "priority": priority, "deadline": deadline}


def predict_request(request_id: int, config_json: str, *, tenant: str,
                    priority: str = "standard", deadline: float | None = None,
                    nodes: np.ndarray | None = None,
                    indices: np.ndarray | None = None,
                    min_version: int | None = None) -> Message:
    """Build a ``predict`` request (node subset, graph indices, or full).

    ``min_version`` (optional, additive — absent frames decode as
    ``None``) pins the read to a graph version: the server rejects it
    when the served dataset has not reached that version, and a
    cluster backend may steer the read to a caught-up replica.
    """
    headers = _request_headers(request_id, tenant, priority, deadline)
    headers["config"] = config_json
    if min_version is not None:
        headers["min_version"] = int(min_version)
    arrays: tuple = ()
    if nodes is not None and indices is not None:
        raise ValueError("pass nodes or indices, not both")
    if nodes is not None:
        headers["payload"] = "nodes"
        arrays = (np.asarray(nodes, dtype=np.int64),)
    elif indices is not None:
        headers["payload"] = "indices"
        arrays = (np.asarray(indices, dtype=np.int64),)
    else:
        headers["payload"] = None
    return Message(kind="predict", headers=headers, arrays=arrays)


def mutate_request(request_id: int, config_json: str, delta_payload: bytes,
                   *, tenant: str, priority: str = "standard",
                   deadline: float | None = None,
                   expected_version: int | None = None) -> Message:
    """Build a ``mutate`` request carrying a framed GraphDelta payload."""
    headers = _request_headers(request_id, tenant, priority, deadline)
    headers["config"] = config_json
    headers["expected_version"] = expected_version
    arrays = (np.frombuffer(delta_payload, dtype=np.uint8).copy(),)
    return Message(kind="mutate", headers=headers, arrays=arrays)


def stats_request(request_id: int, *, tenant: str,
                  priority: str = "standard") -> Message:
    """Build a ``stats`` request (server + admission snapshot)."""
    return Message(kind="stats",
                   headers=_request_headers(request_id, tenant, priority,
                                            None))


def ping_request(request_id: int, *, tenant: str,
                 priority: str = "standard") -> Message:
    """Build a liveness ``ping`` request."""
    return Message(kind="ping",
                   headers=_request_headers(request_id, tenant, priority,
                                            None))


def result_response(request_id: int, logits: np.ndarray | None,
                    graph_version: int | None = None) -> Message:
    """Build a ``result`` response (predict logits or mutate ack)."""
    headers: dict = {"request_id": int(request_id),
                     "graph_version": graph_version}
    arrays = () if logits is None else (np.asarray(logits),)
    return Message(kind="result", headers=headers, arrays=arrays)


def error_response(request_id: int | None, error_kind: str,
                   message: str) -> Message:
    """Build an ``error`` response carrying a machine-readable kind."""
    return Message(kind="error",
                   headers={"request_id": request_id,
                            "error_kind": error_kind, "error": message})


def pong_response(request_id: int) -> Message:
    """Build the ``pong`` reply to a ping."""
    return Message(kind="pong", headers={"request_id": int(request_id)})


def stats_reply(request_id: int, snapshot: dict) -> Message:
    """Build the ``stats_reply`` response wrapping a stats snapshot."""
    return Message(kind="stats_reply",
                   headers={"request_id": int(request_id),
                            "stats": snapshot})
