"""Blocking client library for the network serving protocol.

A :class:`NetClient` is one tenant's session: it opens a TCP connection
(retrying with exponential backoff — servers are often a beat behind
their clients at startup), frames requests with
:mod:`repro.net.protocol`, and blocks for the matching response.  Use it
as a context manager::

    with NetClient("127.0.0.1", 7431, tenant="acme") as client:
        logits = client.predict(config, nodes=np.arange(64))

Failure mapping: connect exhaustion raises :class:`NetConnectError`, a
socket timeout raises :class:`NetTimeoutError`, and a server-side
rejection raises :class:`RemoteError` whose ``kind`` is the wire's
machine-readable reason (``quota``, ``shed``, ``backpressure``,
``deadline``, ``server_closed``, ``bad_request``, ``internal``,
``protocol``, ``read_timeout``).  Deadlines travel as absolute UNIX
epoch seconds (``time.time()``), the only clock both ends share.
"""

from __future__ import annotations

import socket
import time

import numpy as np

from ..serve.queue import ServeError
from .protocol import (
    FrameDecoder,
    Message,
    mutate_request,
    ping_request,
    predict_request,
    stats_request,
)

__all__ = ["NetClientError", "NetConnectError", "NetTimeoutError",
           "RemoteError", "NetClient"]


class NetClientError(ServeError):
    """Base for client-side networking failures."""


class NetConnectError(NetClientError):
    """Could not establish (or lost) the server connection."""


class NetTimeoutError(NetClientError):
    """No response within the client's request timeout."""


class RemoteError(NetClientError):
    """The server answered with a typed error frame.

    ``kind`` is the machine-readable reason from the wire — match on it
    instead of parsing the message.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class NetClient:
    """One blocking connection to a :class:`~repro.net.NetServer`.

    Every request this session sends carries ``tenant`` and
    ``priority`` (admission control meters by them) and an optional
    absolute deadline derived from the per-call ``timeout``.  The
    connection is opened lazily on first use (or explicitly via
    :meth:`connect`) and retried ``connect_retries`` times with
    exponential backoff.
    """

    def __init__(self, host: str, port: int, *,
                 tenant: str = "default",
                 priority: str = "standard",
                 request_timeout_s: float = 60.0,
                 connect_timeout_s: float = 5.0,
                 connect_retries: int = 5,
                 connect_backoff_s: float = 0.1):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.priority = priority
        self.request_timeout_s = request_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()
        self._next_id = 0
        self._stashed: dict[int, Message] = {}
        #: ``graph_version`` stamped on the most recent predict result.
        self.last_graph_version: int | None = None

    # -- connection -------------------------------------------------------- #
    def connect(self) -> "NetClient":
        """Open the connection, retrying with exponential backoff."""
        if self._sock is not None:
            return self
        delay = self.connect_backoff_s
        last: Exception | None = None
        attempts = max(1, self.connect_retries)
        for attempt in range(attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout_s)
                sock.settimeout(self.request_timeout_s)
                self._sock = sock
                self._decoder = FrameDecoder()
                self._stashed.clear()
                return self
            except OSError as exc:
                last = exc
                if attempt + 1 < attempts:  # no pointless final backoff
                    time.sleep(delay)
                    delay *= 2
        raise NetConnectError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.connect_retries} attempts: {last}")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "NetClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request plumbing -------------------------------------------------- #
    def _allocate_id(self) -> int:
        rid = self._next_id
        self._next_id += 1
        return rid

    def _deadline(self, timeout: float | None) -> float | None:
        if timeout is None:
            return None
        return time.time() + timeout

    def _roundtrip(self, msg: Message) -> Message:
        """Send one frame and block for its matching response."""
        from .protocol import encode_message

        self.connect()
        rid = msg.request_id
        try:
            self._sock.sendall(encode_message(msg))
        except OSError as exc:
            self.close()
            raise NetConnectError(f"send failed: {exc}")
        while True:
            stashed = self._stashed.pop(rid, None)
            if stashed is not None:
                return self._unwrap(stashed)
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                self.close()
                raise NetTimeoutError(
                    f"no response to request {rid} within "
                    f"{self.request_timeout_s}s")
            except OSError as exc:
                self.close()
                raise NetConnectError(f"recv failed: {exc}")
            if not data:
                self.close()
                raise NetConnectError(
                    "server closed the connection mid-request")
            for resp in self._decoder.feed(data):
                if resp.request_id == rid:
                    return self._unwrap(resp)
                if resp.kind == "error" and resp.request_id is None:
                    # connection-scoped error (protocol / read_timeout)
                    self._unwrap(resp)
                self._stashed[resp.request_id] = resp

    @staticmethod
    def _unwrap(resp: Message) -> Message:
        if resp.kind == "error":
            raise RemoteError(resp.headers["error_kind"],
                              resp.headers["error"])
        return resp

    # -- API --------------------------------------------------------------- #
    def predict(self, config, nodes=None, indices=None,
                timeout: float | None = None,
                min_version: int | None = None) -> np.ndarray:
        """Over-the-wire :meth:`~repro.api.Session.predict`.

        Returns the logits array bitwise-identical to a direct in-process
        call; the result's dataset version lands in
        :attr:`last_graph_version`.  ``min_version`` pins the read to a
        graph version (``bad_request`` error when the backend has not
        reached it; a cluster backend may serve it from a read replica).
        """
        msg = predict_request(
            self._allocate_id(), _config_json(config),
            tenant=self.tenant, priority=self.priority,
            deadline=self._deadline(timeout),
            nodes=None if nodes is None else np.asarray(nodes,
                                                        dtype=np.int64),
            indices=None if indices is None else np.asarray(indices,
                                                            dtype=np.int64),
            min_version=min_version)
        resp = self._roundtrip(msg)
        self.last_graph_version = resp.headers.get("graph_version")
        if not resp.arrays:
            raise NetClientError("predict response carried no array")
        return resp.arrays[0]

    def mutate(self, config, delta, timeout: float | None = None,
               expected_version: int | None = None) -> int:
        """Apply a :class:`~repro.stream.GraphDelta` over the wire.

        Returns the new ``graph_version`` once the backend (every
        worker, for a cluster) has acked the delta.  Against a
        cluster-backed server, mutates are deadline-less broadcasts
        (``timeout`` only bounds the client-side wait) and the router
        assigns versions — passing ``expected_version`` is rejected with
        a ``bad_request`` error.
        """
        msg = mutate_request(
            self._allocate_id(), _config_json(config), delta.to_payload(),
            tenant=self.tenant, priority=self.priority,
            deadline=self._deadline(timeout),
            expected_version=expected_version)
        resp = self._roundtrip(msg)
        return int(resp.headers["graph_version"])

    def stats(self) -> dict:
        """The server's stats snapshot (net + admission + backend)."""
        resp = self._roundtrip(stats_request(
            self._allocate_id(), tenant=self.tenant,
            priority=self.priority))
        return resp.headers["stats"]

    def ping(self) -> float:
        """Round-trip a liveness ping; returns the RTT in seconds."""
        t0 = time.perf_counter()
        self._roundtrip(ping_request(self._allocate_id(),
                                     tenant=self.tenant,
                                     priority=self.priority))
        return time.perf_counter() - t0


def _config_json(config) -> str:
    """Accept a RunConfig or a pre-serialized config JSON string."""
    if isinstance(config, str):
        return config
    return config.to_json()
