"""Network-facing serving: wire protocol, TCP front-end, client, admission.

The socket tier over :mod:`repro.serve` (docs/networking.md):

- :mod:`repro.net.protocol` — versioned length-prefixed framing with
  strict typed decode errors (the fuzz-tested trust boundary);
- :mod:`repro.net.server` — a ``selectors``-based non-blocking TCP
  front-end driving an :class:`~repro.serve.InferenceServer` or
  :class:`~repro.serve.ServingCluster`;
- :mod:`repro.net.client` — a blocking client session with connect
  retry/backoff and typed remote errors;
- :mod:`repro.net.admission` — per-tenant token-bucket quotas and
  priority classes mapped onto the serving queue's deadlines.
"""

from .admission import (
    DEADLINE_BY_CLASS,
    DEPTH_WATERMARKS,
    PRIORITY_CLASSES,
    AdmissionController,
    AdmissionError,
    OverloadShedError,
    QuotaExceededError,
    TenantPolicy,
)
from .client import (
    NetClient,
    NetClientError,
    NetConnectError,
    NetTimeoutError,
    RemoteError,
)
from .protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    CorruptFrameError,
    FrameDecoder,
    FrameTooLargeError,
    Message,
    ProtocolError,
    TruncatedFrameError,
    UnknownKindError,
    UnknownVersionError,
    decode_message,
    encode_message,
)
from .server import NetServer, NetServerStats

__all__ = [
    # protocol
    "PROTOCOL_VERSION", "MAX_BODY_BYTES", "Message", "FrameDecoder",
    "encode_message", "decode_message", "ProtocolError",
    "TruncatedFrameError", "FrameTooLargeError", "UnknownVersionError",
    "UnknownKindError", "CorruptFrameError",
    # admission
    "PRIORITY_CLASSES", "DEADLINE_BY_CLASS", "DEPTH_WATERMARKS",
    "TenantPolicy", "AdmissionController", "AdmissionError",
    "QuotaExceededError", "OverloadShedError",
    # server / client
    "NetServer", "NetServerStats",
    "NetClient", "NetClientError", "NetConnectError", "NetTimeoutError",
    "RemoteError",
]
