"""Non-blocking TCP front-end for the serving tier.

A :class:`NetServer` owns one listening socket and a ``selectors`` loop;
each accepted connection gets its own read buffer (an incremental
:class:`~repro.net.protocol.FrameDecoder`) and write buffer, so partial
reads and partial writes are first-class — a frame may arrive in twenty
TCP segments and a 50 MB logits response may drain over many
writability events without ever blocking the loop.

The server *drives* its backend (an
:class:`~repro.serve.InferenceServer` or
:class:`~repro.serve.ServingCluster` in driven mode): every
:meth:`NetServer.poll` round does socket I/O, steps the backend,
harvests resolved futures into responses, enforces per-connection read
deadlines (slow-loris defense), and ticks the optional elastic
controller.  Run it inline (``poll()`` in your own loop — deterministic
tests thread a virtual ``now`` through), or threaded
(:meth:`start` / :meth:`stop`).

Failure semantics at the trust boundary:

- a malformed frame poisons only its connection (typed
  :class:`~repro.net.protocol.ProtocolError`, counted, socket closed);
- a client disconnecting mid-request discards its pending responses
  without touching backend accounting;
- :meth:`close` drains gracefully — stop accepting, finish in-flight
  work, flush write buffers, then fail anything still unresolved with a
  clean ``server_closed`` error frame.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..serve.cluster import ServingCluster
from ..serve.queue import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ServerClosedError,
)
from ..serve.server import latency_summary
from .. import _clock
from .admission import AdmissionController, AdmissionError, QuotaExceededError
from .protocol import (
    FrameDecoder,
    Message,
    ProtocolError,
    encode_message,
    error_response,
    pong_response,
    result_response,
    stats_reply,
)

__all__ = ["NetServerStats", "NetServer"]

#: One-line help strings for the registry-mirrored net counters.
_COUNTER_HELP = {
    "connections": "TCP connections accepted",
    "disconnects": "connections closed, any reason",
    "requests": "wire requests decoded",
    "responses": "wire responses sent (ok or error)",
    "rejected_quota": "requests rejected by a tenant's token bucket",
    "rejected_shed": "requests shed by priority-class watermark",
    "rejected_backpressure": "requests rejected by queue backpressure",
    "protocol_errors": "connections dropped for malformed frames",
    "read_timeouts": "connections dropped by the partial-frame deadline",
}


@dataclass
class NetServerStats:
    """Socket-tier counters + wire latency for one server lifetime.

    Dual-homed like :class:`~repro.serve.server.ServerStats`: fields
    feed :meth:`snapshot`, every :meth:`bump` mirrors into the matching
    ``repro_net_*_total`` registry counter, and the latency deque is
    lock-guarded because clients' threads read snapshots while the
    serving loop appends.
    """

    connections: int = 0
    disconnects: int = 0
    requests: int = 0
    responses: int = 0
    rejected_quota: int = 0
    rejected_shed: int = 0
    rejected_backpressure: int = 0
    protocol_errors: int = 0
    read_timeouts: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    latencies: deque = field(default_factory=lambda: deque(maxlen=4096))
    _latency_lock: threading.Lock = field(default_factory=threading.Lock,
                                          repr=False)

    #: Counter fields mirrored into the metrics registry.
    COUNTER_FIELDS = ("connections", "disconnects", "requests", "responses",
                      "rejected_quota", "rejected_shed",
                      "rejected_backpressure", "protocol_errors",
                      "read_timeouts")

    def __post_init__(self):
        registry = get_registry()
        self._obs_counters = {
            f: registry.counter(f"repro_net_{f}_total", _COUNTER_HELP[f])
            for f in self.COUNTER_FIELDS}
        self._obs_bytes = registry.counter(
            "repro_net_bytes_total", "bytes over client sockets, by direction",
            labels=("direction",))
        self._obs_latency = registry.histogram(
            "repro_net_request_latency_seconds",
            "decode-to-response latency per wire request")

    def bump(self, field_name: str, n: int = 1) -> None:
        """Increment one counter field and its registry twin together."""
        setattr(self, field_name, getattr(self, field_name) + n)
        self._obs_counters[field_name].inc(n)

    def count_bytes(self, direction: str, n: int) -> None:
        """Account socket traffic (``direction`` is ``in`` or ``out``)."""
        if direction == "in":
            self.bytes_in += n
        else:
            self.bytes_out += n
        self._obs_bytes.inc(n, direction=direction)

    def record_latency(self, seconds: float) -> None:
        """Append one wire request's latency sample (thread-safe)."""
        with self._latency_lock:
            self.latencies.append(seconds)
        self._obs_latency.observe(seconds)

    def snapshot(self) -> dict:
        """Plain-dict view of the net-tier counters."""
        with self._latency_lock:
            lat = list(self.latencies)
        out = {f: getattr(self, f) for f in self.COUNTER_FIELDS}
        out["bytes_in"] = self.bytes_in
        out["bytes_out"] = self.bytes_out
        out.update(latency_summary(lat))
        return out


@dataclass
class _Pending:
    """One submitted request awaiting its backend future."""

    request_id: int
    future: object
    kind: str
    tenant: str
    priority: str
    received_at: float
    trace: object = None


class _Connection:
    """Per-connection state: socket, frame decoder, buffers, liveness."""

    def __init__(self, sock: socket.socket, addr, now: float):
        self.sock = sock
        self.addr = addr
        self.decoder = FrameDecoder()
        self.outbuf = bytearray()
        self.pending: list[_Pending] = []
        self.last_recv = now
        self.closed = False


class NetServer:
    """Selectors-based TCP front-end feeding one serving backend.

    ``backend`` is an :class:`~repro.serve.InferenceServer` or
    :class:`~repro.serve.ServingCluster` run in *driven* mode — the net
    loop steps it; do not also ``start()`` the backend.  ``admission``
    (optional) meters tenants before any submit; ``elastic`` (optional,
    cluster backends) is ticked every poll.  ``port=0`` binds an
    ephemeral port; the bound address is ``self.address``.

    Not thread-safe: exactly one thread may drive :meth:`poll` (either
    yours, or the one :meth:`start` spawns).  Stats snapshots are safe
    from any thread.
    """

    def __init__(self, backend, *, host: str = "127.0.0.1", port: int = 0,
                 admission: AdmissionController | None = None,
                 elastic=None,
                 read_timeout_s: float = 30.0,
                 backlog: int = 128):
        if read_timeout_s <= 0:
            raise ValueError("read_timeout_s must be > 0")
        self.backend = backend
        self.admission = admission
        self.elastic = elastic
        self.read_timeout_s = read_timeout_s
        self.stats = NetServerStats()
        self._configs: dict[str, object] = {}  # config JSON → RunConfig
        self._conns: dict[socket.socket, _Connection] = {}
        self._closed = False
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((host, port))
        self._listen.listen(backlog)
        self._listen.setblocking(False)
        #: The bound ``(host, port)`` — read this after ``port=0``.
        self.address = self._listen.getsockname()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listen, selectors.EVENT_READ,
                                data=None)

    # -- the loop ---------------------------------------------------------- #
    def poll(self, now: float | None = None,
             io_timeout_s: float = 0.0) -> int:
        """One front-end round; returns responses sent.

        Socket I/O → backend step → harvest resolved futures into write
        buffers → enforce read deadlines → elastic tick.  ``now``
        threads a virtual clock through (deterministic tests);
        ``io_timeout_s`` is how long ``select`` may block waiting for
        socket events.
        """
        if self._selector is None:
            return 0
        now = _clock.now() if now is None else now
        for key, mask in self._selector.select(io_timeout_s):
            if key.data is None:
                self._accept(now)
                continue
            conn: _Connection = key.data
            if mask & selectors.EVENT_READ:
                self._read(conn, now)
            if not conn.closed and mask & selectors.EVENT_WRITE:
                self._flush(conn)
        if self.elastic is not None:
            self.elastic.tick(now=now)
        self.backend.step(now=now)
        sent = self._harvest(now)
        self._enforce_read_deadlines(now)
        return sent

    def _accept(self, now: float) -> None:
        while True:
            try:
                sock, addr = self._listen.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            conn = _Connection(sock, addr, now)
            self._conns[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, data=conn)
            self.stats.bump("connections")

    def _read(self, conn: _Connection, now: float) -> None:
        chunks = []
        eof = False
        while True:
            try:
                data = conn.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                eof = True
                break
            if not data:
                eof = True
                break
            chunks.append(data)
        payload = b"".join(chunks)
        if payload:
            conn.last_recv = now
            self.stats.count_bytes("in", len(payload))
            try:
                messages = conn.decoder.feed(payload)
            except ProtocolError as exc:
                # framing corruption is unrecoverable for this stream:
                # best-effort typed error frame, then drop the peer
                self.stats.bump("protocol_errors")
                self._respond(conn, error_response(None, "protocol",
                                                   str(exc)))
                self._close_conn(conn, "protocol")
                return
            for msg in messages:
                self._handle(conn, msg, now)
        if eof:
            self._close_conn(conn, "client")

    def _flush(self, conn: _Connection) -> None:
        """Drain as much of the write buffer as the socket accepts."""
        while conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn, "client")
                return
            if sent <= 0:
                break
            self.stats.count_bytes("out", sent)
            del conn.outbuf[:sent]
        if not conn.closed:
            events = selectors.EVENT_READ
            if conn.outbuf:
                events |= selectors.EVENT_WRITE
            self._selector.modify(conn.sock, events, data=conn)

    def _respond(self, conn: _Connection, msg: Message) -> None:
        if conn.closed:
            return
        conn.outbuf.extend(encode_message(msg))
        self.stats.bump("responses")
        self._flush(conn)

    def _close_conn(self, conn: _Connection, reason: str) -> None:
        if conn.closed:
            return
        conn.closed = True
        conn.pending.clear()
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.pop(conn.sock, None)
        self.stats.bump("disconnects")

    def _enforce_read_deadlines(self, now: float) -> None:
        # slow-loris defense: a peer holding a partial frame open must
        # make byte progress within read_timeout_s or lose the socket
        for conn in list(self._conns.values()):
            if (conn.decoder.buffered
                    and now - conn.last_recv > self.read_timeout_s):
                self.stats.bump("read_timeouts")
                self._respond(conn, error_response(
                    None, "read_timeout",
                    f"no frame progress in {self.read_timeout_s}s"))
                self._close_conn(conn, "read_timeout")

    # -- request handling -------------------------------------------------- #
    def _handle(self, conn: _Connection, msg: Message, now: float) -> None:
        self.stats.bump("requests")
        rid = msg.request_id
        try:
            if msg.kind == "ping":
                self._respond(conn, pong_response(rid))
            elif msg.kind == "stats":
                self._respond(conn, stats_reply(rid, self.stats_snapshot()))
            elif msg.kind == "predict":
                self._handle_predict(conn, msg, now)
            elif msg.kind == "mutate":
                self._handle_mutate(conn, msg, now)
            else:  # a response kind sent at the server
                self._respond(conn, error_response(
                    rid, "bad_request",
                    f"server does not accept {msg.kind!r} messages"))
        except QuotaExceededError as exc:
            self.stats.bump("rejected_quota")
            self._respond(conn, error_response(rid, "quota", str(exc)))
        except AdmissionError as exc:
            self.stats.bump("rejected_shed")
            self._respond(conn, error_response(rid, "shed", str(exc)))
        except QueueFullError as exc:
            self.stats.bump("rejected_backpressure")
            self._respond(conn, error_response(rid, "backpressure",
                                               str(exc)))
        except ServerClosedError as exc:
            self._respond(conn, error_response(rid, "server_closed",
                                               str(exc)))
        except (ValueError, KeyError, ServeError) as exc:
            self._respond(conn, error_response(rid, "bad_request", str(exc)))
        except Exception as exc:
            # attacker-controlled request contents can raise anything
            # (TypeError from a config JSON of the wrong shape, IndexError
            # from a lying delta payload, ...); one request must never
            # escape the serving loop and take down every tenant
            self._respond(conn, error_response(
                rid, "bad_request", f"{type(exc).__name__}: {exc}"))

    def _admit(self, msg: Message, now: float):
        """Admission + deadline resolution for one request message.

        Returns ``(timeout_s, trace_ctx)`` — the backend-relative
        deadline and the net span context the backend request should
        parent under.  Raises typed admission errors through to
        :meth:`_handle`'s rejection mapping.
        """
        tenant = msg.headers["tenant"]
        queue = self.backend.queue
        depth_fraction = len(queue) / queue.max_depth
        timeout = None
        if self.admission is not None:
            self.admission.admit(tenant, now=now,
                                 depth_fraction=depth_fraction)
            deadline = self.admission.deadline_for(
                tenant, now, explicit=self._wire_deadline(msg, now))
            timeout = deadline - now
        else:
            explicit = self._wire_deadline(msg, now)
            if explicit is not None:
                timeout = explicit - now
        tracer = get_tracer()
        ctx = tracer.new_context() if tracer.enabled else None
        return timeout, ctx

    @staticmethod
    def _wire_deadline(msg: Message, now: float) -> float | None:
        """Convert the wire's epoch deadline onto the serving clock.

        Clients stamp deadlines with ``time.time()`` (the only clock
        both sides share); the serving clock is an arbitrary-epoch
        monotonic counter, so only the *remaining* interval crosses.
        """
        wire = msg.headers.get("deadline")
        if wire is None:
            return None
        return now + (float(wire) - time.time())

    def _config_for(self, msg: Message):
        text = msg.headers["config"]
        cfg = self._configs.get(text)
        if cfg is None:
            from ..api.config import RunConfig

            cfg = RunConfig.from_json(text)
            self._configs[text] = cfg
        return cfg

    def _handle_predict(self, conn: _Connection, msg: Message,
                        now: float) -> None:
        timeout, ctx = self._admit(msg, now)
        config = self._config_for(msg)
        kwargs = {}
        payload = msg.headers.get("payload")
        if payload in ("nodes", "indices"):
            if not msg.arrays:
                raise ValueError("payload kind set but no array attached")
            kwargs[payload] = np.asarray(msg.arrays[0], dtype=np.int64)
        elif payload is not None:
            raise ValueError(f"unknown payload kind {payload!r}")
        min_version = msg.headers.get("min_version")
        if min_version is not None:
            # version-pinned read: the backend rejects a pin ahead of
            # its authority synchronously (surfaced as bad_request) and
            # a cluster may steer the read to a caught-up replica
            kwargs["min_version"] = int(min_version)
        future = self.backend.submit(config, timeout=timeout, now=now,
                                     trace=ctx, **kwargs)
        conn.pending.append(_Pending(
            request_id=msg.request_id, future=future, kind="predict",
            tenant=msg.headers["tenant"], priority=msg.headers["priority"],
            received_at=now, trace=ctx))

    def _handle_mutate(self, conn: _Connection, msg: Message,
                       now: float) -> None:
        from ..stream.delta import GraphDelta

        timeout, ctx = self._admit(msg, now)
        config = self._config_for(msg)
        if not msg.arrays:
            raise ValueError("mutate request carries no delta payload")
        delta = GraphDelta.from_payload(
            np.asarray(msg.arrays[0], dtype=np.uint8).tobytes())
        if isinstance(self.backend, ServingCluster):
            # cluster mutates are broadcasts: the router is the version
            # authority (client expected_version would be silently
            # ignored — reject instead) and they carry no deadline (a
            # half-expired broadcast would leave replicas disagreeing)
            if msg.headers.get("expected_version") is not None:
                raise ValueError(
                    "expected_version is not supported for cluster-backed "
                    "mutates; the router assigns versions")
            future = self.backend.submit_delta(config, delta)
        else:
            ev = msg.headers.get("expected_version")
            future = self.backend.submit_delta(
                config, delta, timeout=timeout, now=now,
                expected_version=ev, trace=ctx)
        conn.pending.append(_Pending(
            request_id=msg.request_id, future=future, kind="mutate",
            tenant=msg.headers["tenant"], priority=msg.headers["priority"],
            received_at=now, trace=ctx))

    # -- response side ----------------------------------------------------- #
    def _harvest(self, now: float) -> int:
        """Turn every resolved backend future into a wire response."""
        sent = 0
        for conn in list(self._conns.values()):
            if not conn.pending:
                continue
            still = []
            for p in conn.pending:
                if not p.future.done():
                    still.append(p)
                    continue
                self._finish(conn, p, now)
                sent += 1
            conn.pending = still
        return sent

    def _finish(self, conn: _Connection, p: _Pending, now: float) -> None:
        exc = p.future.exception(timeout=0)
        if exc is None:
            value = p.future.result(timeout=0)
            if p.kind == "mutate":
                out = result_response(p.request_id, None,
                                      graph_version=int(value))
            else:
                out = result_response(p.request_id, value,
                                      graph_version=p.future.graph_version)
        elif isinstance(exc, DeadlineExceededError):
            out = error_response(p.request_id, "deadline", str(exc))
        elif isinstance(exc, ServerClosedError):
            out = error_response(p.request_id, "server_closed", str(exc))
        else:
            out = error_response(p.request_id, "internal", str(exc))
        self.stats.record_latency(now - p.received_at)
        tracer = get_tracer()
        if tracer.enabled and p.trace is not None:
            tracer.record("net_request", p.received_at, now, ctx=p.trace,
                          attrs={"tenant": p.tenant, "priority": p.priority,
                                 "kind": p.kind,
                                 "outcome": ("ok" if exc is None
                                             else "error")})
        self._respond(conn, out)

    # -- stats ------------------------------------------------------------- #
    def stats_snapshot(self) -> dict:
        """Net counters + admission accounting + backend snapshot.

        The backend snapshot is sanitized through JSON (``default=str``)
        so the result is always wire-encodable.
        """
        backend = self.backend.stats_snapshot()
        out = {
            "net": self.stats.snapshot(),
            "backend": json.loads(json.dumps(backend, default=str)),
        }
        if self.admission is not None:
            out["admission"] = self.admission.snapshot()
        if self.elastic is not None:
            out["elastic"] = self.elastic.stats.snapshot()
        return out

    # -- threaded mode ----------------------------------------------------- #
    def start(self) -> "NetServer":
        """Drive the poll loop on a background thread."""
        if self._thread is not None:
            raise RuntimeError("net server already started")
        self._stop_event.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-net", daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                self.poll(io_timeout_s=0.005)
            except Exception:
                # belt-and-braces: _handle already maps per-request
                # failures to error frames, so anything landing here is a
                # server bug — survive it rather than silently killing
                # serving for every connected tenant
                if self._selector is None:
                    return  # closed under us
                traceback.print_exc()

    def stop(self) -> None:
        """Stop the background poll thread (connections stay open)."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None

    # -- lifecycle --------------------------------------------------------- #
    def close(self, drain_timeout_s: float = 10.0) -> None:
        """Graceful drain: finish in-flight work, flush, then tear down.

        Stops accepting immediately; keeps stepping the backend until
        every pending future resolves (bounded by ``drain_timeout_s`` on
        the wall clock); anything still unresolved gets a clean
        ``server_closed`` error frame; write buffers are flushed before
        sockets close.  The backend itself is *not* closed — it belongs
        to the caller.
        """
        if self._closed:
            return
        self._closed = True
        self.stop()
        try:
            self._selector.unregister(self._listen)
        except (KeyError, ValueError):
            pass
        self._listen.close()
        deadline = time.monotonic() + drain_timeout_s
        while (any(c.pending for c in self._conns.values())
               and time.monotonic() < deadline):
            self.poll(io_timeout_s=0.005)
        for conn in list(self._conns.values()):
            for p in conn.pending:
                self._respond(conn, error_response(
                    p.request_id, "server_closed",
                    "server shutting down before this request resolved"))
            conn.pending = []
        while (any(c.outbuf for c in self._conns.values())
               and time.monotonic() < deadline):
            for conn in list(self._conns.values()):
                if conn.outbuf:
                    self._flush(conn)
            time.sleep(0.001)
        for conn in list(self._conns.values()):
            self._close_conn(conn, "server_close")
        self._selector.close()
        self._selector = None

    def __enter__(self) -> "NetServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
