"""Public model registry and factory.

The CLI used to hide model construction inside a private ``_build_model``
helper; every other caller (examples, benchmarks, tests) re-spelled the
``CONFIG(...)`` + ``Model(cfg, seed)`` pair by hand.  This module makes
model construction a first-class registry, mirroring the attention-kernel
and engine registries: each entry carries the canonical name, its CLI
aliases, a config factory, the model class, and capability metadata
(``engine_protocol`` — whether the model's forward accepts the
``(features, encodings, backend=, pattern=, use_bias=)`` engine-driven
call signature the trainers and :class:`repro.api.Session` use).

Architecture hyperparameters are overridable at build time: any field of
the registered config dataclass (``num_layers``, ``hidden_dim``, …) can
be passed to :func:`build_model` and is applied with
:func:`dataclasses.replace`, so shrunk laptop-scale variants no longer
need to import the config constructors directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "ModelSpec",
    "UnknownModelError",
    "register_model",
    "get_model_spec",
    "model_names",
    "iter_models",
    "build_model",
    "build_model_config",
]


class UnknownModelError(ValueError):
    """Raised when a model name is not in the registry."""


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry: how to build one model family.

    ``config_factory(feature_dim, num_classes, task=...)`` returns the
    frozen config dataclass; ``model_factory(config, seed)`` builds the
    module.  ``engine_protocol`` marks models whose forward pass takes the
    engine-planned attention arguments — only those are trainable through
    the generic trainers and :class:`repro.api.Session`.
    """

    name: str
    aliases: tuple[str, ...]
    config_factory: Callable[..., Any]
    model_factory: Callable[[Any, int], Any]
    description: str = ""
    engine_protocol: bool = True

    def build_config(self, feature_dim: int, num_classes: int,
                     task: str = "node-classification", **overrides):
        """Construct the config, applying dataclass-field overrides."""
        cfg = self.config_factory(feature_dim, num_classes, task=task)
        if overrides:
            valid = {f.name for f in dataclasses.fields(cfg)}
            unknown = sorted(set(overrides) - valid)
            if unknown:
                raise ValueError(
                    f"unknown config overrides for model {self.name!r}: "
                    f"{', '.join(unknown)} (valid: {', '.join(sorted(valid))})")
            cfg = dataclasses.replace(cfg, **overrides)
        return cfg

    def build(self, feature_dim: int, num_classes: int,
              task: str = "node-classification", seed: int = 0, **overrides):
        cfg = self.build_config(feature_dim, num_classes, task=task, **overrides)
        return self.model_factory(cfg, seed)


_MODELS: dict[str, ModelSpec] = {}
_ALIASES: dict[str, str] = {}


def register_model(spec: ModelSpec) -> ModelSpec:
    """Register a model spec under its name and aliases."""
    _MODELS[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def get_model_spec(name: str) -> ModelSpec:
    """Look up a spec by canonical name or alias (case-insensitive)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _MODELS[key]
    except KeyError:
        raise UnknownModelError(
            f"unknown model {name!r}; registered models: "
            f"{', '.join(model_names())}") from None


def model_names(engine_protocol_only: bool = False) -> list[str]:
    """Canonical registered model names."""
    return sorted(n for n, s in _MODELS.items()
                  if s.engine_protocol or not engine_protocol_only)


def iter_models() -> Iterator[ModelSpec]:
    """All registered specs, sorted by name."""
    for name in model_names():
        yield _MODELS[name]


def build_model_config(name: str, feature_dim: int, num_classes: int,
                       task: str = "node-classification", **overrides):
    """The config a :func:`build_model` call would construct."""
    return get_model_spec(name).build_config(feature_dim, num_classes,
                                             task=task, **overrides)


def build_model(name: str, feature_dim: int, num_classes: int,
                task: str = "node-classification", seed: int = 0,
                **overrides):
    """Build a registered model by name (the public factory).

    ``overrides`` are config dataclass fields (``num_layers=3``,
    ``hidden_dim=32``, …) applied over the registered defaults.
    """
    return get_model_spec(name).build(feature_dim, num_classes, task=task,
                                      seed=seed, **overrides)


# ------------------------------------------------------------------ #
# built-in registrations
# ------------------------------------------------------------------ #
def _register_builtins() -> None:
    from .graphormer import GRAPHORMER_LARGE, GRAPHORMER_SLIM, Graphormer
    from .gt import GT, GT_BASE
    from .nodeformer import NODEFORMER_BASE, NodeFormer

    register_model(ModelSpec(
        name="graphormer-slim",
        aliases=("graphormer", "gph-slim"),
        config_factory=GRAPHORMER_SLIM,
        model_factory=lambda cfg, seed: Graphormer(cfg, seed=seed),
        description="GPH_slim: 4 layers, hidden 64, 8 heads (Table IV)",
    ))
    register_model(ModelSpec(
        name="graphormer-large",
        aliases=("gph-large",),
        config_factory=GRAPHORMER_LARGE,
        model_factory=lambda cfg, seed: Graphormer(cfg, seed=seed),
        description="GPH_large: 12 layers, hidden 768, 32 heads (Table IV)",
    ))
    register_model(ModelSpec(
        name="gt",
        aliases=(),
        config_factory=GT_BASE,
        model_factory=lambda cfg, seed: GT(cfg, seed=seed),
        description="Dwivedi-Bresson GT: 4 layers, hidden 128, 8 heads",
    ))

    def _nodeformer_config(feature_dim, num_classes, task="node-classification"):
        if task != "node-classification":
            raise ValueError("nodeformer supports node-classification only")
        return NODEFORMER_BASE(feature_dim, num_classes)

    register_model(ModelSpec(
        name="nodeformer",
        aliases=(),
        config_factory=_nodeformer_config,
        model_factory=lambda cfg, seed: NodeFormer(cfg, seed=seed),
        description="NodeFormer: kernelized all-pair attention (Fig. 1)",
        engine_protocol=False,  # forward(features, graph) — no engine plan
    ))


_register_builtins()
