"""NodeFormer (Wu et al., NeurIPS'22) — the kernelized, sampling-based
graph transformer the paper uses for the Pokec panel of Figure 1.

NodeFormer sidesteps quadratic attention with two ingredients:

* **kernelized all-pair attention** — the Performer positive random
  feature map (our :mod:`repro.attention.performer`) turns
  ``softmax(QKᵀ)V`` into two linear-complexity matmuls, so every node
  attends to every other node in O(S·m·d);
* **Gumbel noise on the keys** during training — the stochastic relaxation
  of NodeFormer's differentiable sampling of latent interaction graphs
  (temperature ``tau``; evaluation runs noise-free);

plus a **relational-bias** term that re-injects the observed edges: each
layer adds ``σ(b_l) · mean_{j∈N(i)} v_j``, a learnable per-layer gate on
one hop of real graph structure.  This mirrors NodeFormer's edge-level
regularization: the kernel sees all pairs, while the true topology keeps
a privileged, learned weight.

The paper's §II-B characterization — "sampling-based NodeFormer with 100K
sequence length outperforms the 10K case by 12%" — is about exactly this
model class: its attention is an *approximation*, so the more nodes in the
batch, the more of the real interaction structure each step observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..attention.performer import performer_attention, random_feature_matrix
from ..graph.csr import CSRGraph
from ..tensor import Dropout, LayerNorm, Linear, Module, ModuleList, Parameter, Tensor
from ..tensor import functional as F
from .gnn import mean_adjacency, spmm

__all__ = ["NodeFormerConfig", "NodeFormerLayer", "NodeFormer", "NODEFORMER_BASE"]


@dataclass(frozen=True)
class NodeFormerConfig:
    """NodeFormer hyperparameters."""

    num_layers: int
    hidden_dim: int
    num_heads: int
    feature_dim: int
    num_classes: int
    num_features: int = 32  # m, random-feature count of the kernel
    tau: float = 0.25  # Gumbel temperature
    use_gumbel: bool = True
    relational_bias: bool = True
    dropout: float = 0.1


def NODEFORMER_BASE(feature_dim: int, num_classes: int,
                    **overrides) -> NodeFormerConfig:
    """The configuration used in the original paper's large-graph runs."""
    defaults = dict(num_layers=3, hidden_dim=64, num_heads=4,
                    feature_dim=feature_dim, num_classes=num_classes)
    defaults.update(overrides)
    return NodeFormerConfig(**defaults)


class NodeFormerLayer(Module):
    """One kernelized-attention layer with a gated relational-bias hop."""

    def __init__(self, cfg: NodeFormerConfig, rng: np.random.Generator):
        super().__init__()
        c = cfg
        if c.hidden_dim % c.num_heads != 0:
            raise ValueError(
                f"hidden_dim={c.hidden_dim} must divide num_heads={c.num_heads}")
        self.cfg = c
        self.head_dim = c.hidden_dim // c.num_heads
        self.q_proj = Linear(c.hidden_dim, c.hidden_dim, rng=rng)
        self.k_proj = Linear(c.hidden_dim, c.hidden_dim, rng=rng)
        self.v_proj = Linear(c.hidden_dim, c.hidden_dim, rng=rng)
        self.out_proj = Linear(c.hidden_dim, c.hidden_dim, rng=rng)
        # fixed random-feature projection, shared across steps (re-drawing
        # every call would make the loss surface stochastic even in eval)
        self.feature_map = random_feature_matrix(c.num_features, self.head_dim, rng)
        if c.relational_bias:
            self.edge_gate = Parameter(np.zeros(1))
        self.norm = LayerNorm(c.hidden_dim)
        self.drop = Dropout(c.dropout, rng=rng)
        self._gumbel_rng = np.random.default_rng(rng.integers(2**31))

    def _split_heads(self, t: Tensor, S: int) -> Tensor:
        H, dh = self.cfg.num_heads, self.head_dim
        return t.reshape(S, H, dh).transpose(1, 0, 2)

    def forward(self, h: Tensor, agg: sp.csr_matrix | None) -> Tensor:
        c = self.cfg
        S = h.shape[0]
        q = self._split_heads(self.q_proj(h), S)
        k = self._split_heads(self.k_proj(h), S)
        if c.use_gumbel and self.training:
            # differentiable-sampling relaxation: Gumbel(0,1)·tau on keys
            u = self._gumbel_rng.uniform(1e-9, 1.0 - 1e-9, size=k.shape)
            k = k + Tensor(-np.log(-np.log(u)) * c.tau)
        v = self._split_heads(self.v_proj(h), S)
        attn = performer_attention(q, k, v, w=self.feature_map)
        merged = attn.transpose(1, 0, 2).reshape(S, c.hidden_dim)
        if c.relational_bias and agg is not None:
            gate = self.edge_gate.sigmoid()
            merged = merged + spmm(agg, self.v_proj(h)) * gate
        out = self.out_proj(merged)
        return self.norm(h + self.drop(F.gelu(out)))


class NodeFormer(Module):
    """NodeFormer for node classification.

    ``forward(features, graph)`` — unlike Graphormer there is no SPD bias
    or degree encoding to precompute; the graph enters only through the
    relational-bias hop, so the model runs on arbitrary node mini-batches
    (the paper's "sampling-based" mode) by passing the induced subgraph.
    """

    def __init__(self, config: NodeFormerConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        c = config
        self.config = c
        self.input_proj = Linear(c.feature_dim, c.hidden_dim, rng=rng)
        self.layers = ModuleList([NodeFormerLayer(c, rng) for _ in range(c.num_layers)])
        self.head = Linear(c.hidden_dim, c.num_classes, rng=rng)

    def forward(self, features: np.ndarray, graph: CSRGraph | None = None) -> Tensor:
        agg = None
        if graph is not None and self.config.relational_bias:
            agg = mean_adjacency(graph)
        h = self.input_proj(Tensor(features))
        for layer in self.layers:
            h = layer(h, agg)
        return self.head(h)
