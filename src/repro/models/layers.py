"""Transformer building blocks with pluggable attention backends.

The same :class:`GraphTransformerLayer` runs under every engine in the
paper's evaluation — the backend choice (any kernel registered in
:mod:`repro.attention.registry`) is a per-forward argument, because
Dual-interleaved Attention switches pattern per iteration at runtime.
Dispatch is a registry lookup, never a string ``if/elif`` chain: pattern
and bias requirements are validated against the kernel's capability
metadata, so a new backend dropped into the registry works here with no
code change.
"""

from __future__ import annotations

import numpy as np

from ..attention import AttentionBackend, AttentionPattern, KernelSpec, resolve_kernel
from ..tensor import Dropout, LayerNorm, Linear, Module, Tensor
from ..tensor import functional as F

__all__ = ["AttentionBackend", "MultiHeadAttention", "FeedForward",
           "GraphTransformerLayer"]


class MultiHeadAttention(Module):
    """Multi-head attention over a node sequence ``(S, d)``.

    ``forward`` selects the kernel by registry name (or an explicit
    :class:`~repro.attention.KernelSpec`): ``"dense"``/``"flash"`` for
    fully-connected attention, ``"sparse"`` with an
    :class:`AttentionPattern` for topology/reformed attention, or any
    other registered backend.  ``bias`` is the graph encoding added to
    scores — a dense ``(H|1, S, S)`` tensor or per-entry ``(H|1, E)``,
    per the kernel's ``bias_format``.  Kernels that don't support bias
    (flash, faithfully to the real kernel) reject it.
    """

    def __init__(self, hidden_dim: int, num_heads: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if hidden_dim % num_heads != 0:
            raise ValueError("hidden_dim must divide num_heads")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.wq = Linear(hidden_dim, hidden_dim, rng=rng)
        self.wk = Linear(hidden_dim, hidden_dim, rng=rng)
        self.wv = Linear(hidden_dim, hidden_dim, rng=rng)
        self.wo = Linear(hidden_dim, hidden_dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        S = x.shape[0]
        return x.reshape(S, self.num_heads, self.head_dim).transpose(1, 0, 2)

    def _merge_heads(self, x: Tensor) -> Tensor:
        H, S, dh = x.shape
        return x.transpose(1, 0, 2).reshape(S, H * dh)

    def forward(self, x: Tensor,
                backend: str | KernelSpec = AttentionBackend.DENSE,
                pattern: AttentionPattern | None = None,
                bias: Tensor | None = None) -> Tensor:
        kernel = resolve_kernel(backend)
        q = self._split_heads(self.wq(x))
        k = self._split_heads(self.wk(x))
        v = self._split_heads(self.wv(x))
        out = kernel(q, k, v, pattern=pattern, bias=bias)
        return self.drop(self.wo(self._merge_heads(out)))


class FeedForward(Module):
    """Position-wise FFN (d → ratio·d → d) with GELU."""

    def __init__(self, hidden_dim: int, ratio: int = 4, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.fc1 = Linear(hidden_dim, ratio * hidden_dim, rng=rng)
        self.fc2 = Linear(ratio * hidden_dim, hidden_dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(F.gelu(self.fc1(x))))


class GraphTransformerLayer(Module):
    """Pre-LN transformer layer: x + MHA(LN(x)); x + FFN(LN(x))."""

    def __init__(self, hidden_dim: int, num_heads: int, dropout: float = 0.0,
                 ffn_ratio: int = 4, rng: np.random.Generator | None = None):
        super().__init__()
        self.ln1 = LayerNorm(hidden_dim)
        self.ln2 = LayerNorm(hidden_dim)
        self.attn = MultiHeadAttention(hidden_dim, num_heads, dropout, rng=rng)
        self.ffn = FeedForward(hidden_dim, ffn_ratio, dropout, rng=rng)

    def forward(self, x: Tensor,
                backend: str | KernelSpec = AttentionBackend.DENSE,
                pattern: AttentionPattern | None = None,
                bias: Tensor | None = None) -> Tensor:
        x = x + self.attn(self.ln1(x), backend=backend, pattern=pattern, bias=bias)
        x = x + self.ffn(self.ln2(x))
        return x
