"""GT — the graph transformer of Dwivedi & Bresson (2021).

The second evaluation model (Table IV: 4 layers, hidden 128, 8 heads).
GT's structural encoding is the Laplacian positional encoding added to the
projected node features; it uses no attention bias, which makes it the
clean test of pattern-only attention restriction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attention.patterns import AttentionPattern
from ..tensor import LayerNorm, Linear, Module, ModuleList, Tensor
from .encodings import GraphEncodings
from ..attention import KernelSpec
from .layers import AttentionBackend, GraphTransformerLayer

__all__ = ["GTConfig", "GT", "GT_BASE"]


@dataclass(frozen=True)
class GTConfig:
    """Architecture hyperparameters (Table IV row 'GT')."""

    num_layers: int
    hidden_dim: int
    num_heads: int
    feature_dim: int
    num_classes: int
    lap_pe_dim: int = 8
    dropout: float = 0.1
    task: str = "node-classification"


def GT_BASE(feature_dim: int, num_classes: int, task: str = "node-classification",
            lap_pe_dim: int = 8, dropout: float = 0.1) -> GTConfig:
    """GT: 4 layers, hidden 128, 8 heads."""
    return GTConfig(4, 128, 8, feature_dim, num_classes, lap_pe_dim, dropout, task)


class GT(Module):
    """Dwivedi–Bresson graph transformer with Laplacian PE."""

    def __init__(self, config: GTConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        c = config
        self.config = c
        self.input_proj = Linear(c.feature_dim, c.hidden_dim, rng=rng)
        self.pe_proj = Linear(c.lap_pe_dim, c.hidden_dim, rng=rng)
        self.layers = ModuleList([
            GraphTransformerLayer(c.hidden_dim, c.num_heads, c.dropout, rng=rng)
            for _ in range(c.num_layers)
        ])
        self.final_ln = LayerNorm(c.hidden_dim)
        out_dim = 1 if c.task == "regression" else c.num_classes
        self.head = Linear(c.hidden_dim, out_dim, rng=rng)

    def encode(self, features: np.ndarray, enc: GraphEncodings,
               backend: str | KernelSpec = AttentionBackend.DENSE,
               pattern: AttentionPattern | None = None) -> Tensor:
        """Node embeddings under the chosen attention backend."""
        h = self.input_proj(Tensor(features))
        if enc.lap_pe is not None and self.config.lap_pe_dim > 0:
            pe = enc.lap_pe[:, : self.config.lap_pe_dim]
            if pe.shape[1] < self.config.lap_pe_dim:  # pad tiny graphs
                pad = np.zeros((pe.shape[0], self.config.lap_pe_dim - pe.shape[1]))
                pe = np.concatenate([pe, pad], axis=1)
            h = h + self.pe_proj(Tensor(pe))
        for layer in self.layers:
            h = layer(h, backend=backend, pattern=pattern, bias=None)
        return self.final_ln(h)

    def forward(self, features: np.ndarray, enc: GraphEncodings,
                backend: str | KernelSpec = AttentionBackend.DENSE,
                pattern: AttentionPattern | None = None,
                use_bias: bool = True) -> Tensor:
        """Task output (``use_bias`` accepted for API parity; GT has none)."""
        h = self.encode(features, enc, backend=backend, pattern=pattern)
        if self.config.task == "node-classification":
            return self.head(h)
        pooled = h.mean(axis=0, keepdims=True)
        out = self.head(pooled)
        if self.config.task == "regression":
            return out.reshape(1)
        return out
