"""Classical message-passing GNN baselines: GCN and GAT.

Table I of the paper motivates graph transformers by comparing against
GCN (Kipf & Welling) and GAT (Veličković et al.); both are implemented
here on the same autograd substrate so the comparison is apples-to-apples.

The sparse aggregation Â·X is a fused autograd op over scipy CSR matmuls
(forward Â X, backward Âᵀ g), and GAT's additive edge attention reuses the
segment-softmax machinery of the sparse attention kernel.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..attention.sparse import segment_softmax, _segment_sum
from ..graph.csr import CSRGraph
from ..tensor import Dropout, Linear, Module, ModuleList, Parameter, Tensor
from ..tensor import functional as F

__all__ = ["normalized_adjacency", "mean_adjacency", "spmm", "GCN", "GAT", "GraphSAGE"]


def normalized_adjacency(g: CSRGraph) -> sp.csr_matrix:
    """Symmetric GCN normalization D̂^{-1/2} (A + I) D̂^{-1/2}."""
    adj = g.with_self_loops().to_scipy().astype(np.float64)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    d = sp.diags(inv_sqrt)
    out = (d @ adj @ d).tocsr()
    out.sort_indices()
    return out


def mean_adjacency(g: CSRGraph) -> sp.csr_matrix:
    """Row-normalized adjacency D⁻¹A — GraphSAGE's mean aggregator."""
    adj = g.to_scipy().astype(np.float64)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv = 1.0 / np.maximum(deg, 1.0)
    out = (sp.diags(inv) @ adj).tocsr()
    out.sort_indices()
    return out


def spmm(mat: sp.csr_matrix, x: Tensor) -> Tensor:
    """Differentiable sparse–dense product ``mat @ x`` (mat is constant)."""
    t = x

    def backward(g):
        if t.requires_grad:
            t._accumulate(mat.T @ g)

    return Tensor._make(mat @ t.data, (t,), backward)


class GCN(Module):
    """Multi-layer GCN for node classification."""

    def __init__(self, feature_dim: int, hidden_dim: int, num_classes: int,
                 num_layers: int = 2, dropout: float = 0.3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [feature_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        self.linears = ModuleList([
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)])
        self.drop = Dropout(dropout, rng=rng)
        self.num_layers = num_layers

    def forward(self, features: np.ndarray, adj_norm: sp.csr_matrix) -> Tensor:
        h = Tensor(features)
        for i, lin in enumerate(self.linears):
            h = spmm(adj_norm, lin(h))
            if i < self.num_layers - 1:
                h = self.drop(h.relu())
        return h


def _gat_edge_attention(scores_src: Tensor, scores_dst: Tensor,
                        values: Tensor, g: CSRGraph,
                        negative_slope: float = 0.2) -> Tensor:
    """Fused GAT aggregation: softmax_j LeakyReLU(s_i + s_j) · v_j.

    ``scores_src``/``scores_dst`` are per-node scalars ``(N, Hd→1)`` from
    the learnable attention vectors; ``values`` is ``(N, d)``.  Uses the
    self-loop-augmented topology of ``g`` as the edge set.
    """
    gl = g.with_self_loops()
    rows = np.repeat(np.arange(gl.num_nodes, dtype=np.int64), gl.degrees())
    cols = gl.indices
    indptr = gl.indptr
    s, d, v = scores_src, scores_dst, values

    raw = s.data[rows, 0] + d.data[cols, 0]
    leaky = np.where(raw > 0, raw, negative_slope * raw)
    alpha = segment_softmax(leaky[None, :], indptr, rows)[0]  # (E,)
    n = gl.num_nodes
    a_mat = sp.csr_matrix((alpha, cols, indptr), shape=(n, n))
    out_data = a_mat @ v.data
    dleaky_draw = np.where(raw > 0, 1.0, negative_slope)

    def backward(grad):
        if v.requires_grad:
            v._accumulate(a_mat.T @ grad)
        # d alpha_e = grad[row_e] · v[col_e]
        dalpha = np.einsum("ed,ed->e", grad[rows], v.data[cols])
        dot = _segment_sum((dalpha * alpha)[None, :], indptr)[0]
        dleaky = alpha * (dalpha - dot[rows])
        draw = dleaky * dleaky_draw
        if s.requires_grad:
            buf = np.zeros_like(s.data)
            np.add.at(buf[:, 0], rows, draw)
            s._accumulate(buf)
        if d.requires_grad:
            buf = np.zeros_like(d.data)
            np.add.at(buf[:, 0], cols, draw)
            d._accumulate(buf)

    return Tensor._make(out_data, (s, d, v), backward)


class GATLayer(Module):
    """Single-head GAT layer (multi-head handled by concatenation above)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.lin = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.att_src = Linear(out_dim, 1, bias=False, rng=rng)
        self.att_dst = Linear(out_dim, 1, bias=False, rng=rng)

    def forward(self, h: Tensor, g: CSRGraph) -> Tensor:
        z = self.lin(h)
        return _gat_edge_attention(self.att_src(z), self.att_dst(z), z, g)


class GAT(Module):
    """Two-layer multi-head GAT for node classification."""

    def __init__(self, feature_dim: int, hidden_dim: int, num_classes: int,
                 num_heads: int = 4, dropout: float = 0.3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.heads = ModuleList([
            GATLayer(feature_dim, hidden_dim, rng) for _ in range(num_heads)])
        self.out_layer = GATLayer(hidden_dim * num_heads, num_classes, rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, features: np.ndarray, g: CSRGraph) -> Tensor:
        h = Tensor(features)
        from ..tensor import concat
        hidden = concat([head(h, g) for head in self.heads], axis=1)
        hidden = self.drop(F.gelu(hidden))
        return self.out_layer(hidden, g)


class SAGELayer(Module):
    """One GraphSAGE-mean layer: W_self·h ∥-free sum with W_neigh·mean(h_N)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.lin_self = Linear(in_dim, out_dim, rng=rng)
        self.lin_neigh = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(self, h: Tensor, agg: sp.csr_matrix) -> Tensor:
        return self.lin_self(h) + self.lin_neigh(spmm(agg, h))


class GraphSAGE(Module):
    """GraphSAGE with mean aggregation (Hamilton et al., NeurIPS'17).

    The inductive-GNN baseline the paper's Table VIII discussion refers
    to; full-neighbourhood aggregation here (the sampling variant only
    changes which rows of ``agg`` are nonzero, not the model).
    """

    def __init__(self, feature_dim: int, hidden_dim: int, num_classes: int,
                 num_layers: int = 2, dropout: float = 0.3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [feature_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        self.sage_layers = ModuleList([
            SAGELayer(dims[i], dims[i + 1], rng) for i in range(num_layers)])
        self.drop = Dropout(dropout, rng=rng)
        self.num_layers = num_layers

    def forward(self, features: np.ndarray, agg: sp.csr_matrix) -> Tensor:
        h = Tensor(features)
        for i, layer in enumerate(self.sage_layers):
            h = layer(h, agg)
            if i < self.num_layers - 1:
                h = self.drop(h.relu())
        return h
