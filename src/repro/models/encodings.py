"""Graph structural encodings for graph transformers.

Precomputes, per input graph, everything the models' forward passes need:

* degree buckets for Graphormer's centrality encoding (Eq. 2);
* truncated shortest-path-distance buckets for the SPD attention bias
  (Eq. 3), both as a dense (S, S) bucket matrix for fully-connected
  attention and gathered per-entry for sparse patterns;
* Laplacian positional encodings for the GT model.

Encodings are a preprocessing artifact: the §IV-E benchmark measures their
cost against training time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attention.patterns import AttentionPattern
from ..graph.algorithms import truncated_spd_matrix
from ..graph.csr import CSRGraph
from ..graph.laplacian import laplacian_positional_encoding

__all__ = ["GraphEncodings", "compute_encodings"]


@dataclass
class GraphEncodings:
    """Precomputed structural encodings for one graph/sequence."""

    degree_buckets: np.ndarray  # (S,) int, clipped to max_degree
    spd_buckets: np.ndarray | None  # (S, S) int16 or None if skipped
    lap_pe: np.ndarray | None  # (S, k) float or None
    max_degree: int
    max_spd: int

    def spd_for_pattern(self, pattern: AttentionPattern) -> np.ndarray:
        """Per-entry SPD buckets for a sparse pattern, shape (E,).

        When the dense SPD matrix was computed it is gathered; otherwise
        entries are bucketed structurally: self-loops → 0, everything else
        in a topology pattern is a graph edge → 1.
        """
        rows, cols = pattern.rows, pattern.cols
        if self.spd_buckets is not None:
            return self.spd_buckets[rows, cols].astype(np.int64)
        out = np.ones(pattern.num_entries, dtype=np.int64)
        out[rows == cols] = 0
        return out


def compute_encodings(
    g: CSRGraph,
    max_degree: int = 64,
    max_spd: int = 8,
    with_spd: bool = True,
    lap_pe_dim: int = 0,
    spd_node_limit: int = 5000,
) -> GraphEncodings:
    """Compute all structural encodings for graph ``g``.

    ``with_spd`` and the ``spd_node_limit`` guard the O(N²) SPD matrix:
    above the limit the dense matrix is skipped and sparse patterns fall
    back to structural bucketing (edge=1/self=0), which is exact for
    topology patterns anyway.
    """
    deg = np.minimum(g.degrees(), max_degree - 1).astype(np.int64)
    spd = None
    if with_spd and g.num_nodes <= spd_node_limit:
        spd = truncated_spd_matrix(g, max_spd)
    lap = laplacian_positional_encoding(g, lap_pe_dim) if lap_pe_dim > 0 else None
    return GraphEncodings(degree_buckets=deg, spd_buckets=spd, lap_pe=lap,
                          max_degree=max_degree, max_spd=max_spd)
