"""Graph transformer models (Graphormer, GT) and GNN baselines (GCN, GAT)."""

from .layers import (
    AttentionBackend,
    FeedForward,
    GraphTransformerLayer,
    MultiHeadAttention,
)
from .encodings import GraphEncodings, compute_encodings
from .graphormer import GRAPHORMER_LARGE, GRAPHORMER_SLIM, Graphormer, GraphormerConfig
from .gt import GT, GT_BASE, GTConfig
from .gnn import GAT, GCN, GraphSAGE, mean_adjacency, normalized_adjacency, spmm
from .nodeformer import NODEFORMER_BASE, NodeFormer, NodeFormerConfig

__all__ = [
    "AttentionBackend",
    "MultiHeadAttention",
    "FeedForward",
    "GraphTransformerLayer",
    "GraphEncodings",
    "compute_encodings",
    "GraphormerConfig",
    "Graphormer",
    "GRAPHORMER_SLIM",
    "GRAPHORMER_LARGE",
    "GTConfig",
    "GT",
    "GT_BASE",
    "GCN",
    "GAT",
    "GraphSAGE",
    "normalized_adjacency",
    "mean_adjacency",
    "spmm",
    "NodeFormerConfig",
    "NodeFormer",
    "NODEFORMER_BASE",
]
