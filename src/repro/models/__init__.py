"""Graph transformer models (Graphormer, GT) and GNN baselines (GCN, GAT).

Model construction is registry-driven: :func:`build_model` resolves a
name (or alias) through the :mod:`repro.models.registry` and applies
config-field overrides, so callers never hand-wire ``CONFIG(...)`` +
``Model(cfg, seed)`` pairs.
"""

from .layers import (
    AttentionBackend,
    FeedForward,
    GraphTransformerLayer,
    MultiHeadAttention,
)
from .encodings import GraphEncodings, compute_encodings
from .graphormer import GRAPHORMER_LARGE, GRAPHORMER_SLIM, Graphormer, GraphormerConfig
from .gt import GT, GT_BASE, GTConfig
from .gnn import GAT, GCN, GraphSAGE, mean_adjacency, normalized_adjacency, spmm
from .nodeformer import NODEFORMER_BASE, NodeFormer, NodeFormerConfig
from .registry import (
    ModelSpec,
    UnknownModelError,
    build_model,
    build_model_config,
    get_model_spec,
    iter_models,
    model_names,
    register_model,
)

__all__ = [
    "ModelSpec",
    "UnknownModelError",
    "build_model",
    "build_model_config",
    "get_model_spec",
    "iter_models",
    "model_names",
    "register_model",
    "AttentionBackend",
    "MultiHeadAttention",
    "FeedForward",
    "GraphTransformerLayer",
    "GraphEncodings",
    "compute_encodings",
    "GraphormerConfig",
    "Graphormer",
    "GRAPHORMER_SLIM",
    "GRAPHORMER_LARGE",
    "GTConfig",
    "GT",
    "GT_BASE",
    "GCN",
    "GAT",
    "GraphSAGE",
    "normalized_adjacency",
    "mean_adjacency",
    "spmm",
    "NodeFormerConfig",
    "NodeFormer",
    "NODEFORMER_BASE",
]
