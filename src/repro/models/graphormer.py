"""Graphormer (Ying et al., NeurIPS'21) on the numpy substrate.

Implements the two encodings that define the architecture (paper Eq. 2–3):

* **centrality encoding** — learnable in-/out-degree embeddings added to
  node features (our graphs are symmetric, so both tables are indexed by
  the same degree, preserving the formulation);
* **SPD spatial bias** — a learnable per-head scalar for each
  shortest-path-distance bucket, added to every attention score.

Both evaluation configurations are provided: GraphormerSlim (4 layers,
d=64, 8 heads) and GraphormerLarge (12 layers, d=768, 32 heads), per
Table IV.  The attention backend is selected per forward call so the same
weights run under GP-Raw (dense+bias), GP-Flash (flash, bias disabled —
the real kernel's limitation), GP-Sparse and TorchGT (pattern+bias).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attention import KernelSpec, resolve_kernel
from ..attention.patterns import AttentionPattern
from ..tensor import Embedding, LayerNorm, Linear, Module, ModuleList, Parameter, Tensor
from ..tensor import functional as F
from .encodings import GraphEncodings
from .layers import AttentionBackend, GraphTransformerLayer

__all__ = ["GraphormerConfig", "Graphormer", "GRAPHORMER_SLIM", "GRAPHORMER_LARGE"]


@dataclass(frozen=True)
class GraphormerConfig:
    """Architecture hyperparameters (Table IV)."""

    num_layers: int
    hidden_dim: int
    num_heads: int
    feature_dim: int
    num_classes: int
    dropout: float = 0.1
    max_degree: int = 64
    max_spd: int = 8
    task: str = "node-classification"  # or "graph-classification" / "regression"


def GRAPHORMER_SLIM(feature_dim: int, num_classes: int, task: str = "node-classification",
                    dropout: float = 0.1) -> "GraphormerConfig":
    """GPH_slim: 4 layers, hidden 64, 8 heads."""
    return GraphormerConfig(4, 64, 8, feature_dim, num_classes, dropout, task=task)


def GRAPHORMER_LARGE(feature_dim: int, num_classes: int, task: str = "node-classification",
                     dropout: float = 0.1) -> "GraphormerConfig":
    """GPH_large: 12 layers, hidden 768, 32 heads."""
    return GraphormerConfig(12, 768, 32, feature_dim, num_classes, dropout, task=task)


class Graphormer(Module):
    """Graphormer with degree centrality encoding and SPD attention bias."""

    def __init__(self, config: GraphormerConfig, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        c = config
        self.config = c
        self.input_proj = Linear(c.feature_dim, c.hidden_dim, rng=rng)
        # z⁻ / z⁺ of Eq. 2 — both indexed by the symmetric degree
        self.in_degree_emb = Embedding(c.max_degree, c.hidden_dim, rng=rng)
        self.out_degree_emb = Embedding(c.max_degree, c.hidden_dim, rng=rng)
        # bias_φ of Eq. 3: one scalar per head per SPD bucket
        # buckets: 0..max_spd plus the "farther/unreachable" bucket
        self.spd_bias_table = Parameter(
            rng.standard_normal((c.max_spd + 2, c.num_heads)) * 0.02)
        self.layers = ModuleList([
            GraphTransformerLayer(c.hidden_dim, c.num_heads, c.dropout, rng=rng)
            for _ in range(c.num_layers)
        ])
        self.final_ln = LayerNorm(c.hidden_dim)
        out_dim = 1 if c.task == "regression" else c.num_classes
        self.head = Linear(c.hidden_dim, out_dim, rng=rng)

    # ------------------------------------------------------------------ #
    def _input_embedding(self, features: np.ndarray, enc: GraphEncodings) -> Tensor:
        h = self.input_proj(Tensor(features))
        h = h + F.embedding_lookup(self.in_degree_emb.weight, enc.degree_buckets)
        h = h + F.embedding_lookup(self.out_degree_emb.weight, enc.degree_buckets)
        return h

    def _dense_bias(self, enc: GraphEncodings) -> Tensor | None:
        """SPD bias as an (H, S, S) tensor for dense attention."""
        if enc.spd_buckets is None:
            return None
        # gather the per-bucket scalars then move heads first
        flat = F.embedding_lookup(self.spd_bias_table, enc.spd_buckets)  # (S,S,H)
        return flat.transpose(2, 0, 1)

    def _sparse_bias(self, enc: GraphEncodings, pattern: AttentionPattern) -> Tensor:
        """SPD bias gathered at pattern entries, shape (H, E)."""
        buckets = enc.spd_for_pattern(pattern)
        vals = F.embedding_lookup(self.spd_bias_table, buckets)  # (E, H)
        return vals.transpose(1, 0)

    # ------------------------------------------------------------------ #
    def encode(self, features: np.ndarray, enc: GraphEncodings,
               backend: str | KernelSpec = AttentionBackend.DENSE,
               pattern: AttentionPattern | None = None,
               use_bias: bool = True) -> Tensor:
        """Node embeddings ``(S, d)`` under the chosen attention backend.

        The SPD bias is built in whichever format the kernel's registry
        metadata declares (dense ``(H, S, S)`` or per-entry ``(H, E)``).
        ``use_bias=False`` reproduces the GP-Flash configuration: the
        paper disables the bias encoding because FlashAttention cannot
        apply it (§II-C) — kernels with no bias support simply get none.
        """
        kernel = resolve_kernel(backend)
        h = self._input_embedding(features, enc)
        bias = None
        if use_bias and kernel.bias_format == "dense":
            bias = self._dense_bias(enc)
        elif use_bias and kernel.bias_format == "entries" and pattern is not None:
            bias = self._sparse_bias(enc, pattern)
        for layer in self.layers:
            h = layer(h, backend=kernel, pattern=pattern, bias=bias)
        return self.final_ln(h)

    def forward(self, features: np.ndarray, enc: GraphEncodings,
                backend: str | KernelSpec = AttentionBackend.DENSE,
                pattern: AttentionPattern | None = None,
                use_bias: bool = True) -> Tensor:
        """Task output: per-node logits, or pooled graph logits/score."""
        h = self.encode(features, enc, backend=backend, pattern=pattern,
                        use_bias=use_bias)
        if self.config.task == "node-classification":
            return self.head(h)
        pooled = h.mean(axis=0, keepdims=True)
        out = self.head(pooled)
        if self.config.task == "regression":
            return out.reshape(1)
        return out
